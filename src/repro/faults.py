"""Deterministic fault-injection core shared across subsystems.

PR 1 introduced reproducible *transport* faults for the synchronization
layer (:mod:`repro.sync.faults`); the durability work brings the same
rigor to the storage engine (:mod:`repro.db.wal`).  Both need the same
two primitives, so they live here:

* :class:`FaultSchedule` -- a seeded random source plus an event counter.
  Indexed rules ("fire at send #7") and rate rules ("fire with p=0.05")
  both draw their determinism from it: identical ``(plan, seed)`` pairs
  yield identical fault schedules, run after run.
* :class:`CrashInjector` -- named *crash points* with per-point trigger
  counting.  Production code calls :meth:`CrashInjector.check` at each
  boundary it is willing to die at; when the armed :class:`CrashPlan`
  matches, the caller performs the plan's mechanics (torn write, dropped
  fsync) and raises :class:`SimulatedCrash`.

The split keeps policy (which occurrence of which point, seeded rates)
here and mechanics (how a WAL write is torn, how a socket dies) in the
subsystem that owns the resource.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable, Optional

__all__ = [
    "CrashInjector",
    "CrashPlan",
    "FaultSchedule",
    "SimulatedCrash",
    "as_index_set",
]


def as_index_set(value: Iterable[int] | frozenset) -> frozenset:
    """Coerce any iterable of indices to the frozenset plans store."""
    return value if isinstance(value, frozenset) else frozenset(value)


class FaultSchedule:
    """Seeded randomness + monotonic event counting for one fault plan.

    Every decision a fault plan makes is either *indexed* (an exact
    0-based occurrence number) or *sampled* (a probability drawn from
    this schedule's private RNG).  Keeping both behind one object means
    a plan's full behavior is a pure function of ``(plan, seed)``.
    """

    __slots__ = ("_rng", "count")

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        #: Events seen so far (equals the *next* event's index).
        self.count = 0

    def next_index(self) -> int:
        """Claim the next event index (0-based) and advance the counter."""
        index = self.count
        self.count += 1
        return index

    def chance(self, rate: float) -> bool:
        """Deterministically sample a rate rule from the seeded RNG."""
        return rate > 0 and self._rng.random() < rate


class SimulatedCrash(RuntimeError):
    """The process "died" at an injected crash point.

    Raised by fault-injection harnesses only; production code never
    catches it (a crashed process does not get to run except-clauses).
    Tests catch it at top level, discard every in-memory object, and
    exercise recovery from the on-disk state alone.
    """

    def __init__(self, point: str, occurrence: int) -> None:
        super().__init__(f"simulated crash at {point!r} (occurrence {occurrence})")
        self.point = point
        self.occurrence = occurrence


@dataclass
class CrashPlan:
    """Kill the process at the Nth occurrence of a named crash point.

    ``point`` names a boundary the instrumented code declares (the WAL
    declares ``wal.append`` / ``wal.post_append`` / ``wal.fsync``).  The
    remaining fields select the mechanics the *owner* of the crash point
    applies before dying:

    * ``torn_bytes`` -- write only this many bytes of the in-flight
      record, then die (a torn write reaching the disk's sector cache).
    * ``power_loss`` -- on death, data not yet fsynced is lost (the OS
      page cache never reached the platter).  Without it the crash
      models a process kill: buffered writes survive.
    """

    point: str
    at: int = 0
    torn_bytes: Optional[int] = None
    power_loss: bool = False


class CrashInjector:
    """Trigger-counting registry of crash plans.

    Instrumented code calls :meth:`check` at every declared boundary;
    the injector counts occurrences per point name and returns the plan
    when one matches (at most once -- a process only dies once).  With
    no plans armed the per-call cost is one dict update.
    """

    def __init__(self, *plans: CrashPlan) -> None:
        self.plans = list(plans)
        self.counts: dict[str, int] = {}
        #: The plan that fired, if any (tests assert on it).
        self.fired: Optional[CrashPlan] = None

    def check(self, point: str) -> Optional[CrashPlan]:
        """Count one occurrence of ``point``; return a matching plan.

        Returns ``None`` when nothing fires.  The caller is responsible
        for applying the plan's mechanics and raising :meth:`crash`.
        """
        occurrence = self.counts.get(point, 0)
        self.counts[point] = occurrence + 1
        if self.fired is not None:
            return None
        for plan in self.plans:
            if plan.point == point and plan.at == occurrence:
                self.fired = plan
                return plan
        return None

    def crash(self, plan: CrashPlan) -> "SimulatedCrash":
        """The exception to raise for ``plan`` (records the occurrence)."""
        return SimulatedCrash(plan.point, plan.at)

    def reach(self, point: str, **_context: Any) -> None:
        """Convenience for crash points with no special mechanics:
        count, and die immediately when a plan matches."""
        plan = self.check(point)
        if plan is not None:
            raise self.crash(plan)
