"""Retry policies: bounded attempts, exponential backoff, jitter.

Fault tolerance in this reproduction is policy-driven: a
:class:`RetryPolicy` names *how often* to try again, *how long* to wait
between tries, and *which* failures are worth retrying.  The same object
serves every layer that talks to something unreliable:

- :class:`repro.sync.client.SyncClient` uses one to pace reconnection
  attempts after the notification socket dies;
- :class:`repro.workflow` ``CallProcedure`` activities may declare one
  (``options={"retry": {...}}``) so transient black-box procedure
  failures are re-run instead of failing the process instance.

Backoff follows the classic exponential-with-jitter scheme: attempt
``k`` (1-based) sleeps ``min(max_delay, base_delay * multiplier**(k-1))``
scaled down by a random jitter factor so synchronized clients do not
stampede.  Both the random source and the sleep function are injectable,
which keeps tests deterministic and instant.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Iterator, Optional, Sequence, Union

from .errors import RetryError

#: Predicate deciding whether an exception is worth another attempt.
RetryPredicate = Callable[[BaseException], bool]

#: Observer invoked as (attempt_number, exception, upcoming_delay).
RetryObserver = Callable[[int, BaseException, float], None]


class Attempt:
    """One iteration handed out by :meth:`RetryPolicy.attempts`."""

    __slots__ = ("number", "delay")

    def __init__(self, number: int, delay: float) -> None:
        #: 1-based attempt number.
        self.number = number
        #: Seconds slept *before* this attempt (0.0 for the first).
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Attempt(number={self.number}, delay={self.delay:.3f})"


class RetryPolicy:
    """Bounded retries with exponential backoff and seedable jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (>= 1).
    base_delay:
        Sleep before the second attempt, in seconds.
    multiplier:
        Backoff growth factor per attempt.
    max_delay:
        Upper bound on any single sleep.
    jitter:
        Fraction of each delay randomized away: the actual sleep is
        uniform in ``[delay * (1 - jitter), delay]``.  0 disables jitter.
    retryable:
        Predicate, or a tuple of exception types, selecting failures
        that deserve another attempt.  Non-retryable exceptions
        propagate immediately.  Default: any :class:`Exception`.
    sleep:
        Injectable sleep function (tests pass a recorder).
    seed:
        Seed for the jitter RNG; policies with the same seed produce
        identical delay sequences.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 5.0,
        jitter: float = 0.5,
        retryable: Union[RetryPredicate, Sequence[type], None] = None,
        sleep: Callable[[float], None] = time.sleep,
        seed: Optional[int] = None,
    ) -> None:
        if max_attempts < 1:
            raise RetryError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise RetryError("delays must be non-negative")
        if not 0.0 <= jitter <= 1.0:
            raise RetryError(f"jitter must be in [0, 1], got {jitter}")
        if multiplier < 1.0:
            raise RetryError(f"multiplier must be >= 1, got {multiplier}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self._sleep = sleep
        self._rng = random.Random(seed)
        if retryable is None:
            self._retryable: RetryPredicate = lambda exc: isinstance(exc, Exception)
        elif callable(retryable):
            self._retryable = retryable
        else:
            types = tuple(retryable)
            self._retryable = lambda exc: isinstance(exc, types)

    # ------------------------------------------------------------------
    @classmethod
    def from_options(
        cls, options: Union["RetryPolicy", dict, None], **overrides: Any
    ) -> Optional["RetryPolicy"]:
        """Build a policy from an options mapping (or pass one through).

        Accepts both snake_case and the XML spec's camelCase keys, e.g.
        ``{"max_attempts": 4}`` or ``{"maxAttempts": 4, "baseDelay": 0.1}``.
        Returns ``None`` for ``None`` input (no retry requested).
        """
        if options is None:
            return None
        if isinstance(options, RetryPolicy):
            return options
        if not isinstance(options, dict):
            raise RetryError(f"bad retry options: {options!r}")
        aliases = {
            "maxAttempts": "max_attempts",
            "baseDelay": "base_delay",
            "maxDelay": "max_delay",
        }
        kwargs: dict[str, Any] = {}
        for key, value in options.items():
            name = aliases.get(key, key)
            if name in ("max_attempts",):
                value = int(value)
            elif name in ("base_delay", "multiplier", "max_delay", "jitter"):
                value = float(value)
            elif name not in ("retryable", "sleep", "seed"):
                raise RetryError(f"unknown retry option {key!r}")
            kwargs[name] = value
        kwargs.update(overrides)
        return cls(**kwargs)

    # ------------------------------------------------------------------
    def is_retryable(self, exc: BaseException) -> bool:
        return self._retryable(exc)

    def delay_for(self, attempt: int) -> float:
        """Nominal (un-jittered) sleep before attempt ``attempt`` (1-based)."""
        if attempt <= 1:
            return 0.0
        return min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 2))

    def jittered_delay(self, attempt: int) -> float:
        delay = self.delay_for(attempt)
        if delay <= 0 or self.jitter <= 0:
            return delay
        return delay * (1.0 - self.jitter * self._rng.random())

    # ------------------------------------------------------------------
    def attempts(self) -> Iterator[Attempt]:
        """Yield :class:`Attempt` objects, sleeping the backoff between them.

        The caller decides what an attempt *is*; typical shape::

            for attempt in policy.attempts():
                try:
                    connect()
                    break
                except OSError:
                    if attempt.number == policy.max_attempts:
                        raise
        """
        for number in range(1, self.max_attempts + 1):
            delay = self.jittered_delay(number)
            if delay > 0:
                self._sleep(delay)
            yield Attempt(number, delay)

    def call(
        self,
        fn: Callable[..., Any],
        *args: Any,
        on_retry: Optional[RetryObserver] = None,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``fn`` under this policy; return its result.

        Retries on retryable exceptions up to ``max_attempts`` total
        tries, then re-raises the last failure unchanged so callers keep
        their domain-specific except clauses.  ``on_retry`` observes each
        failure that will be retried.
        """
        last_exc: Optional[BaseException] = None
        for number in range(1, self.max_attempts + 1):
            try:
                return fn(*args, **kwargs)
            except BaseException as exc:
                last_exc = exc
                if number == self.max_attempts or not self.is_retryable(exc):
                    raise
                delay = self.jittered_delay(number + 1)
                if on_retry is not None:
                    on_retry(number, exc, delay)
                if delay > 0:
                    self._sleep(delay)
        raise last_exc  # pragma: no cover - loop always returns or raises

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, multiplier={self.multiplier}, "
            f"max_delay={self.max_delay}, jitter={self.jitter})"
        )
