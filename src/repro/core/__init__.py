"""EdiFlow core: the shared data model and the platform facade."""

from . import datamodel

__all__ = ["datamodel"]


def __getattr__(name):
    # Late import: platform pulls in every subsystem, and importing it at
    # module load time would create a cycle with repro.workflow.
    if name == "EdiFlow":
        from .platform import EdiFlow

        return EdiFlow
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
