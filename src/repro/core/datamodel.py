"""The EdiFlow core data model (Figure 3 of the paper).

One function, :func:`install_core_schema`, creates the three entity
groups of the conceptual model inside a database:

* **process definition** -- ``ediflow_process``, ``ediflow_activity``,
  ``ediflow_group``, ``ediflow_user`` (+ membership);
* **process execution** -- ``ediflow_process_instance``,
  ``ediflow_activity_instance``, ``ediflow_connected_user``;
* **visualization** -- ``ediflow_visualization``,
  ``ediflow_vis_component``, ``ediflow_visual_attributes``,
  ``ediflow_notification``.

Application entities (the gray area of Figure 3) are created by each
application; :func:`provenance_table_name` supports the ``createdBy``
style relationships tying application tuples to activity instances.

Status flags follow the paper exactly: ``{not_started, running,
completed}`` for both activity and process instances.
"""

from __future__ import annotations

from typing import Any

from ..db.database import Database
from ..db.schema import Column, ForeignKey
from ..db.types import ANY, BOOLEAN, FLOAT, INTEGER, TEXT, TIMESTAMP

# Status flag values (Section IV-A).
NOT_STARTED = "not_started"
RUNNING = "running"
COMPLETED = "completed"
STATUSES = (NOT_STARTED, RUNNING, COMPLETED)

# Notification operations (Section IV-A / VI-C).
OP_INSERT = "insert"
OP_UPDATE = "update"
OP_DELETE = "delete"

# Core table names, prefixed to stay clear of application entities.
T_GROUP = "ediflow_group"
T_USER = "ediflow_user"
T_USER_GROUP = "ediflow_user_group"
T_PROCESS = "ediflow_process"
T_ACTIVITY = "ediflow_activity"
T_PROCESS_INSTANCE = "ediflow_process_instance"
T_ACTIVITY_INSTANCE = "ediflow_activity_instance"
T_CONNECTED_USER = "ediflow_connected_user"
T_VISUALIZATION = "ediflow_visualization"
T_VIS_COMPONENT = "ediflow_vis_component"
T_VISUAL_ATTRIBUTES = "ediflow_visual_attributes"
T_NOTIFICATION = "ediflow_notification"
T_PROVENANCE = "ediflow_provenance"
T_PROCESS_VARIABLE = "ediflow_process_variable"
T_DELETION_SUFFIX = "_deleted"

CORE_TABLES = (
    T_GROUP,
    T_USER,
    T_USER_GROUP,
    T_PROCESS,
    T_ACTIVITY,
    T_PROCESS_INSTANCE,
    T_ACTIVITY_INSTANCE,
    T_CONNECTED_USER,
    T_VISUALIZATION,
    T_VIS_COMPONENT,
    T_VISUAL_ATTRIBUTES,
    T_NOTIFICATION,
    T_PROVENANCE,
    T_PROCESS_VARIABLE,
)


def deletion_table_name(table: str) -> str:
    """Name of the deletion table ``R^Delta`` for ``table`` (Section VI-A)."""
    return f"{table}{T_DELETION_SUFFIX}"


def install_core_schema(database: Database) -> None:
    """Create every core EdiFlow relation in ``database`` (idempotent)."""
    def mk(*args: Any, **kwargs: Any) -> None:
        database.create_table(*args, if_not_exists=True, **kwargs)

    mk(
        T_GROUP,
        [Column("id", INTEGER, nullable=False), Column("name", TEXT, nullable=False)],
        primary_key="id",
        unique=["name"],
    )
    mk(
        T_USER,
        [
            Column("id", INTEGER, nullable=False),
            Column("name", TEXT, nullable=False),
            Column("password", TEXT),
        ],
        primary_key="id",
        unique=["name"],
    )
    mk(
        T_USER_GROUP,
        [
            Column("user_id", INTEGER, nullable=False),
            Column("group_id", INTEGER, nullable=False),
        ],
        foreign_keys=[
            ForeignKey("user_id", T_USER, "id"),
            ForeignKey("group_id", T_GROUP, "id"),
        ],
    )
    mk(
        T_PROCESS,
        [Column("id", INTEGER, nullable=False), Column("name", TEXT, nullable=False)],
        primary_key="id",
        unique=["name"],
    )
    mk(
        T_ACTIVITY,
        [
            Column("id", INTEGER, nullable=False),
            Column("process_id", INTEGER, nullable=False),
            Column("name", TEXT, nullable=False),
            Column("group_id", INTEGER),  # the role allowed to perform it
        ],
        primary_key="id",
        foreign_keys=[
            ForeignKey("process_id", T_PROCESS, "id"),
            ForeignKey("group_id", T_GROUP, "id"),
        ],
    )
    mk(
        T_PROCESS_INSTANCE,
        [
            Column("id", INTEGER, nullable=False),
            Column("process_id", INTEGER, nullable=False),
            Column("status", TEXT, nullable=False, default=NOT_STARTED),
            Column("start", TIMESTAMP),
            Column("end", TIMESTAMP),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("process_id", T_PROCESS, "id")],
    )
    mk(
        T_ACTIVITY_INSTANCE,
        [
            Column("id", INTEGER, nullable=False),
            Column("activity_id", INTEGER, nullable=False),
            Column("process_instance_id", INTEGER, nullable=False),
            Column("user_id", INTEGER),
            Column("status", TEXT, nullable=False, default=NOT_STARTED),
            Column("start", TIMESTAMP),
            Column("end", TIMESTAMP),
        ],
        primary_key="id",
        foreign_keys=[
            ForeignKey("activity_id", T_ACTIVITY, "id"),
            ForeignKey("process_instance_id", T_PROCESS_INSTANCE, "id"),
            ForeignKey("user_id", T_USER, "id"),
        ],
    )
    mk(
        T_CONNECTED_USER,
        [
            Column("id", INTEGER, nullable=False),
            Column("user_id", INTEGER),
            Column("host", TEXT, nullable=False),
            Column("port", INTEGER, nullable=False),
            Column("table_name", TEXT, nullable=False),
            Column("last_seq_no", INTEGER, nullable=False, default=0),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("user_id", T_USER, "id")],
    )
    mk(
        T_VISUALIZATION,
        [Column("id", INTEGER, nullable=False), Column("name", TEXT, nullable=False)],
        primary_key="id",
    )
    mk(
        T_VIS_COMPONENT,
        [
            Column("id", INTEGER, nullable=False),
            Column("visualization_id", INTEGER, nullable=False),
            Column("label", TEXT),
            Column("type", TEXT, nullable=False),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("visualization_id", T_VISUALIZATION, "id")],
    )
    mk(
        T_VISUAL_ATTRIBUTES,
        [
            Column("id", INTEGER, nullable=False),
            Column("component_id", INTEGER, nullable=False),
            Column("obj_id", ANY, nullable=False),  # id of the rendered entity
            Column("x", FLOAT),
            Column("y", FLOAT),
            Column("width", FLOAT),
            Column("height", FLOAT),
            Column("color", TEXT),
            Column("label", TEXT),
            Column("selected", BOOLEAN, default=False),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("component_id", T_VIS_COMPONENT, "id")],
    )
    mk(
        T_NOTIFICATION,
        [
            Column("seq_no", INTEGER, nullable=False),
            Column("ts", TIMESTAMP, nullable=False),
            Column("table_name", TEXT, nullable=False),
            Column("op", TEXT, nullable=False),
        ],
        primary_key="seq_no",
    )
    mk(
        T_PROVENANCE,
        [
            Column("entity_table", TEXT, nullable=False),
            Column("entity_tid", INTEGER, nullable=False),
            Column("activity_instance_id", INTEGER, nullable=False),
            Column("relation", TEXT, nullable=False, default="createdBy"),
        ],
        foreign_keys=[
            ForeignKey("activity_instance_id", T_ACTIVITY_INSTANCE, "id")
        ],
    )
    # Process variables persisted per assignment (JSON-encoded), so a
    # crashed enactment resumes with the values it had -- the piece of
    # process state the paper keeps "in the DBMS" that an in-memory
    # Execution would otherwise lose.
    mk(
        T_PROCESS_VARIABLE,
        [
            Column("process_instance_id", INTEGER, nullable=False),
            Column("name", TEXT, nullable=False),
            Column("value", TEXT),  # JSON text; NULL = not representable
        ],
        unique=[("process_instance_id", "name")],
        foreign_keys=[
            ForeignKey("process_instance_id", T_PROCESS_INSTANCE, "id")
        ],
    )


class IdAllocator:
    """Sequential id allocation per core table.

    The embedded engine has no AUTOINCREMENT; this helper issues dense ids
    seeded from the current table contents so it also works on snapshots.
    """

    def __init__(self, database: Database) -> None:
        self._database = database
        self._next: dict[str, int] = {}

    def next_id(self, table: str, column: str = "id") -> int:
        key = f"{table}.{column}"
        if key not in self._next:
            highest = 0
            for row in self._database.table(table).scan():
                value = row.get(column)
                if isinstance(value, int) and value > highest:
                    highest = value
            self._next[key] = highest + 1
        value = self._next[key]
        self._next[key] = value + 1
        return value


def record_provenance(
    database: Database,
    entity_table: str,
    entity_tid: int,
    activity_instance_id: int,
    relation: str = "createdBy",
) -> None:
    """Record that an activity instance created/updated an entity tuple."""
    database.insert(
        T_PROVENANCE,
        {
            "entity_table": entity_table,
            "entity_tid": entity_tid,
            "activity_instance_id": activity_instance_id,
            "relation": relation,
        },
    )


def provenance_of(
    database: Database, entity_table: str, entity_tid: int
) -> list[dict[str, Any]]:
    """All provenance records for one entity tuple."""
    return [
        dict(row)
        for row in database.table(T_PROVENANCE).rows()
        if row["entity_table"] == entity_table and row["entity_tid"] == entity_tid
    ]
