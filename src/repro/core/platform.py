"""The EdiFlow platform facade.

One object wiring the full architecture of Figure 5: the DBMS at the
center, the workflow engine and propagation manager on top, the
notification/synchronization layer toward visualization modules, and the
view manager fanning visual attributes out to displays (Figure 6).

    ediflow = EdiFlow()
    ediflow.procedures.register(MyLayout())
    ediflow.deploy(definition)
    execution = ediflow.run("my-process", user="alice")
    view = ediflow.views.add_view("laptop", component_id)
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional

from ..db.database import Database
from ..db.persistence import load_snapshot, save_snapshot
from ..ivm.registry import ViewRegistry
from ..sync.batching import PropagationPolicy
from ..sync.notification import NotificationCenter
from ..sync.server import SyncServer
from ..vis.views import ViewManager
from ..workflow.engine import Execution, WorkflowEngine
from ..workflow.model import ProcessDefinition
from ..workflow.monitor import ProcessMonitor
from ..workflow.procedures import ProcedureRegistry
from ..workflow.propagation import PropagationManager
from ..workflow.spec import load_procedures, parse_process, parse_process_file
from . import datamodel


class EdiFlow:
    """The assembled platform."""

    def __init__(
        self,
        database: Optional[Database] = None,
        use_sockets: bool = False,
        name: str = "ediflow",
    ) -> None:
        self.database = database or Database(name)
        datamodel.install_core_schema(self.database)
        self.engine = WorkflowEngine(self.database)
        self.propagation = PropagationManager(self.engine)
        self.center = NotificationCenter(self.database)
        self.server = SyncServer(self.database, self.center, use_sockets=use_sockets)
        self.views = ViewManager(self.database, self.server)
        self.materialized = ViewRegistry(self.database)
        self.monitor = ProcessMonitor(self.database)

    # -- convenience passthroughs ------------------------------------------
    @property
    def procedures(self) -> ProcedureRegistry:
        return self.engine.procedures

    def deploy(self, definition: ProcessDefinition) -> None:
        self.engine.deploy(definition)

    def deploy_xml(self, xml_text: str) -> ProcessDefinition:
        """Parse, load declared procedure classpaths, and deploy."""
        definition = parse_process(xml_text)
        load_procedures(definition, self.procedures)
        self.engine.deploy(definition)
        return definition

    def deploy_xml_file(self, path: str | Path) -> ProcessDefinition:
        definition = parse_process_file(str(path))
        load_procedures(definition, self.procedures)
        self.engine.deploy(definition)
        return definition

    def run(self, process_name: str, **kwargs: Any) -> Execution:
        return self.engine.run(process_name, **kwargs)

    def start(self, process_name: str, **kwargs: Any) -> Execution:
        return self.engine.start(process_name, **kwargs)

    def close_execution(self, execution: Execution) -> None:
        self.engine.close(execution)

    def execute(self, sql: str, params: Any = ()) -> Any:
        return self.database.execute(sql, params)

    def query(self, sql: str, params: Any = ()) -> list[dict[str, Any]]:
        return self.database.query(sql, params)

    # -- propagation policies (Section V) ------------------------------------
    def set_propagation_policy(self, table: str, policy: PropagationPolicy) -> None:
        """Apply one policy to ``table`` across the whole pipeline.

        Configures both the notification center (mirror/display path) and
        the workflow propagation manager (UP handler path); materialized
        views opt in per view via ``materialized.set_policy``.
        """
        self.center.set_policy(table, policy)
        self.propagation.set_policy(table, policy)

    def flush_propagation(self, table: Optional[str] = None) -> int:
        """Flush buffered changes now; ``None`` flushes every table."""
        if table is None:
            return (
                self.center.flush_all()
                + self.propagation.flush_all()
                + self.materialized.flush_all()
            )
        return self.center.flush(table) + self.propagation.flush(table)

    # -- persistence ---------------------------------------------------------
    def save(self, path: str | Path) -> int:
        """Snapshot the whole database (process state included)."""
        return save_snapshot(self.database, path)

    @classmethod
    def load(cls, path: str | Path, use_sockets: bool = False) -> "EdiFlow":
        """Rebuild a platform over a snapshot.

        Process *definitions* are code, not data -- redeploy them after
        loading; instance history and application data come back as-is.
        """
        return cls(database=load_snapshot(path), use_sockets=use_sockets)

    def shutdown(self) -> None:
        """Stop the synchronization layer (open executions stay queryable)."""
        self.views.close()
        self.server.close()
        self.center.close()
