"""Exception hierarchy shared by every repro subsystem.

All library errors derive from :class:`ReproError` so applications can catch
one base class.  Subsystems raise the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DatabaseError(ReproError):
    """Base class for errors raised by the embedded database engine."""


class SchemaError(DatabaseError):
    """Invalid schema definition or violation of a schema constraint."""


class TypeMismatchError(SchemaError):
    """A value does not conform to the declared column type."""


class ConstraintViolation(DatabaseError):
    """Primary key, unique, or not-null constraint violated."""


class UnknownTableError(DatabaseError):
    """A statement referenced a table that does not exist."""


class UnknownColumnError(DatabaseError):
    """An expression referenced a column not present in scope."""


class SQLSyntaxError(DatabaseError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class TransactionError(DatabaseError):
    """Misuse of the transaction API (e.g. commit without begin)."""


class ViewError(ReproError):
    """Errors in incremental-view definitions or maintenance."""


class LineageError(ReproError):
    """Errors in lineage capture, storage, or provenance queries."""


class WorkflowError(ReproError):
    """Base class for workflow/process-model errors."""


class SpecificationError(WorkflowError):
    """A process specification (XML or programmatic) is invalid."""


class EnactmentError(WorkflowError):
    """A process instance could not be advanced."""


class ProcedureError(WorkflowError):
    """A black-box procedure failed or was misconfigured."""


class PropagationError(WorkflowError):
    """An update-propagation action could not be applied."""


class IsolationError(WorkflowError):
    """Violation of the isolation protocol (e.g. unknown deletion epoch)."""


class RetryError(ReproError):
    """A retry policy was misconfigured (not: the retried call failed)."""


class SyncError(ReproError):
    """Errors in the DBMS <-> client synchronization protocol."""


class ProtocolError(SyncError):
    """A peer sent a message that violates the wire protocol."""


class ConnectionLostError(SyncError):
    """The notification transport died and could not (yet) be restored."""


class VisError(ReproError):
    """Errors raised by the visualization toolkit."""


class LayoutError(VisError):
    """A layout algorithm received an invalid graph or parameters."""
