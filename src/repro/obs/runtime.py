"""The process-wide observability switchboard.

Instrumented modules import the :data:`OBS` singleton once and guard
every hot path with a single attribute check::

    from ..obs.runtime import OBS
    ...
    if OBS.enabled:
        with OBS.tracer.span("db.execute", tags={...}):
            ...

Disabled (the default) the cost is one global load plus one attribute
read -- no allocation, no locking, no time syscalls.  Rare *events*
(reconnects, degradations, hook failures) are counted unconditionally:
a metric you only record while someone is watching is not a metric.

``enabled`` is a plain attribute so it can be flipped at runtime; the
flip is safe under threads (a racing reader either sees the old or the
new value, both of which are consistent states).
"""

from __future__ import annotations

from typing import Optional

from .metrics import MetricsRegistry
from .profiler import DEFAULT_HZ, SamplingProfiler
from .trace import Tracer

__all__ = ["OBS", "ObsRuntime", "enable", "disable", "enabled", "reset"]


class ObsRuntime:
    """One tracer + one metrics registry + one profiler + the switch."""

    __slots__ = ("enabled", "tracer", "metrics", "profiler")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        #: The continuous sampling profiler, or None until enabled.
        #: Kept separate from ``enabled``: sampling has a real (small)
        #: cost, so it is opt-in even while tracing is on.
        self.profiler: Optional[SamplingProfiler] = None

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # ------------------------------------------------------------------
    # Continuous profiling
    def enable_profiler(self, hz: float = DEFAULT_HZ, **kwargs) -> SamplingProfiler:
        """Start (or return the already-running) sampling profiler.

        The profiler is wired to this runtime's tracer: samples are
        attributed to active spans, and a finish hook stamps
        ``self_time_ms`` onto spans the sampler saw.  Idempotent --
        a second call returns the live instance untouched.
        """
        profiler = self.profiler
        if profiler is not None and profiler.running:
            return profiler
        if profiler is None:
            profiler = SamplingProfiler(tracer=self.tracer, hz=hz, **kwargs)
            self.profiler = profiler
        self.tracer.add_finish_hook(profiler.on_span_finish)
        profiler.start()
        return profiler

    def disable_profiler(self) -> None:
        """Stop the sampler (aggregates survive for post-mortem reads)."""
        profiler = self.profiler
        if profiler is None:
            return
        self.tracer.remove_finish_hook(profiler.on_span_finish)
        profiler.stop()

    def flamegraph(self, weights: str = "samples") -> str:
        """Collapsed-stack flamegraph text from the profiler.

        Empty string when the profiler was never enabled: callers can
        pipe the output to flamegraph tooling unconditionally.
        """
        profiler = self.profiler
        if profiler is None:
            return ""
        return profiler.flamegraph(weights=weights)

    def reset(self) -> None:
        """Clear collected spans and metrics (the switch is untouched)."""
        self.tracer.reset()
        self.metrics.reset()
        if self.profiler is not None:
            self.disable_profiler()
            self.profiler = None


#: The process-wide instance every instrumentation site reads.
OBS = ObsRuntime()


def enable() -> None:
    """Turn tracing + hot-path metrics on, process-wide."""
    OBS.enable()


def disable() -> None:
    """Return to the near-zero-overhead default."""
    OBS.disable()


def enabled() -> bool:
    return OBS.enabled


def reset() -> None:
    OBS.reset()
