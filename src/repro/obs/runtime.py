"""The process-wide observability switchboard.

Instrumented modules import the :data:`OBS` singleton once and guard
every hot path with a single attribute check::

    from ..obs.runtime import OBS
    ...
    if OBS.enabled:
        with OBS.tracer.span("db.execute", tags={...}):
            ...

Disabled (the default) the cost is one global load plus one attribute
read -- no allocation, no locking, no time syscalls.  Rare *events*
(reconnects, degradations, hook failures) are counted unconditionally:
a metric you only record while someone is watching is not a metric.

``enabled`` is a plain attribute so it can be flipped at runtime; the
flip is safe under threads (a racing reader either sees the old or the
new value, both of which are consistent states).
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .trace import Tracer

__all__ = ["OBS", "ObsRuntime", "enable", "disable", "enabled", "reset"]


class ObsRuntime:
    """One tracer + one metrics registry + the master switch."""

    __slots__ = ("enabled", "tracer", "metrics")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Clear collected spans and metrics (the switch is untouched)."""
        self.tracer.reset()
        self.metrics.reset()


#: The process-wide instance every instrumentation site reads.
OBS = ObsRuntime()


def enable() -> None:
    """Turn tracing + hot-path metrics on, process-wide."""
    OBS.enable()


def disable() -> None:
    """Return to the near-zero-overhead default."""
    OBS.disable()


def enabled() -> bool:
    return OBS.enabled


def reset() -> None:
    OBS.reset()
