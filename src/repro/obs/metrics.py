"""Named counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is the numeric half of the observability
layer: cheap always-on event counts (reconnects, hook failures) and
gated hot-path measurements (per-statement latencies, delta sizes).
``snapshot()`` returns one plain dict for tests and dashboards;
``prometheus_text()`` renders the standard text exposition format so an
operator can scrape the system without any new dependency.

Metric names are dotted (``sync.client.reconnects``); labels are
keyword arguments at lookup time.  Series are identified by
``(name, sorted(labels))`` -- looking the same series up twice returns
the same instrument.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Callable, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "SUMMARY_QUANTILES",
]

#: Default latency buckets in milliseconds: sub-resolution ticks up to
#: the one-second pathological tail.
DEFAULT_BUCKETS = (
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    1000.0,
)

#: The quantiles every histogram summarizes in snapshots and text dumps.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that goes up and down; optionally computed on read."""

    __slots__ = ("name", "labels", "_value", "_fn", "_lock")

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._fn = fn
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Fixed-bucket histogram (cumulative on export, like Prometheus)."""

    __slots__ = (
        "name",
        "labels",
        "buckets",
        "_counts",
        "_sum",
        "_count",
        "_min",
        "_max",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted non-empty tuple")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> Optional[float]:
        """Smallest observed value (None while empty)."""
        return self._min if self._count else None

    @property
    def max(self) -> Optional[float]:
        """Largest observed value (None while empty)."""
        return self._max if self._count else None

    def bucket_counts(self) -> dict[str, int]:
        """Cumulative counts keyed by upper bound (incl. ``+Inf``)."""
        with self._lock:
            counts = list(self._counts)
        out: dict[str, int] = {}
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out[format_bound(bound)] = running
        out["+Inf"] = running + counts[-1]
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile from the fixed buckets.

        Uses the standard ``histogram_quantile`` interpolation: find the
        bucket the target rank falls into and interpolate linearly within
        it (the first bucket's lower edge is 0).  Returns ``None`` while
        empty.  Every estimate is clamped to the *observed* ``[min, max]``
        range: interpolation alone fabricates values a single-bucket or
        single-valued histogram never saw (e.g. all observations equal to
        0.01 reporting a p99 of 0.049), and observations past the last
        finite bound clamp to the true maximum rather than the bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
            lo = self._min
            hi = self._max
        if total == 0:
            return None
        if lo == hi:
            # Every observation was the same value: exact, not interpolated.
            return lo
        rank = q * total
        cumulative = 0.0
        for index, bound in enumerate(self.buckets):
            in_bucket = counts[index]
            if cumulative + in_bucket >= rank and in_bucket > 0:
                lower = self.buckets[index - 1] if index > 0 else 0.0
                fraction = (rank - cumulative) / in_bucket
                return min(max(lower + (bound - lower) * fraction, lo), hi)
            cumulative += in_bucket
        # Rank lives in the +Inf bucket: clamp to the observed maximum.
        return hi

    def quantiles(
        self, qs: tuple[float, ...] = SUMMARY_QUANTILES
    ) -> dict[str, Optional[float]]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` style summaries."""
        return {f"p{round(q * 100)}": self.quantile(q) for q in qs}


def format_bound(bound: float) -> str:
    """Render a bucket bound the way Prometheus does (no trailing zeros)."""
    text = f"{bound:g}"
    return text


def _sanitize(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash first (it is the escape character itself), then the quote
    that would close the value early, then literal newlines which would
    break the line-oriented format.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_text(labels: LabelKey, extra: Optional[tuple[tuple[str, str], ...]] = None) -> str:
    pairs = list(labels) + list(extra or ())
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


class MetricsRegistry:
    """Get-or-create home for every instrument."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(key, Counter(name, key[1]))
        return counter

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(key, Gauge(name, key[1]))
        return gauge

    def gauge_fn(self, name: str, fn: Callable[[], float], **labels: Any) -> Gauge:
        """A gauge computed by ``fn`` at snapshot/dump time."""
        key = (name, _label_key(labels))
        with self._lock:
            gauge = Gauge(name, key[1], fn=fn)
            self._gauges[key] = gauge
        return gauge

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    key, Histogram(name, key[1], buckets=buckets)
                )
        return histogram

    # ------------------------------------------------------------------
    def instruments(self) -> list[tuple[str, Any]]:
        """Every live instrument as ``(kind, instrument)`` pairs.

        Kinds are ``"counter"``, ``"gauge"``, ``"histogram"``.  Unlike
        :meth:`snapshot` this hands back the instrument objects, so
        structured consumers (the telemetry sink) can read names and
        label pairs without re-parsing rendered series names.
        """
        with self._lock:
            return (
                [("counter", c) for c in self._counters.values()]
                + [("gauge", g) for g in self._gauges.values()]
                + [("histogram", h) for h in self._histograms.values()]
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _series_name(name: str, labels: LabelKey) -> str:
        if not labels:
            return name
        inner = ",".join(f"{k}={v}" for k, v in labels)
        return f"{name}{{{inner}}}"

    def snapshot(self) -> dict[str, Any]:
        """Every series' current value as one plain dict."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": {
                self._series_name(c.name, c.labels): c.value for c in counters
            },
            "gauges": {self._series_name(g.name, g.labels): g.value for g in gauges},
            "histograms": {
                self._series_name(h.name, h.labels): {
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min,
                    "max": h.max,
                    "buckets": h.bucket_counts(),
                    **h.quantiles(),
                }
                for h in histograms
            },
        }

    def prometheus_text(self) -> str:
        """Standard text exposition format (``repro_`` prefix, dots -> _)."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        lines: list[str] = []
        seen_types: set[str] = set()

        def type_line(name: str, kind: str) -> None:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for counter in sorted(counters, key=lambda c: (c.name, c.labels)):
            name = _sanitize(counter.name) + "_total"
            type_line(name, "counter")
            lines.append(f"{name}{_label_text(counter.labels)} {counter.value:g}")
        for gauge in sorted(gauges, key=lambda g: (g.name, g.labels)):
            name = _sanitize(gauge.name)
            type_line(name, "gauge")
            lines.append(f"{name}{_label_text(gauge.labels)} {gauge.value:g}")
        for histogram in sorted(histograms, key=lambda h: (h.name, h.labels)):
            name = _sanitize(histogram.name)
            type_line(name, "histogram")
            for bound, count in histogram.bucket_counts().items():
                lines.append(
                    f"{name}_bucket"
                    f"{_label_text(histogram.labels, (('le', bound),))} {count}"
                )
            # Summary-style quantile series alongside the buckets, so a
            # scrape shows p50/p95/p99 without server-side PromQL.
            for q in SUMMARY_QUANTILES:
                value = histogram.quantile(q)
                if value is not None:
                    lines.append(
                        f"{name}"
                        f"{_label_text(histogram.labels, (('quantile', f'{q:g}'),))}"
                        f" {value:g}"
                    )
            lines.append(f"{name}_sum{_label_text(histogram.labels)} {histogram.sum:g}")
            lines.append(
                f"{name}_count{_label_text(histogram.labels)} {histogram.count}"
            )
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every series (tests use this between scenarios)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
