"""Continuous wall-clock sampling profiler, span-aware and zero-dependency.

Spans (PR 3) say how long ``db.execute`` took; they cannot say *where*
inside it the time went, and adding more spans to find out would mean
instrumenting every function by hand.  A statistical profiler closes
that gap: a daemon thread wakes ``hz`` times a second (default 99 -- the
classic off-by-one that avoids lockstep with 10ms/100ms periodic work),
snapshots every thread's Python stack via ``sys._current_frames()``, and
aggregates the stacks in collapsed form (``frame;frame;frame``, the
Brendan Gregg flamegraph interchange format).

Two things make this profiler fit the rest of the observability layer
instead of being a bolt-on:

**Span attribution.**  The :class:`~repro.obs.trace.Tracer` keeps a
cross-thread registry of each thread's context stack, so every sample is
attributed to the innermost *open* span on the sampled thread.  The
aggregates therefore answer "how much self-time did ``sync.flush``
accumulate, and on which stacks" -- and when a sampled span finishes, a
tracer finish-hook stamps ``self_time_ms`` / ``profile_samples`` into
its tags, so the existing ``sys_spans`` pipeline carries profile data
with zero schema changes.

**Honest accounting.**  Each sample credits the *measured* elapsed time
since the previous sample (not the nominal ``1/hz``), so the per-thread
totals track wall time even when the sampler thread itself is scheduled
late.  A busy thread's attributed time converges on its true wall time;
the acceptance bar (>=90% of a busy run attributed) falls out of this.

Recursion guard: the sampler never samples its own thread, nor any
thread currently inside :meth:`Tracer.suppress` (the telemetry sink's
do-not-observe marker) -- the observer does not observe itself.

Everything is bounded: at most ``max_stacks`` distinct collapsed stacks
are kept (the tail aggregates under ``<overflow>``), stack walks stop at
``max_depth`` frames, and per-span stack breakdowns are an LRU of
``span_table_size`` recent span ids for the slow-path attributor.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import OrderedDict
from typing import Any, Iterable, Optional

from .trace import Span, Tracer

__all__ = ["DEFAULT_HZ", "SamplingProfiler", "collapse_frames", "iter_collapsed"]

#: Default sampling rate.  99 Hz, not 100: sampling at a divisor of
#: common timer periods would alias against periodic work and
#: systematically over- or under-sample it.
DEFAULT_HZ = 99

#: Catch-all frame for stacks evicted by the ``max_stacks`` bound.
OVERFLOW_STACK = "<overflow>"


def collapse_frames(frame: Any, max_depth: int = 64) -> str:
    """Render a frame chain as a collapsed stack, root first.

    Frames are ``filestem:qualname`` -- short enough to read in a
    flamegraph, unique enough to find in the repo.  Chains deeper than
    ``max_depth`` keep the *leaf-most* frames (the interesting ones) and
    mark the elision with a ``<deep>`` root.
    """
    parts: list[str] = []
    depth = 0
    while frame is not None and depth < max_depth:
        code = frame.f_code
        stem = code.co_filename.rsplit("/", 1)[-1]
        if stem.endswith(".py"):
            stem = stem[:-3]
        name = getattr(code, "co_qualname", None) or code.co_name
        parts.append(f"{stem}:{name}")
        frame = frame.f_back
        depth += 1
    if frame is not None:
        parts.append("<deep>")
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Samples every thread's stack at ``hz``; aggregates collapsed stacks.

    Parameters
    ----------
    tracer:
        Span source for attribution and the suppression guard.  ``None``
        degrades gracefully to a plain (span-blind) wall profiler.
    hz:
        Target sampling rate.  Accounting uses measured inter-sample
        deltas, so a late sampler loses resolution, not time.
    max_stacks:
        Bound on distinct ``(thread, span, stack)`` aggregation keys;
        beyond it new stacks collapse into ``<overflow>`` per thread.
    max_depth:
        Frame-walk depth bound per sample.
    span_table_size:
        LRU size of the per-span-id sample tables kept for finished-span
        tagging and the slow-path attributor.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        hz: float = DEFAULT_HZ,
        max_stacks: int = 4096,
        max_depth: int = 64,
        span_table_size: int = 1024,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz}")
        self.tracer = tracer
        self.hz = float(hz)
        self.max_stacks = max_stacks
        self.max_depth = max_depth
        self.span_table_size = span_table_size
        self._lock = threading.Lock()
        #: (thread_name, span_name|None, stack) -> [samples, ns] since
        #: the last drain.
        self._stacks: dict[tuple[str, Optional[str], str], list[float]] = {}
        #: Same keys, lifetime totals (merged from _stacks at drain time)
        #: -- flamegraphs read deltas + totals so a draining sink never
        #: erases history.
        self._totals: dict[tuple[str, Optional[str], str], list[float]] = {}
        #: span_id -> [samples, ns, {stack: ns}] for recently sampled spans.
        self._span_tables: OrderedDict[int, list[Any]] = OrderedDict()
        self._excluded: set[int] = set()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        # Lifetime counters (tests and the sink read these).
        self.samples_total = 0
        self.attributed_ns = 0
        self.started_ns: Optional[int] = None
        self.errors = 0

    # ------------------------------------------------------------------
    # Lifecycle
    def start(self) -> "SamplingProfiler":
        """Start the sampler thread.  Idempotent."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, daemon=True, name="profiler-sampler"
            )
            if self.started_ns is None:
                self.started_ns = time.perf_counter_ns()
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling.  Idempotent; aggregates are kept."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=2.0)
        with self._lock:
            self._thread = None

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def exclude_thread(self, ident: int) -> None:
        """Never sample the thread with this ident (beyond the built-in
        guards: the sampler itself and tracer-suppressed threads)."""
        with self._lock:
            self._excluded.add(ident)

    # ------------------------------------------------------------------
    # Sampler
    def _run(self) -> None:
        interval = 1.0 / self.hz
        last_ns = time.perf_counter_ns()
        while not self._stop.wait(interval):
            try:
                last_ns = self._sample_once(last_ns)
            except Exception:  # pragma: no cover - never take the app down
                self.errors += 1

    def _sample_once(self, last_ns: int) -> int:
        now_ns = time.perf_counter_ns()
        dt = now_ns - last_ns
        frames = sys._current_frames()
        own = threading.get_ident()
        if self.tracer is not None:
            suppressed = self.tracer.suppressed_idents()
            active = self.tracer.active_spans()
            self.tracer.prune_thread_registry(frames.keys())
        else:
            suppressed = set()
            active = {}
        names = {t.ident: t.name for t in threading.enumerate()}
        with self._lock:
            for ident, frame in frames.items():
                if ident == own or ident in suppressed or ident in self._excluded:
                    continue
                stack = collapse_frames(frame, self.max_depth)
                span = active.get(ident)
                span_name = span.name if span is not None else None
                key = (names.get(ident, f"thread-{ident}"), span_name, stack)
                cell = self._stacks.get(key)
                if cell is None:
                    if len(self._stacks) >= self.max_stacks:
                        key = (key[0], span_name, OVERFLOW_STACK)
                        cell = self._stacks.get(key)
                    if cell is None:
                        cell = self._stacks[key] = [0, 0]
                cell[0] += 1
                cell[1] += dt
                self.samples_total += 1
                self.attributed_ns += dt
                if span is not None:
                    self._credit_span(span.span_id, stack, dt)
        # frames holds real frame objects; drop the reference eagerly.
        del frames
        return now_ns

    def _credit_span(self, span_id: int, stack: str, dt: int) -> None:
        # Caller holds self._lock.
        table = self._span_tables.get(span_id)
        if table is None:
            table = self._span_tables[span_id] = [0, 0, {}]
            while len(self._span_tables) > self.span_table_size:
                self._span_tables.popitem(last=False)
        else:
            self._span_tables.move_to_end(span_id)
        table[0] += 1
        table[1] += dt
        stacks = table[2]
        if stack in stacks or len(stacks) < 8:
            stacks[stack] = stacks.get(stack, 0) + dt
        else:
            stacks["<other>"] = stacks.get("<other>", 0) + dt

    # ------------------------------------------------------------------
    # Finished-span tagging (wired by ObsRuntime via a tracer finish hook)
    def on_span_finish(self, span: Span) -> None:
        """Stamp profile evidence onto a span the sampler saw."""
        with self._lock:
            table = self._span_tables.get(span.span_id)
            if table is None:
                return
            samples, ns = table[0], table[1]
        span.tags["profile_samples"] = samples
        span.tags["self_time_ms"] = round(ns / 1e6, 3)

    def span_profile(self, span_id: int) -> Optional[dict[str, Any]]:
        """Sample table for one span id (the slowlog's evidence source)."""
        with self._lock:
            table = self._span_tables.get(span_id)
            if table is None:
                return None
            return {
                "samples": table[0],
                "self_ms": table[1] / 1e6,
                "stacks": {s: ns / 1e6 for s, ns in table[2].items()},
            }

    # ------------------------------------------------------------------
    # Aggregate reads
    def drain(self) -> list[dict[str, Any]]:
        """Snapshot-and-reset the since-last-drain aggregates.

        Returns one dict per ``(thread, span, stack)`` key sampled since
        the previous drain; the drained counts are merged into the
        lifetime totals so :meth:`flamegraph` keeps full history.  This
        is the telemetry sink's read path for ``sys_stacks``.
        """
        with self._lock:
            drained = self._stacks
            self._stacks = {}
            for key, (samples, ns) in drained.items():
                cell = self._totals.get(key)
                if cell is None:
                    if len(self._totals) >= self.max_stacks:
                        key = (key[0], key[1], OVERFLOW_STACK)
                        cell = self._totals.get(key)
                    if cell is None:
                        cell = self._totals[key] = [0, 0]
                cell[0] += samples
                cell[1] += ns
        return [
            {
                "thread": thread,
                "span_name": span_name,
                "stack": stack,
                "samples": samples,
                "self_ms": ns / 1e6,
            }
            for (thread, span_name, stack), (samples, ns) in drained.items()
        ]

    def totals(self) -> list[dict[str, Any]]:
        """Lifetime aggregates in the same row shape as :meth:`drain`.

        Unlike :meth:`drain` this never resets anything; the telemetry
        sink persists these as keyframe rows so a reader can reconstruct
        cumulative profiles after delta rows age out of retention.
        """
        return [
            {
                "thread": thread,
                "span_name": span_name,
                "stack": stack,
                "samples": int(samples),
                "self_ms": ns / 1e6,
            }
            for (thread, span_name, stack), (samples, ns) in self._merged().items()
        ]

    def _merged(self) -> dict[tuple[str, Optional[str], str], list[float]]:
        with self._lock:
            merged = {k: list(v) for k, v in self._totals.items()}
            for key, (samples, ns) in self._stacks.items():
                cell = merged.setdefault(key, [0, 0])
                cell[0] += samples
                cell[1] += ns
        return merged

    def flamegraph(self, weights: str = "samples") -> str:
        """Lifetime aggregates as Brendan-Gregg collapsed-stack text.

        One line per distinct stack: ``thread;span:<name>;frames... N``,
        ready for ``flamegraph.pl`` / speedscope / inferno.  ``weights``
        picks the count column: ``"samples"`` (classic) or ``"ms"``
        (integer milliseconds of attributed wall time).
        """
        if weights not in ("samples", "ms"):
            raise ValueError(f"weights must be 'samples' or 'ms', got {weights!r}")
        lines = []
        merged = sorted(
            self._merged().items(), key=lambda kv: (kv[0][0], kv[0][1] or "", kv[0][2])
        )
        for (thread, span_name, stack), (samples, ns) in merged:
            frames = [thread]
            if span_name is not None:
                frames.append(f"span:{span_name}")
            if stack:
                frames.append(stack)
            weight = samples if weights == "samples" else max(1, round(ns / 1e6))
            lines.append(f"{';'.join(frames)} {weight:g}")
        return "\n".join(lines)

    def hottest_spans(self, limit: int = 10) -> list[dict[str, Any]]:
        """Span names by attributed self-time, hottest first."""
        agg: dict[str, list[float]] = {}
        for (_, span_name, _), (samples, ns) in self._merged().items():
            if span_name is None:
                continue
            cell = agg.setdefault(span_name, [0, 0])
            cell[0] += samples
            cell[1] += ns
        ranked = sorted(agg.items(), key=lambda kv: -kv[1][1])[:limit]
        return [
            {"span_name": name, "samples": int(samples), "self_ms": ns / 1e6}
            for name, (samples, ns) in ranked
        ]

    def thread_totals(self) -> dict[str, float]:
        """Attributed wall milliseconds per thread name (lifetime)."""
        out: dict[str, float] = {}
        for (thread, _, _), (_, ns) in self._merged().items():
            out[thread] = out.get(thread, 0.0) + ns / 1e6
        return out

    def stats(self) -> dict[str, Any]:
        with self._lock:
            distinct = len(self._totals) + len(self._stacks)
        wall_ms = (
            (time.perf_counter_ns() - self.started_ns) / 1e6
            if self.started_ns is not None
            else 0.0
        )
        return {
            "running": self.running,
            "hz": self.hz,
            "samples": self.samples_total,
            "attributed_ms": self.attributed_ns / 1e6,
            "wall_ms": wall_ms,
            "distinct_stacks": distinct,
            "errors": self.errors,
        }

    def reset(self) -> None:
        """Drop every aggregate (the sampler, if running, keeps going)."""
        with self._lock:
            self._stacks.clear()
            self._totals.clear()
            self._span_tables.clear()
            self.samples_total = 0
            self.attributed_ns = 0
            self.started_ns = (
                time.perf_counter_ns() if self.running else None
            )


def iter_collapsed(text: str) -> Iterable[tuple[list[str], int]]:
    """Parse collapsed-stack text back into ``(frames, count)`` pairs.

    The inverse of :meth:`SamplingProfiler.flamegraph`; the dashboard's
    icicle layout and tests use it rather than re-splitting by hand.
    """
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        try:
            weight = int(float(count))
        except ValueError:
            continue
        yield stack.split(";"), weight
