"""Self-hosted telemetry: spans and metrics as first-class relations.

EdiFlow's thesis is that state worth reacting to belongs in the DBMS,
where generic mechanisms -- triggers, propagation policies, incremental
views, visualization bindings -- apply to it uniformly.  The tracing
layer (PR 3) violated that thesis for its own data: spans lived in a
volatile ring buffer that dies with the process and cannot be queried,
joined, or watched.  :class:`TelemetrySink` closes the loop by draining
the :class:`~repro.obs.trace.Tracer` buffer and the
:class:`~repro.obs.metrics.MetricsRegistry` into *system tables* of a
dedicated telemetry :class:`~repro.db.database.Database`:

``sys_spans``
    one row per finished span -- plus, optionally, one row per
    workflow process/activity timeline entry
    (:meth:`TelemetrySink.ingest_process_monitor`), so obs spans and
    ProcessMonitor traces share a single queryable schema.  Workflow
    rows carry ``kind='workflow'`` and *logical-clock* start/end
    values (the engine stamps activities with the database clock, not
    wall time); span rows carry ``kind='span'`` and
    ``perf_counter_ns`` values.
``sys_span_events``
    point annotations attached via :meth:`Span.add_event` (EXPLAIN
    ANALYZE operator counters, retry firings, forced flushes).
``sys_metrics``
    one row per (instrument, statistic) per collection generation
    (``snap``): counters and gauges as ``stat='value'``, histograms as
    ``count``/``sum``/``p50``/``p95``/``p99``.  Old generations are
    pruned past :attr:`TelemetrySink.metric_retention`.
``sys_profiles`` / ``sys_stacks``
    the continuous sampling profiler's aggregates
    (:mod:`repro.obs.profiler`): per-(thread, span) self-time rows and
    the collapsed stacks behind them, one delta batch per collection
    plus lifetime-keyframe rows every
    :attr:`TelemetrySink.metric_keyframe_every` collections, pruned past
    :attr:`TelemetrySink.profile_retention`.

The system tables are watched by the sink's own
:class:`~repro.sync.notification.NotificationCenter` under a
:class:`~repro.sync.batching.Threshold` policy, so dashboards attach
through the *normal* sync machinery (SyncServer/SyncClient, mirrors,
view registry) and receive batched NOTIFYB frames per flush cycle.

Recursion guard
---------------
The sink writes tracer output into a database whose write path is
itself instrumented; unguarded, every flush would create spans that the
next flush persists, forever.  Two independent layers prevent that:

1. every sink operation runs inside :meth:`Tracer.suppress`, so spans
   created *on the sink's thread* (db.write, db.trigger, sync.notify,
   sync.flush on the telemetry database) are no-op ``NullSpan``\\ s and
   never reach the ring buffer;
2. :meth:`collect` drops any drained span tagged with a ``sys_*``
   system table (belt and braces: a dashboard client refreshing its
   telemetry mirrors on another, unsuppressed thread may legitimately
   create such spans; they are counted in ``guard_dropped`` and never
   persisted, so the observer still never observes itself).

The default Threshold policy deliberately has ``max_delay_ms=None``:
with no time bound there is no background flusher thread inside the
notification center, so *every* telemetry flush happens on a thread the
sink has suppressed.  The sink's own cadence (:meth:`start` /
:meth:`collect`) provides the time bound instead.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Optional

from ..db.database import Database
from ..db.expression import col
from ..db.schema import Column
from ..db.types import FLOAT, INTEGER, TEXT
from ..sync.batching import PropagationPolicy, Threshold
from ..sync.notification import NotificationCenter
from .runtime import OBS, ObsRuntime
from .trace import Span

__all__ = [
    "SYS_METRICS",
    "SYS_PROFILES",
    "SYS_SPANS",
    "SYS_SPAN_EVENTS",
    "SYS_STACKS",
    "SYSTEM_TABLES",
    "GUARDED_TABLES",
    "TelemetrySink",
]

SYS_SPANS = "sys_spans"
SYS_SPAN_EVENTS = "sys_span_events"
SYS_METRICS = "sys_metrics"
SYS_PROFILES = "sys_profiles"
SYS_STACKS = "sys_stacks"

#: Every telemetry system table.  Spans tagged with one of these (a
#: dashboard refreshing its own mirrors) are filtered at collect time.
SYSTEM_TABLES = (SYS_SPANS, SYS_SPAN_EVENTS, SYS_METRICS, SYS_PROFILES, SYS_STACKS)

#: Tables the recursion guard filters on.  A superset of
#: :data:`SYSTEM_TABLES`: ``sys_slowlog`` lives in whatever database its
#: :class:`~repro.obs.slowlog.SlowLog` was pointed at (possibly not the
#: sink's), but spans touching it are still the observer observing
#: itself and must never persist.
GUARDED_TABLES = frozenset(SYSTEM_TABLES) | {"sys_slowlog"}

#: Default flush policy: pure count batching, no timer thread (see the
#: module docstring for why the time bound lives in the sink, not here).
DEFAULT_POLICY = Threshold(max_changes=256, max_delay_ms=None)


def _json_text(mapping: dict[str, Any]) -> str:
    return json.dumps(mapping, sort_keys=True, default=str)


class TelemetrySink:
    """Drains tracer + metrics into queryable, watchable system tables.

    Parameters
    ----------
    runtime:
        The :class:`ObsRuntime` to drain (defaults to the process-wide
        :data:`OBS` singleton).
    database:
        Where the system tables live.  Defaults to a fresh dedicated
        ``Database("telemetry")`` -- keeping telemetry out of the
        workload database means sink writes never contend with workload
        triggers or views.
    policy:
        Propagation policy installed on every system table (default: a
        timerless :data:`DEFAULT_POLICY` Threshold -- see module
        docstring before passing a policy with ``max_delay_ms``).
    span_sample:
        Head-sampling rate in (0, 1]: persist roughly this fraction of
        drained spans (default 1.0 = everything).  Sampling is
        deterministic -- every Nth drained span is kept, counted across
        collections -- so runs are reproducible and the sampled set is
        unbiased across span names.  Use it when the sink must ride
        along with a hot workload; persisting every span costs about as
        much as the traced operation itself on micro-operation
        workloads.
    span_retention:
        Keep span rows from at most this many recent collections
        (default ``None`` = unbounded).  Pruning uses per-collection
        ``start_ns`` watermarks, so the system tables stay bounded on
        long-running sinks; matching ``sys_span_events`` rows are pruned
        by the same timestamp cutoff.
    """

    def __init__(
        self,
        runtime: Optional[ObsRuntime] = None,
        database: Optional[Database] = None,
        policy: Optional[PropagationPolicy] = None,
        span_sample: float = 1.0,
        span_retention: Optional[int] = None,
    ) -> None:
        if not 0.0 < span_sample <= 1.0:
            raise ValueError(f"span_sample must be in (0, 1], got {span_sample}")
        if span_retention is not None and span_retention < 1:
            raise ValueError(f"span_retention must be >= 1, got {span_retention}")
        self.runtime = runtime if runtime is not None else OBS
        self.database = database if database is not None else Database("telemetry")
        self._install_schema()
        self.center = NotificationCenter(self.database)
        self.policy = policy if policy is not None else DEFAULT_POLICY
        for table in SYSTEM_TABLES:
            self.center.watch(table)
            self.center.set_policy(table, self.policy)
        #: How many metric collection generations to keep in sys_metrics.
        self.metric_retention = 16
        #: How many collection generations of profile/stack rows to keep.
        self.profile_retention = 16
        #: Full-registry snapshot (keyframe) every N collections; between
        #: keyframes only changed series are persisted.  Must stay below
        #: metric_retention so every series has a retained row.
        self.metric_keyframe_every = 8
        #: (kind, name, labels-json) -> fingerprint at last persist.
        self._metric_fingerprints: dict[tuple[str, str, str], Any] = {}
        self.span_sample = span_sample
        #: Keep exactly 1 span in N (None = keep everything).
        self._sample_modulus = (
            None if span_sample >= 1.0 else max(1, round(1.0 / span_sample))
        )
        self._sample_counter = 0
        self.span_retention = span_retention
        #: Max start_ns per collection that stored spans (newest last);
        #: the popped-off watermark is the retention pruning cutoff.
        self._span_watermarks: deque[int] = deque()
        self._snap = 0
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        # Counters (tests and the dashboard read these).
        self.collections = 0
        self.spans_stored = 0
        self.events_stored = 0
        self.metrics_stored = 0
        self.profiles_stored = 0
        self.stacks_stored = 0
        self.guard_dropped = 0
        self.sampled_out = 0

    # ------------------------------------------------------------------
    def _install_schema(self) -> None:
        db = self.database
        if not db.has_table(SYS_SPANS):
            db.create_table(
                SYS_SPANS,
                [
                    Column("span_id", INTEGER, nullable=False),
                    Column("trace_id", INTEGER, nullable=False),
                    Column("parent_id", INTEGER),
                    Column("name", TEXT, nullable=False),
                    Column("kind", TEXT, nullable=False),
                    Column("start_ns", INTEGER),
                    Column("end_ns", INTEGER),
                    Column("duration_ms", FLOAT),
                    Column("thread", TEXT),
                    Column("tags", TEXT),
                ],
            )
            table = db.table(SYS_SPANS)
            table.create_index("ix_sys_spans_start", ("start_ns",), sorted=True)
            table.create_index("ix_sys_spans_trace", ("trace_id",))
            table.create_index("ix_sys_spans_span", ("span_id",))
        if not db.has_table(SYS_SPAN_EVENTS):
            db.create_table(
                SYS_SPAN_EVENTS,
                [
                    Column("trace_id", INTEGER, nullable=False),
                    Column("span_id", INTEGER, nullable=False),
                    Column("seq", INTEGER, nullable=False),
                    Column("ts_ns", INTEGER),
                    Column("name", TEXT, nullable=False),
                    Column("attrs", TEXT),
                ],
            )
            db.table(SYS_SPAN_EVENTS).create_index(
                "ix_sys_span_events_span", ("span_id",)
            )
        if not db.has_table(SYS_METRICS):
            db.create_table(
                SYS_METRICS,
                [
                    Column("snap", INTEGER, nullable=False),
                    Column("ts", INTEGER, nullable=False),
                    Column("kind", TEXT, nullable=False),
                    Column("name", TEXT, nullable=False),
                    Column("labels", TEXT, nullable=False),
                    Column("stat", TEXT, nullable=False),
                    Column("value", FLOAT),
                ],
            )
            db.table(SYS_METRICS).create_index(
                "ix_sys_metrics_snap", ("snap",), sorted=True
            )
        if not db.has_table(SYS_PROFILES):
            db.create_table(
                SYS_PROFILES,
                [
                    Column("snap", INTEGER, nullable=False),
                    Column("ts", INTEGER, nullable=False),
                    # 'delta' = samples since the previous collection;
                    # 'total' = lifetime keyframe (every
                    # metric_keyframe_every-th collection).
                    Column("kind", TEXT, nullable=False),
                    Column("thread", TEXT, nullable=False),
                    Column("span_name", TEXT),
                    Column("samples", INTEGER, nullable=False),
                    Column("self_ms", FLOAT, nullable=False),
                ],
            )
            db.table(SYS_PROFILES).create_index(
                "ix_sys_profiles_snap", ("snap",), sorted=True
            )
        if not db.has_table(SYS_STACKS):
            db.create_table(
                SYS_STACKS,
                [
                    Column("snap", INTEGER, nullable=False),
                    Column("ts", INTEGER, nullable=False),
                    Column("thread", TEXT, nullable=False),
                    Column("span_name", TEXT),
                    Column("stack", TEXT, nullable=False),
                    Column("samples", INTEGER, nullable=False),
                    Column("self_ms", FLOAT, nullable=False),
                ],
            )
            db.table(SYS_STACKS).create_index(
                "ix_sys_stacks_snap", ("snap",), sorted=True
            )

    # ------------------------------------------------------------------
    # Row builders
    @staticmethod
    def _span_row(span: Span) -> dict[str, Any]:
        return {
            "span_id": span.span_id,
            "trace_id": span.trace_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "kind": "span",
            "start_ns": span.start_ns,
            "end_ns": span.end_ns,
            "duration_ms": span.duration_ms,
            "thread": span.thread_name,
            "tags": _json_text(span.tags),
        }

    @staticmethod
    def _event_rows(span: Span) -> list[dict[str, Any]]:
        return [
            {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "seq": seq,
                "ts_ns": ts_ns,
                "name": name,
                "attrs": _json_text(attrs),
            }
            for seq, (ts_ns, name, attrs) in enumerate(span.events)
        ]

    def _metric_rows(self, snap: int) -> list[dict[str, Any]]:
        """Rows for this collection: changed series only, between keyframes.

        Every :attr:`metric_keyframe_every`-th collection persists the
        full registry (a *keyframe*); in between, a series is persisted
        only when its fingerprint (count+sum for histograms, value for
        counters/gauges) moved since it was last stored.  Readers take
        the newest row per (name, labels, stat) -- an absent series is
        unchanged, not gone -- and because ``metric_retention`` exceeds
        the keyframe interval, every live series always has at least one
        retained row.
        """
        ts = self.database.now()
        keyframe = (snap - 1) % self.metric_keyframe_every == 0
        rows: list[dict[str, Any]] = []

        def row(kind: str, inst: Any, labels: str, stat: str, value: Optional[float]) -> None:
            if value is None:
                return
            rows.append(
                {
                    "snap": snap,
                    "ts": ts,
                    "kind": kind,
                    "name": inst.name,
                    "labels": labels,
                    "stat": stat,
                    "value": float(value),
                }
            )

        for kind, inst in self.runtime.metrics.instruments():
            label_map = dict(inst.labels)
            # The metric side of the recursion guard: the sink's own
            # flushes update sync.* series labeled with the system
            # tables; persisting those would make every collection
            # dirty its own next collection.
            if label_map.get("table") in GUARDED_TABLES:
                continue
            labels = _json_text(label_map)
            if kind in ("counter", "gauge"):
                fingerprint: Any = inst.value
            else:  # histogram
                fingerprint = (inst.count, inst.sum)
            series = (kind, inst.name, labels)
            if not keyframe and self._metric_fingerprints.get(series) == fingerprint:
                continue
            self._metric_fingerprints[series] = fingerprint
            if kind in ("counter", "gauge"):
                row(kind, inst, labels, "value", inst.value)
            else:
                row(kind, inst, labels, "count", float(inst.count))
                row(kind, inst, labels, "sum", inst.sum)
                for stat, value in inst.quantiles().items():
                    row(kind, inst, labels, stat, value)
        return rows

    def _profile_rows(
        self, snap: int
    ) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
        """``(sys_profiles rows, sys_stacks rows)`` for this collection.

        Drains the profiler's since-last-collection aggregates: one
        ``sys_stacks`` row per distinct ``(thread, span, stack)`` delta
        and one ``sys_profiles`` ``kind='delta'`` row per
        ``(thread, span)``.  On keyframe collections (the same cadence
        as metric keyframes) the profiler's *lifetime* per-span totals
        are also persisted as ``kind='total'`` rows, so cumulative
        profiles survive delta rows aging past
        :attr:`profile_retention`.  No profiler, or an idle one, costs
        nothing.
        """
        profiler = getattr(self.runtime, "profiler", None)
        if profiler is None:
            return [], []
        drained = profiler.drain()
        if not drained:
            return [], []
        ts = self.database.now()
        stack_rows = [
            {
                "snap": snap,
                "ts": ts,
                "thread": entry["thread"],
                "span_name": entry["span_name"],
                "stack": entry["stack"],
                "samples": entry["samples"],
                "self_ms": entry["self_ms"],
            }
            for entry in drained
        ]
        agg: dict[tuple[str, Optional[str]], list[float]] = {}
        for entry in drained:
            cell = agg.setdefault((entry["thread"], entry["span_name"]), [0, 0.0])
            cell[0] += entry["samples"]
            cell[1] += entry["self_ms"]
        profile_rows = [
            {
                "snap": snap,
                "ts": ts,
                "kind": "delta",
                "thread": thread,
                "span_name": span_name,
                "samples": int(samples),
                "self_ms": self_ms,
            }
            for (thread, span_name), (samples, self_ms) in agg.items()
        ]
        if (snap - 1) % self.metric_keyframe_every == 0:
            totals: dict[tuple[str, Optional[str]], list[float]] = {}
            for entry in profiler.totals():
                cell = totals.setdefault(
                    (entry["thread"], entry["span_name"]), [0, 0.0]
                )
                cell[0] += entry["samples"]
                cell[1] += entry["self_ms"]
            profile_rows.extend(
                {
                    "snap": snap,
                    "ts": ts,
                    "kind": "total",
                    "thread": thread,
                    "span_name": span_name,
                    "samples": int(samples),
                    "self_ms": self_ms,
                }
                for (thread, span_name), (samples, self_ms) in totals.items()
            )
        return profile_rows, stack_rows

    # ------------------------------------------------------------------
    def collect(self) -> dict[str, int]:
        """Drain spans + snapshot metrics into the system tables.

        Runs entirely under the tracer's recursion guard; returns the
        per-kind row counts for this collection.
        """
        with self.runtime.tracer.suppress():
            drained = self.runtime.tracer.drain()
            if self._sample_modulus is not None:
                # Every Nth drained span, counted across collections; the
                # slice keeps the unsampled majority out of any per-span
                # Python work (a hot sink drains thousands per cycle).
                modulus = self._sample_modulus
                offset = (-self._sample_counter - 1) % modulus
                picked = drained[offset::modulus]
                self._sample_counter += len(drained)
                self.sampled_out += len(drained) - len(picked)
            else:
                picked = drained
            spans = [s for s in picked if s.tags.get("table") not in GUARDED_TABLES]
            dropped = len(picked) - len(spans)
            span_rows = [self._span_row(s) for s in spans]
            event_rows = [row for s in spans for row in self._event_rows(s)]
            with self._lock:
                self._snap += 1
                snap = self._snap
            metric_rows = self._metric_rows(snap)
            profile_rows, stack_rows = self._profile_rows(snap)
            if span_rows:
                self.database.insert_many(SYS_SPANS, span_rows)
                self._span_watermarks.append(max(r["start_ns"] for r in span_rows))
            if event_rows:
                self.database.insert_many(SYS_SPAN_EVENTS, event_rows)
            if metric_rows:
                self.database.insert_many(SYS_METRICS, metric_rows)
            if profile_rows:
                self.database.insert_many(SYS_PROFILES, profile_rows)
            if stack_rows:
                self.database.insert_many(SYS_STACKS, stack_rows)
            cutoff = snap - self.metric_retention
            if cutoff > 0:
                self.database.delete(SYS_METRICS, col("snap") <= cutoff)
            profile_cutoff = snap - self.profile_retention
            if profile_cutoff > 0:
                self.database.delete(SYS_PROFILES, col("snap") <= profile_cutoff)
                self.database.delete(SYS_STACKS, col("snap") <= profile_cutoff)
            self._prune_spans()
            self.collections += 1
            self.spans_stored += len(span_rows)
            self.events_stored += len(event_rows)
            self.metrics_stored += len(metric_rows)
            self.profiles_stored += len(profile_rows)
            self.stacks_stored += len(stack_rows)
            self.guard_dropped += dropped
        return {
            "spans": len(span_rows),
            "events": len(event_rows),
            "metrics": len(metric_rows),
            "profiles": len(profile_rows),
            "stacks": len(stack_rows),
            "dropped": dropped,
        }

    def _prune_spans(self) -> None:
        """Drop span (and event) rows older than ``span_retention`` collections.

        Workflow timeline rows (``kind='workflow'``) use a logical clock
        and are re-ingested wholesale, so retention only applies to
        ``kind='span'`` rows.  Caller holds the tracer suppression.
        """
        if self.span_retention is None:
            return
        pruned_cutoff: Optional[int] = None
        while len(self._span_watermarks) > self.span_retention:
            pruned_cutoff = self._span_watermarks.popleft()
        if pruned_cutoff is None:
            return
        doomed = (col("kind") == "span") & (col("start_ns") <= pruned_cutoff)
        pruned_ids = [
            row["span_id"]
            for row in self.database.query(
                f"SELECT span_id FROM {SYS_SPANS} "
                f"WHERE kind = 'span' AND start_ns <= {int(pruned_cutoff)}"
            )
        ]
        self.database.delete(SYS_SPANS, doomed)
        if pruned_ids:
            # Events are pruned by span membership, not by timestamp: an
            # event fires *after* its span starts, so a start_ns cutoff
            # would strand the boundary collection's events forever.
            self.database.delete(
                SYS_SPAN_EVENTS, col("span_id").is_in(pruned_ids)
            )

    def flush(self) -> int:
        """Flush buffered telemetry notifications (one dashboard cycle).

        Under the default timerless Threshold policy this is what ends a
        flush cycle: the net per-table deltas are recorded as seq-no
        batches and fanned out (NOTIFYB) to attached dashboards.
        Returns total net operations shipped.
        """
        with self.runtime.tracer.suppress():
            return self.center.flush_all()

    def collect_and_flush(self) -> dict[str, int]:
        """One full cycle: drain + snapshot, then push to dashboards."""
        stats = self.collect()
        stats["net_ops"] = self.flush()
        return stats

    @property
    def flush_cycles(self) -> int:
        """Completed notification flushes (the dashboard's heartbeat)."""
        return self.center.flushes

    def counters(self) -> dict[str, int]:
        """Lifetime sink counters (for tests, examples, and debugging)."""
        return {
            "collections": self.collections,
            "spans_stored": self.spans_stored,
            "events_stored": self.events_stored,
            "metrics_stored": self.metrics_stored,
            "profiles_stored": self.profiles_stored,
            "stacks_stored": self.stacks_stored,
            "guard_dropped": self.guard_dropped,
            "sampled_out": self.sampled_out,
        }

    # ------------------------------------------------------------------
    # Workflow timelines share the span schema (kind='workflow').
    #
    # Ids must not collide with tracer span ids (positive, process-local)
    # or with each other (process and activity instance ids come from
    # separate tables), so workflow rows live in the negative id space:
    # processes at -(2*pid + 1), activities at -(2*aid + 2).
    @staticmethod
    def _process_span_id(process_instance_id: int) -> int:
        return -(2 * process_instance_id + 1)

    @staticmethod
    def _activity_span_id(activity_instance_id: int) -> int:
        return -(2 * activity_instance_id + 2)

    def ingest_process_monitor(self, monitor: Any) -> int:
        """Mirror ProcessMonitor timelines into ``sys_spans``.

        One row per process instance (the trace root) and one per
        activity instance (parented to its process).  ``start_ns`` /
        ``end_ns`` hold *logical-clock* values and ``duration_ms`` is
        NULL -- the ``kind='workflow'`` tag tells consumers which clock
        they are looking at.  Re-ingesting is an upsert: a still-running
        activity's row is replaced when its end materializes.  Returns
        the number of rows written.
        """
        with self.runtime.tracer.suppress():
            rows: list[dict[str, Any]] = []
            for trace in monitor.history():
                root_id = self._process_span_id(trace.process_instance_id)
                rows.append(
                    {
                        "span_id": root_id,
                        "trace_id": root_id,
                        "parent_id": None,
                        "name": f"workflow.process:{trace.process_name}",
                        "kind": "workflow",
                        "start_ns": trace.start,
                        "end_ns": trace.end,
                        "duration_ms": None,
                        "thread": "",
                        "tags": _json_text(
                            {
                                "process_instance": trace.process_instance_id,
                                "process": trace.process_name,
                                "status": trace.status,
                            }
                        ),
                    }
                )
                for activity in trace.activities:
                    rows.append(
                        {
                            "span_id": self._activity_span_id(
                                activity.activity_instance_id
                            ),
                            "trace_id": root_id,
                            "parent_id": root_id,
                            "name": f"workflow.activity:{activity.activity_name}",
                            "kind": "workflow",
                            "start_ns": activity.start,
                            "end_ns": activity.end,
                            "duration_ms": None,
                            "thread": "",
                            "tags": _json_text(
                                {
                                    "activity_instance": activity.activity_instance_id,
                                    "process_instance": trace.process_instance_id,
                                    "activity": activity.activity_name,
                                    "status": activity.status,
                                    "user": activity.user,
                                }
                            ),
                        }
                    )
            if not rows:
                return 0
            with self.database.lock:
                self.database.delete(
                    SYS_SPANS,
                    col("span_id").is_in([row["span_id"] for row in rows]),
                )
                self.database.insert_many(SYS_SPANS, rows)
            self.spans_stored += len(rows)
            return len(rows)

    # ------------------------------------------------------------------
    # Background collection
    def start(self, interval: float = 0.25) -> None:
        """Collect + flush every ``interval`` seconds on a daemon thread."""
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, args=(interval,), daemon=True, name="telemetry-sink"
            )
            self._thread.start()

    def _run(self, interval: float) -> None:
        while not self._stop.wait(interval):
            self.collect_and_flush()

    def stop(self) -> None:
        """Stop the background thread after one final cycle."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
        with self._lock:
            self._thread = None
        self.collect_and_flush()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def close(self) -> None:
        """Stop collection and shut the notification center down."""
        self.stop()
        with self.runtime.tracer.suppress():
            self.center.close()
