"""repro.obs: zero-dependency tracing + metrics for the whole pipeline.

"It also may be necessary to log and allow inspecting the advancement of
each execution of the application" (Section I).  This package is that
inspection surface, generalized: hierarchical spans with thread-local
context propagation (:mod:`repro.obs.trace`), named counters / gauges /
histograms with a Prometheus-style dump (:mod:`repro.obs.metrics`), and
an end-to-end propagation report reproducing Figure 8's step breakdown
on a live run (:mod:`repro.obs.propagation`).

Everything is **off by default** and costs one attribute check per
instrumented hot path while disabled.  Quickstart::

    import repro.obs as obs

    obs.enable()
    db.insert_many("nodes", rows)       # traced end to end
    client.refresh("nodes")
    print(obs.propagation_report().format())
    print(obs.metrics().prometheus_text())
    obs.disable()
"""

from __future__ import annotations

from .metrics import (
    DEFAULT_BUCKETS,
    SUMMARY_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiler import DEFAULT_HZ, SamplingProfiler, collapse_frames
from .propagation import STAGES, PropagationReport, propagation_report
from .runtime import OBS, ObsRuntime, disable, enable, enabled, reset
from .trace import NullSpan, Span, SpanContext, Tracer

#: Names served lazily from :mod:`repro.obs.store` and
#: :mod:`repro.obs.slowlog`.  Both pull in the db + sync layers, which
#: themselves import ``repro.obs.runtime`` -- importing them eagerly
#: here would make ``repro.db`` -> ``repro.obs`` a hard cycle.  PEP 562
#: module __getattr__ keeps ``repro.obs.X`` working for every export
#: without the eager edge.
_STORE_EXPORTS = (
    "SYS_METRICS",
    "SYS_PROFILES",
    "SYS_SPANS",
    "SYS_SPAN_EVENTS",
    "SYS_STACKS",
    "SYSTEM_TABLES",
    "TelemetrySink",
)

_SLOWLOG_EXPORTS = (
    "SYS_SLOWLOG",
    "SlowLog",
)


def __getattr__(name: str):
    if name in _STORE_EXPORTS:
        from . import store

        return getattr(store, name)
    if name in _SLOWLOG_EXPORTS:
        from . import slowlog

        return getattr(slowlog, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_HZ",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullSpan",
    "OBS",
    "ObsRuntime",
    "PropagationReport",
    "STAGES",
    "SUMMARY_QUANTILES",
    "SYS_METRICS",
    "SYS_PROFILES",
    "SYS_SLOWLOG",
    "SYS_SPANS",
    "SYS_SPAN_EVENTS",
    "SYS_STACKS",
    "SYSTEM_TABLES",
    "SamplingProfiler",
    "SlowLog",
    "Span",
    "SpanContext",
    "TelemetrySink",
    "Tracer",
    "collapse_frames",
    "disable",
    "enable",
    "enabled",
    "metrics",
    "propagation_report",
    "reset",
    "tracer",
]


def tracer() -> Tracer:
    """The process-wide tracer."""
    return OBS.tracer


def metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return OBS.metrics
