"""Hierarchical spans with thread-local context propagation.

The paper's evaluation is a story about *where time goes*: Figure 8
decomposes every insert into DB write -> trigger -> NOTIFY -> mirror
refresh -> delta handler -> layout.  A :class:`Tracer` makes that
decomposition observable on a *live* system instead of only inside
hand-written benchmarks: instrumented code opens :class:`Span`\\ s
(monotonic-clock start/end, parent id, free-form tags), nesting is
derived from a thread-local context stack, and finished spans land in a
bounded in-memory ring buffer that exports to JSON.

Two extras support the reactive pipeline's shape:

- :meth:`Tracer.activate` installs an explicit parent context, so work
  performed on *another thread* (a refresh driver, a trigger cascade
  replayed later) can join the originating trace;
- a bounded **link registry** (:meth:`Tracer.link` /
  :meth:`Tracer.lookup_link`) carries span contexts across the
  notification protocol, where the only shared key between producer and
  consumer is ``(table, seq_no)`` -- not a thread, not a call stack.

Everything is zero-dependency and safe under the sync layer's threads.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import OrderedDict, deque
from typing import Any, Iterator, Optional

__all__ = ["Span", "SpanContext", "Tracer"]


class SpanContext:
    """The portable identity of a span: enough to parent remote work."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanContext(trace={self.trace_id}, span={self.span_id})"


class Span:
    """One timed operation.  Use as a context manager via Tracer.span()."""

    __slots__ = (
        "tracer",
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_ns",
        "end_ns",
        "tags",
        "thread_name",
        "_explicit_parent",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        tags: Optional[dict[str, Any]] = None,
        parent: Optional[SpanContext] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.tags: dict[str, Any] = dict(tags) if tags else {}
        self.trace_id = 0
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.start_ns = 0
        self.end_ns: Optional[int] = None
        self.thread_name = ""
        self._explicit_parent = parent

    # ------------------------------------------------------------------
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def set_tag(self, key: str, value: Any) -> "Span":
        self.tags[key] = value
        return self

    def set_parent(self, context: Optional[SpanContext]) -> "Span":
        """Re-parent onto a remote context (e.g. a notification link).

        Call before starting child spans: children pick up ``trace_id``
        from this span at *their* start.
        """
        if context is not None:
            self.parent_id = context.span_id
            self.trace_id = context.trace_id
        return self

    @property
    def duration_ms(self) -> float:
        end = self.end_ns if self.end_ns is not None else time.perf_counter_ns()
        return (end - self.start_ns) / 1e6

    @property
    def finished(self) -> bool:
        return self.end_ns is not None

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        parent = self._explicit_parent
        if parent is None and stack:
            top = stack[-1]
            parent = SpanContext(top.trace_id, top.span_id)
        self.span_id = next(self.tracer._ids)
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            self.trace_id = next(self.tracer._ids)
        self.thread_name = threading.current_thread().name
        stack.append(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.end_ns = time.perf_counter_ns()
        stack = self.tracer._stack()
        # Pop our own frame; tolerate (and repair) unbalanced exits.
        while stack:
            top = stack.pop()
            if top is self:
                break
        self.tracer._record(self)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ms": self.duration_ms,
            "thread": self.thread_name,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name!r} trace={self.trace_id} id={self.span_id} "
            f"parent={self.parent_id} {self.duration_ms:.3f}ms>"
        )


class _Activation:
    """Context manager installing an explicit parent context."""

    __slots__ = ("tracer", "context")

    def __init__(self, tracer: "Tracer", context: Optional[SpanContext]) -> None:
        self.tracer = tracer
        self.context = context

    def __enter__(self) -> Optional[SpanContext]:
        if self.context is not None:
            self.tracer._stack().append(self.context)
        return self.context

    def __exit__(self, *exc: Any) -> None:
        if self.context is None:
            return
        stack = self.tracer._stack()
        while stack:
            top = stack.pop()
            if top is self.context:
                break


class Tracer:
    """Produces spans; keeps the last ``capacity`` finished ones.

    Thread model: each thread has its own context stack (``threading.local``),
    the finished-span ring buffer and the link registry are shared and
    lock-protected where iteration could race appends.
    """

    def __init__(self, capacity: int = 8192, link_capacity: int = 2048) -> None:
        self.capacity = capacity
        self._buffer: deque[Span] = deque(maxlen=capacity)
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._links: OrderedDict[Any, tuple[SpanContext, int]] = OrderedDict()
        self._link_capacity = link_capacity

    # ------------------------------------------------------------------
    def _stack(self) -> list[Any]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._buffer.append(span)

    # ------------------------------------------------------------------
    # Span creation / context propagation
    def span(
        self,
        name: str,
        tags: Optional[dict[str, Any]] = None,
        parent: Optional[SpanContext] = None,
    ) -> Span:
        """Create a span (enter it with ``with``).

        Without an explicit ``parent`` the span nests under the current
        thread's innermost active span (or activation), if any.
        """
        return Span(self, name, tags=tags, parent=parent)

    def current_context(self) -> Optional[SpanContext]:
        """Context of the innermost active span on this thread."""
        stack = self._stack()
        if not stack:
            return None
        top = stack[-1]
        return SpanContext(top.trace_id, top.span_id)

    def activate(self, context: Optional[SpanContext]) -> _Activation:
        """Install ``context`` as the parent for spans started inside.

        ``None`` is accepted and is a no-op, so callers can write
        ``with tracer.activate(maybe_ctx):`` unconditionally.
        """
        return _Activation(self, context)

    # ------------------------------------------------------------------
    # Cross-boundary links (the notification protocol has no call stack)
    def link(self, key: Any, context: SpanContext) -> None:
        """Register ``context`` under ``key`` (e.g. ``(table, seq_no)``)."""
        with self._lock:
            self._links[key] = (context, time.perf_counter_ns())
            while len(self._links) > self._link_capacity:
                self._links.popitem(last=False)

    def lookup_link(self, key: Any) -> Optional[tuple[SpanContext, int]]:
        """Return ``(context, registered_at_ns)`` for ``key`` or None."""
        with self._lock:
            return self._links.get(key)

    # ------------------------------------------------------------------
    # Inspection / export
    def finished_spans(self) -> list[Span]:
        """Snapshot of the ring buffer, oldest first."""
        with self._lock:
            return list(self._buffer)

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.finished_spans() if s.name == name]

    def traces(self) -> dict[int, list[Span]]:
        """Finished spans grouped by trace id."""
        out: dict[int, list[Span]] = {}
        for span in self.finished_spans():
            out.setdefault(span.trace_id, []).append(span)
        return out

    def export_json(self, indent: Optional[int] = None) -> str:
        """The ring buffer as a JSON array of span dicts."""
        return json.dumps(
            [span.to_dict() for span in self.finished_spans()], indent=indent
        )

    def __iter__(self) -> Iterator[Span]:
        return iter(self.finished_spans())

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    def reset(self) -> None:
        """Drop finished spans and links (active spans are unaffected)."""
        with self._lock:
            self._buffer.clear()
            self._links.clear()
