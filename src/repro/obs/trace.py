"""Hierarchical spans with thread-local context propagation.

The paper's evaluation is a story about *where time goes*: Figure 8
decomposes every insert into DB write -> trigger -> NOTIFY -> mirror
refresh -> delta handler -> layout.  A :class:`Tracer` makes that
decomposition observable on a *live* system instead of only inside
hand-written benchmarks: instrumented code opens :class:`Span`\\ s
(monotonic-clock start/end, parent id, free-form tags), nesting is
derived from a thread-local context stack, and finished spans land in a
bounded in-memory ring buffer that exports to JSON.

Two extras support the reactive pipeline's shape:

- :meth:`Tracer.activate` installs an explicit parent context, so work
  performed on *another thread* (a refresh driver, a trigger cascade
  replayed later) can join the originating trace;
- a bounded **link registry** (:meth:`Tracer.link` /
  :meth:`Tracer.lookup_link`) carries span contexts across the
  notification protocol, where the only shared key between producer and
  consumer is ``(table, seq_no)`` -- not a thread, not a call stack.

Everything is zero-dependency and safe under the sync layer's threads.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import OrderedDict, deque
from typing import Any, Iterator, Optional

__all__ = ["NullSpan", "Span", "SpanContext", "Tracer"]


class SpanContext:
    """The portable identity of a span: enough to parent remote work."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanContext(trace={self.trace_id}, span={self.span_id})"


class Span:
    """One timed operation.  Use as a context manager via Tracer.span()."""

    __slots__ = (
        "tracer",
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_ns",
        "end_ns",
        "tags",
        "events",
        "thread_name",
        "_explicit_parent",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        tags: Optional[dict[str, Any]] = None,
        parent: Optional[SpanContext] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.tags: dict[str, Any] = dict(tags) if tags else {}
        self.events: list[tuple[int, str, dict[str, Any]]] = []
        self.trace_id = 0
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.start_ns = 0
        self.end_ns: Optional[int] = None
        self.thread_name = ""
        self._explicit_parent = parent

    # ------------------------------------------------------------------
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def set_tag(self, key: str, value: Any) -> "Span":
        self.tags[key] = value
        return self

    def add_event(self, name: str, **attrs: Any) -> "Span":
        """Attach a timestamped point annotation to this span.

        Events carry things a duration cannot: per-operator row counters
        of an EXPLAIN ANALYZE, the moment a retry fired, a flush being
        forced.  They export alongside the span and persist into the
        ``sys_span_events`` telemetry table.
        """
        self.events.append((time.perf_counter_ns(), name, dict(attrs)))
        return self

    def set_parent(self, context: Optional[SpanContext]) -> "Span":
        """Re-parent onto a remote context (e.g. a notification link).

        Call before starting child spans: children pick up ``trace_id``
        from this span at *their* start.
        """
        if context is not None:
            self.parent_id = context.span_id
            self.trace_id = context.trace_id
        return self

    @property
    def duration_ms(self) -> float:
        end = self.end_ns if self.end_ns is not None else time.perf_counter_ns()
        return (end - self.start_ns) / 1e6

    @property
    def finished(self) -> bool:
        return self.end_ns is not None

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        parent = self._explicit_parent
        if parent is None and stack:
            top = stack[-1]
            parent = SpanContext(top.trace_id, top.span_id)
        self.span_id = next(self.tracer._ids)
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            self.trace_id = next(self.tracer._ids)
        self.thread_name = threading.current_thread().name
        stack.append(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.end_ns = time.perf_counter_ns()
        stack = self.tracer._stack()
        # Pop our own frame; tolerate (and repair) unbalanced exits.
        while stack:
            top = stack.pop()
            if top is self:
                break
        self.tracer._record(self)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ms": self.duration_ms,
            "thread": self.thread_name,
            "tags": dict(self.tags),
            "events": [
                {"ts_ns": ts, "name": name, "attrs": dict(attrs)}
                for ts, name, attrs in list(self.events)
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name!r} trace={self.trace_id} id={self.span_id} "
            f"parent={self.parent_id} {self.duration_ms:.3f}ms>"
        )


class NullSpan:
    """A do-nothing stand-in returned while a thread is suppressed.

    The telemetry sink persists the tracer's own output back into a
    database whose write path is itself instrumented; without a guard the
    observer would observe itself forever (every flush creates spans that
    the next flush persists, which creates spans...).  Inside
    :meth:`Tracer.suppress`, ``span()`` hands out one of these: it honors
    the whole :class:`Span` surface but records nothing and never touches
    the ring buffer or the context stack.
    """

    __slots__ = ()

    name = "<suppressed>"
    trace_id = 0
    span_id = 0
    parent_id: Optional[int] = None
    start_ns = 0
    end_ns: Optional[int] = 0
    thread_name = ""

    @property
    def tags(self) -> dict[str, Any]:
        return {}

    @property
    def events(self) -> list[tuple[int, str, dict[str, Any]]]:
        return []

    def context(self) -> SpanContext:
        return SpanContext(0, 0)

    def set_tag(self, key: str, value: Any) -> "NullSpan":
        return self

    def add_event(self, name: str, **attrs: Any) -> "NullSpan":
        return self

    def set_parent(self, context: Optional[SpanContext]) -> "NullSpan":
        return self

    @property
    def duration_ms(self) -> float:
        return 0.0

    @property
    def finished(self) -> bool:
        return True

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def to_dict(self) -> dict[str, Any]:  # pragma: no cover - debugging aid
        return {"name": self.name, "suppressed": True}


#: Shared instance -- NullSpan carries no state, one is enough.
_NULL_SPAN = NullSpan()


class _Suppression:
    """Context manager marking the current thread as do-not-trace."""

    __slots__ = ("tracer",)

    def __init__(self, tracer: "Tracer") -> None:
        self.tracer = tracer

    def __enter__(self) -> None:
        local = self.tracer._local
        depth = getattr(local, "suppress", 0) + 1
        local.suppress = depth
        if depth == 1:
            # Mirror into the shared ident set so *other* threads (the
            # sampling profiler) can honor this thread's do-not-observe
            # marker without reaching into its thread-locals.
            with self.tracer._lock:
                self.tracer._suppressed_idents.add(threading.get_ident())

    def __exit__(self, *exc: Any) -> None:
        local = self.tracer._local
        depth = max(getattr(local, "suppress", 1) - 1, 0)
        local.suppress = depth
        if depth == 0:
            with self.tracer._lock:
                self.tracer._suppressed_idents.discard(threading.get_ident())


class _Activation:
    """Context manager installing an explicit parent context."""

    __slots__ = ("tracer", "context")

    def __init__(self, tracer: "Tracer", context: Optional[SpanContext]) -> None:
        self.tracer = tracer
        self.context = context

    def __enter__(self) -> Optional[SpanContext]:
        if self.context is not None:
            self.tracer._stack().append(self.context)
        return self.context

    def __exit__(self, *exc: Any) -> None:
        if self.context is None:
            return
        stack = self.tracer._stack()
        while stack:
            top = stack.pop()
            if top is self.context:
                break


class Tracer:
    """Produces spans; keeps the last ``capacity`` finished ones.

    Thread model: each thread has its own context stack (``threading.local``),
    the finished-span ring buffer and the link registry are shared and
    lock-protected where iteration could race appends.
    """

    def __init__(self, capacity: int = 8192, link_capacity: int = 2048) -> None:
        self.capacity = capacity
        self._buffer: deque[Span] = deque(maxlen=capacity)
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._links: OrderedDict[Any, tuple[SpanContext, int]] = OrderedDict()
        self._link_capacity = link_capacity
        #: thread ident -> that thread's live context stack.  The stacks
        #: are only ever *mutated* by their owning thread; the registry
        #: lets the sampling profiler read "what span is thread T inside
        #: right now" from its own sampler thread.
        self._thread_stacks: dict[int, list[Any]] = {}
        #: idents currently inside :meth:`suppress` (see _Suppression).
        self._suppressed_idents: set[int] = set()
        #: Called with each finished span, after it enters the buffer.
        self._finish_hooks: list[Any] = []

    # ------------------------------------------------------------------
    def _stack(self) -> list[Any]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
            with self._lock:
                self._thread_stacks[threading.get_ident()] = stack
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._buffer.append(span)
        for hook in self._finish_hooks:
            try:
                hook(span)
            except Exception:  # pragma: no cover - hooks must not break tracing
                pass

    # ------------------------------------------------------------------
    # Cross-thread introspection (the sampling profiler's read path)
    def add_finish_hook(self, hook: Any) -> None:
        """Call ``hook(span)`` whenever a span finishes.

        Hooks run on the finishing thread, outside the buffer lock, and
        exceptions are swallowed: observability must never take the
        workload down.  The profiler uses this to stamp ``self_time_ms``
        onto spans it sampled; the slow-path attributor uses it to catch
        over-budget spans the moment they close.
        """
        if hook not in self._finish_hooks:
            self._finish_hooks.append(hook)

    def remove_finish_hook(self, hook: Any) -> None:
        # Equality, not identity: ``obj.method`` builds a fresh bound
        # method on every access, so the unhook call never passes the
        # same object that add_finish_hook stored.
        self._finish_hooks = [h for h in self._finish_hooks if h != hook]

    def suppressed_idents(self) -> set[int]:
        """Idents of threads currently inside :meth:`suppress`."""
        with self._lock:
            return set(self._suppressed_idents)

    def active_spans(self) -> dict[int, Span]:
        """Innermost *open* span per thread ident, read cross-thread.

        The registry maps each thread to the same list object that
        thread pushes/pops; reading it from another thread is safe under
        the GIL (list ops are atomic) and at worst one frame stale --
        exactly the tolerance a statistical profiler has anyway.
        """
        with self._lock:
            stacks = list(self._thread_stacks.items())
        out: dict[int, Span] = {}
        for ident, stack in stacks:
            for frame in reversed(tuple(stack)):
                if isinstance(frame, Span) and frame.end_ns is None:
                    out[ident] = frame
                    break
        return out

    def prune_thread_registry(self, live_idents: Any) -> None:
        """Forget context stacks of threads no longer in ``live_idents``.

        Called by the profiler with ``sys._current_frames().keys()`` so
        the registry does not grow one (empty) entry per short-lived
        thread forever.
        """
        keep = set(live_idents)
        with self._lock:
            for ident in [i for i in self._thread_stacks if i not in keep]:
                del self._thread_stacks[ident]
                self._suppressed_idents.discard(ident)

    # ------------------------------------------------------------------
    # Suppression (the telemetry sink's recursion guard)
    def suppress(self) -> _Suppression:
        """Mark this thread do-not-trace for the duration of a ``with``.

        Every ``span()`` call made on the thread while inside returns a
        shared :class:`NullSpan` that records nothing.  Reentrant.  This
        is the recursion guard that keeps telemetry writes from being
        themselves traced (see :mod:`repro.obs.store`).
        """
        return _Suppression(self)

    @property
    def suppressed(self) -> bool:
        """True while the current thread is inside :meth:`suppress`."""
        return getattr(self._local, "suppress", 0) > 0

    # ------------------------------------------------------------------
    # Span creation / context propagation
    def span(
        self,
        name: str,
        tags: Optional[dict[str, Any]] = None,
        parent: Optional[SpanContext] = None,
    ) -> "Span | NullSpan":
        """Create a span (enter it with ``with``).

        Without an explicit ``parent`` the span nests under the current
        thread's innermost active span (or activation), if any.  On a
        suppressed thread (see :meth:`suppress`) a no-op span is returned
        instead.
        """
        if getattr(self._local, "suppress", 0) > 0:
            return _NULL_SPAN
        return Span(self, name, tags=tags, parent=parent)

    def current_context(self) -> Optional[SpanContext]:
        """Context of the innermost active span on this thread."""
        stack = self._stack()
        if not stack:
            return None
        top = stack[-1]
        return SpanContext(top.trace_id, top.span_id)

    def current_span(self) -> Optional[Span]:
        """The innermost *open* span on this thread, if any.

        Activations (bare contexts) don't count: callers use this to
        attach tags or events to the statement span they are running
        under (e.g. EXPLAIN ANALYZE recording operator counters).
        """
        stack = self._stack()
        for frame in reversed(stack):
            if isinstance(frame, Span):
                return frame
        return None

    def activate(self, context: Optional[SpanContext]) -> _Activation:
        """Install ``context`` as the parent for spans started inside.

        ``None`` is accepted and is a no-op, so callers can write
        ``with tracer.activate(maybe_ctx):`` unconditionally.
        """
        return _Activation(self, context)

    # ------------------------------------------------------------------
    # Cross-boundary links (the notification protocol has no call stack)
    def link(self, key: Any, context: SpanContext) -> None:
        """Register ``context`` under ``key`` (e.g. ``(table, seq_no)``)."""
        with self._lock:
            self._links[key] = (context, time.perf_counter_ns())
            while len(self._links) > self._link_capacity:
                self._links.popitem(last=False)

    def lookup_link(self, key: Any) -> Optional[tuple[SpanContext, int]]:
        """Return ``(context, registered_at_ns)`` for ``key`` or None."""
        with self._lock:
            return self._links.get(key)

    # ------------------------------------------------------------------
    # Inspection / export
    def finished_spans(self) -> list[Span]:
        """Snapshot of the ring buffer, oldest first."""
        with self._lock:
            return list(self._buffer)

    def drain(self) -> list[Span]:
        """Atomically remove and return every buffered span, oldest first.

        The snapshot-and-clear happens under the buffer lock, so a
        concurrently finishing span either lands wholly in this drain or
        wholly in the next one -- never split, never lost, never seen
        half-written.  Spans only enter the buffer *after* their
        ``end_ns`` is set (``Span.__exit__`` records last), and the
        defensive filter below keeps that invariant even if a future
        caller records by hand.  This is the telemetry sink's read path.
        """
        with self._lock:
            spans = [s for s in self._buffer if s.end_ns is not None]
            self._buffer.clear()
        return spans

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.finished_spans() if s.name == name]

    def traces(self) -> dict[int, list[Span]]:
        """Finished spans grouped by trace id."""
        out: dict[int, list[Span]] = {}
        for span in self.finished_spans():
            out.setdefault(span.trace_id, []).append(span)
        return out

    def export_json(self, indent: Optional[int] = None) -> str:
        """The ring buffer as a JSON array of span dicts.

        The span list is serialized from one atomic snapshot taken under
        the buffer lock, so concurrent span-finishes cannot shift the
        buffer mid-export.
        """
        with self._lock:
            dicts = [span.to_dict() for span in self._buffer]
        return json.dumps(dicts, indent=indent)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.finished_spans())

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    def reset(self) -> None:
        """Drop finished spans and links (active spans are unaffected)."""
        with self._lock:
            self._buffer.clear()
            self._links.clear()
