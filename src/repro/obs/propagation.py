"""End-to-end propagation traces: Figure 8 on a live run.

The paper's Figure 8 decomposes one insert into pipeline steps measured
by a dedicated benchmark.  With the tracer threaded through every layer,
the same breakdown falls out of a *live* system: a single trace follows
one table update from :meth:`Database.insert_many` through the trigger
cascade, the notification protocol, the mirror refresh on the client,
the IVM delta handlers, and the layout/display work -- and
:func:`propagation_report` reassembles it into the six-stage table.

Stage mapping (span name -> Figure 8 step):

========================  =======================================
``db.write``              writing the batch into R_D (the stimulus)
``db.trigger``            statement-level trigger dispatch
``sync.notify``           building Notification rows + fan-out
                          ("parsing the message" steps 1/3)
``sync.mirror_refresh``   pulling changed rows into R_M (step 8)
``ivm.delta_apply``       delta handlers on dependent views
``vis.layout``/``vis.display.apply``  layout + display insertion
                          ("inserting new nodes into the display")
========================  =======================================

``db.write`` and ``db.trigger`` report *self time* (their children are
separate stages nested inside them); the later stages report full span
durations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .trace import Span, Tracer

__all__ = ["PropagationReport", "propagation_report", "STAGES"]

#: Pipeline order of the six stages.
STAGES = (
    "db_write",
    "trigger",
    "notify",
    "mirror_refresh",
    "delta_handler",
    "layout",
)

#: Span names contributing to each stage.
STAGE_SPANS: dict[str, tuple[str, ...]] = {
    "db_write": ("db.write",),
    "trigger": ("db.trigger",),
    "notify": ("sync.notify",),
    "mirror_refresh": ("sync.mirror_refresh",),
    "delta_handler": ("ivm.delta_apply",),
    "layout": ("vis.layout", "vis.display.apply"),
}

#: Stages whose children are *other* stages: report exclusive time.
_SELF_TIME_STAGES = frozenset({"db_write", "trigger"})


@dataclass
class PropagationReport:
    """One table update's journey through the pipeline."""

    trace_id: int
    stages: dict[str, float]  # stage -> milliseconds
    spans: list[Span] = field(default_factory=list)
    table: Optional[str] = None

    @property
    def total_ms(self) -> float:
        return sum(self.stages.values())

    def missing_stages(self) -> list[str]:
        """Pipeline stages with no recorded span in this trace."""
        return [s for s in STAGES if s not in self.stages]

    def as_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "table": self.table,
            "total_ms": self.total_ms,
            "stages": dict(self.stages),
            "missing": self.missing_stages(),
            "spans": [span.to_dict() for span in self.spans],
        }

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Stage table plus the span tree, for logs and REPLs."""
        lines = [
            f"propagation trace {self.trace_id}"
            + (f" on table {self.table!r}" if self.table else "")
        ]
        for stage in STAGES:
            value = self.stages.get(stage)
            cell = f"{value:10.3f} ms" if value is not None else "   (absent)"
            lines.append(f"  {stage:<16}{cell}")
        lines.append(f"  {'total':<16}{self.total_ms:10.3f} ms")
        lines.append("span tree:")
        lines.extend(self._tree_lines())
        return "\n".join(lines)

    def _tree_lines(self) -> list[str]:
        by_parent: dict[Optional[int], list[Span]] = {}
        ids = {span.span_id for span in self.spans}
        for span in self.spans:
            parent = span.parent_id if span.parent_id in ids else None
            by_parent.setdefault(parent, []).append(span)
        for children in by_parent.values():
            children.sort(key=lambda s: s.start_ns)
        lines: list[str] = []

        def walk(parent: Optional[int], depth: int) -> None:
            for span in by_parent.get(parent, ()):  # pragma: no branch
                tag_bits = ", ".join(
                    f"{k}={v}" for k, v in sorted(span.tags.items())
                )
                lines.append(
                    "  " * (depth + 1)
                    + f"{span.name} [{span.duration_ms:.3f} ms]"
                    + (f" ({tag_bits})" if tag_bits else "")
                )
                walk(span.span_id, depth + 1)

        walk(None, 0)
        return lines


# ---------------------------------------------------------------------------


def _self_time_ms(span: Span, trace_spans: list[Span]) -> float:
    child_ms = sum(
        other.duration_ms
        for other in trace_spans
        if other.parent_id == span.span_id
    )
    return max(span.duration_ms - child_ms, 0.0)


def _has_ancestor_named(
    span: Span, names: frozenset, by_id: dict[int, Span]
) -> bool:
    parent_id = span.parent_id
    while parent_id is not None:
        parent = by_id.get(parent_id)
        if parent is None:
            return False
        if parent.name in names:
            return True
        parent_id = parent.parent_id
    return False


#: A ``db.write`` under any of these belongs to that enclosing stage, not
#: to the stimulus: trigger-cascade writes and notification bookkeeping.
_NON_STIMULUS_ANCESTORS = frozenset({"db.write", "db.trigger", "sync.notify"})


def _stimulus_writes(spans: list[Span]) -> list[Span]:
    """The write(s) that started the propagation.

    Programmatic mutations root the trace at ``db.write``; SQL statements
    root it at ``db.execute`` with the write nested one level down.  Both
    count -- what doesn't is any write spawned *by* the pipeline itself.
    """
    by_id = {s.span_id: s for s in spans}
    return [
        s
        for s in spans
        if s.name == "db.write"
        and not _has_ancestor_named(s, _NON_STIMULUS_ANCESTORS, by_id)
    ]


def propagation_report(
    tracer: Optional[Tracer] = None, trace_id: Optional[int] = None
) -> PropagationReport:
    """Assemble the latest (or a specific) propagation trace.

    Picks the most recent trace rooted in a ``db.write`` span, preferring
    traces that made it all the way to a mirror refresh.  Raises
    :class:`LookupError` when the ring buffer holds no such trace --
    enable observability (``repro.obs.enable()``) before the write.
    """
    if tracer is None:
        from .runtime import OBS

        tracer = OBS.tracer
    # Telemetry self-hosting guard: a dashboard client refreshing its
    # sys_* mirrors produces ordinary-looking db.write traces on the
    # telemetry database.  They must never displace the *workload* trace
    # the caller is asking about.
    from .store import SYSTEM_TABLES as _telemetry_tables

    traces = tracer.traces()
    if trace_id is None:
        candidates: list[tuple[bool, int, int]] = []
        for tid, spans in traces.items():
            roots = [s for s in spans if s.name == "db.write"]
            if not roots:
                continue
            if all(s.tags.get("table") in _telemetry_tables for s in roots):
                continue
            reached_refresh = any(s.name == "sync.mirror_refresh" for s in spans)
            candidates.append(
                (reached_refresh, max(r.start_ns for r in roots), tid)
            )
        if not candidates:
            raise LookupError(
                "no propagation trace captured -- call repro.obs.enable() "
                "before performing the table update"
            )
        candidates.sort()
        trace_id = candidates[-1][2]
    spans = traces.get(trace_id)
    if not spans:
        raise LookupError(f"no spans recorded for trace {trace_id}")
    spans = sorted(spans, key=lambda s: s.start_ns)

    stages: dict[str, float] = {}
    for stage in STAGES:
        names = STAGE_SPANS[stage]
        matched = [s for s in spans if s.name in names]
        if stage in _SELF_TIME_STAGES:
            # Nested same-name spans (e.g. the notification-table writes
            # inside sync.notify) belong to *their* stage's parent span;
            # only top-of-stage spans count here.
            matched = [
                s
                for s in matched
                if not any(
                    other.span_id == s.parent_id and other.name in names
                    for other in spans
                )
            ]
            if stage == "db_write":
                # The stimulus write(s) only: trigger-cascade and
                # notification bookkeeping writes are part of the stage
                # they nest in.
                matched = _stimulus_writes(spans)
        if matched:
            if stage in _SELF_TIME_STAGES:
                stages[stage] = sum(_self_time_ms(s, spans) for s in matched)
            else:
                stages[stage] = sum(s.duration_ms for s in matched)

    table = None
    for span in _stimulus_writes(spans):
        table = span.tags.get("table")
        break
    return PropagationReport(
        trace_id=trace_id, stages=stages, spans=spans, table=table
    )
