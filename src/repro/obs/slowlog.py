"""Slow-path attributor: over-budget operations, explained and stacked.

The profiler (:mod:`repro.obs.profiler`) answers "where does time go in
aggregate"; a latency regression usually starts as the opposite question
-- *this one* query took 400ms, why?  :class:`SlowLog` catches any
statement or span that exceeds a latency budget and persists, per
offender, the two pieces of evidence that answer the question:

- the **EXPLAIN ANALYZE operator rows** of the offending SELECT
  (re-planned and re-executed under an instrumented plan via
  :func:`repro.db.algebra.instrument_plan`, inside the tracer's
  suppression so the re-run never shows up as its own slow query);
- the **profile stacks** the sampling profiler attributed to the
  offending span (:meth:`SamplingProfiler.span_profile`), when one is
  running.

Entries land in a ``sys_slowlog`` table -- queryable, watchable,
self-hosted like every other telemetry relation.  ``sys_slowlog`` is in
:data:`repro.obs.store.GUARDED_TABLES`, so the sink's recursion guard
drops any span/metric the slowlog's own writes generate.

Two paths feed the log:

1. :meth:`Database.enable_slowlog` installs a :class:`SlowLog` on a
   database; ``_execute_traced`` hands it every statement whose
   ``db.execute`` span exceeded ``budget_ms`` (with the SELECT plan, so
   operator rows can be captured);
2. a tracer finish hook catches *any other* over-budget span
   (``sync.flush``, ``ivm.delta_apply``, ...) -- those entries carry
   profile stacks but no operator rows.

Lock discipline: finish hooks run on whatever thread closed the span,
possibly while that thread holds subsystem locks.  Persisting from there
could invert lock orders, so a hook entry is written immediately only
when the slowlog database's lock is free (non-blocking acquire);
otherwise it is queued in memory and flushed by the next safe writer
(:meth:`flush`, :meth:`entries`, or any query-path record).

Noise control: per statement/span name at most ``max_per_statement``
entries are kept (the first offenders; a hot slow query would otherwise
flood the table), and the table itself is bounded at ``capacity`` rows,
oldest evicted first.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import deque
from typing import Any, Optional

from ..db.expression import col
from ..db.schema import Column
from ..db.types import FLOAT, INTEGER, TEXT
from .runtime import OBS, ObsRuntime
from .trace import Span

__all__ = ["SYS_SLOWLOG", "SlowLog"]

SYS_SLOWLOG = "sys_slowlog"

#: Over-budget operations recorded by default.
DEFAULT_BUDGET_MS = 50.0


def _json_text(value: Any) -> str:
    return json.dumps(value, sort_keys=True, default=str)


class SlowLog:
    """Budget watchdog persisting over-budget queries/spans with evidence.

    Parameters
    ----------
    database:
        Where ``sys_slowlog`` lives and (for the query path) where
        offending SELECTs are re-run for operator rows.
    budget_ms:
        Latency budget; anything slower is recorded.
    capacity:
        Max rows kept in ``sys_slowlog`` (oldest evicted).
    max_per_statement:
        Max entries per distinct statement/span name -- the first
        offenders win; later repeats only bump ``suppressed`` counters.
    explain:
        Re-run offending SELECTs under an instrumented plan to capture
        per-operator row counts.  Costs one extra execution of an
        already-slow query; disable on production-sized workloads where
        the stacks alone are enough.
    runtime:
        The observability runtime whose tracer/profiler feed the span
        path (defaults to the process-wide :data:`OBS`).
    """

    def __init__(
        self,
        database: Any,
        budget_ms: float = DEFAULT_BUDGET_MS,
        capacity: int = 256,
        max_per_statement: int = 3,
        explain: bool = True,
        runtime: Optional[ObsRuntime] = None,
    ) -> None:
        if budget_ms <= 0:
            raise ValueError(f"budget_ms must be positive, got {budget_ms}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.database = database
        self.budget_ms = float(budget_ms)
        self.capacity = capacity
        self.max_per_statement = max_per_statement
        self.explain = explain
        self.runtime = runtime if runtime is not None else OBS
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        #: name -> entries recorded (dedup bound).
        self._seen: dict[str, int] = {}
        #: Rows produced on hook threads while the db lock was busy.
        self._pending: deque[dict[str, Any]] = deque()
        #: Rows currently persisted (tracks capacity without COUNT(*)).
        self._stored = 0
        # Lifetime counters (tests and dashboards read these).
        self.recorded = 0
        self.suppressed = 0
        self.errors = 0
        self._install_schema()
        self.runtime.tracer.add_finish_hook(self._on_span_finish)

    # ------------------------------------------------------------------
    def _install_schema(self) -> None:
        db = self.database
        if db.has_table(SYS_SLOWLOG):
            self._stored = len(db.table(SYS_SLOWLOG))
            return
        db.create_table(
            SYS_SLOWLOG,
            [
                Column("id", INTEGER, nullable=False),
                Column("ts", INTEGER, nullable=False),
                Column("kind", TEXT, nullable=False),  # 'query' | 'span'
                Column("name", TEXT, nullable=False),
                Column("duration_ms", FLOAT, nullable=False),
                Column("budget_ms", FLOAT, nullable=False),
                Column("thread", TEXT),
                Column("trace_id", INTEGER),
                Column("span_id", INTEGER),
                Column("operators", TEXT),  # JSON [[label, rows], ...]
                Column("stacks", TEXT),  # JSON {stack: self_ms}
                Column("tags", TEXT),
            ],
        )
        db.table(SYS_SLOWLOG).create_index("ix_sys_slowlog_id", ("id",), sorted=True)

    # ------------------------------------------------------------------
    # Query path (called by Database._execute_traced after the span closed)
    def maybe_record_query(
        self, sql: str, span: Any, plan: Optional[Any] = None
    ) -> bool:
        """Record ``sql`` if its statement span blew the budget.

        ``plan`` is the (uninstrumented) SELECT plan when there is one;
        operator rows are captured by re-running it instrumented.
        Returns True when an entry was persisted.
        """
        duration = span.duration_ms
        if duration < self.budget_ms or not self._admit(sql):
            return False
        try:
            with self.runtime.tracer.suppress():
                operators = (
                    self._explain_analyze(plan)
                    if self.explain and plan is not None
                    else None
                )
                row = self._entry_row(
                    kind="query",
                    name=sql,
                    duration_ms=duration,
                    span=span,
                    operators=operators,
                )
                self._persist([row])
            return True
        except Exception:  # pragma: no cover - never take a query down
            self.errors += 1
            return False

    def _explain_analyze(self, plan: Any) -> list[list[Any]]:
        """Re-run ``plan`` instrumented; return ``[label, rows]`` pairs."""
        from ..db.algebra import instrument_plan, operator_rows

        instrumented, counters = instrument_plan(plan)
        with self.database.lock:
            instrumented.to_list(self.database)
        return [[label, rows] for label, rows in operator_rows(plan, counters)]

    # ------------------------------------------------------------------
    # Span path (tracer finish hook; runs on the finishing thread)
    def _on_span_finish(self, span: Span) -> None:
        if span.duration_ms < self.budget_ms:
            return
        # db.execute is the query path's job -- it records with the plan.
        if span.name == "db.execute":
            return
        # The observer never observes itself: spans touching telemetry
        # tables are the sink/slowlog doing their own bookkeeping.
        from .store import GUARDED_TABLES

        if span.tags.get("table") in GUARDED_TABLES:
            return
        if not self._admit(span.name):
            return
        try:
            row = self._entry_row(
                kind="span",
                name=span.name,
                duration_ms=span.duration_ms,
                span=span,
            )
            self._persist_or_queue(row)
        except Exception:  # pragma: no cover - hooks must not break tracing
            self.errors += 1

    # ------------------------------------------------------------------
    def _admit(self, name: str) -> bool:
        with self._lock:
            count = self._seen.get(name, 0)
            if count >= self.max_per_statement:
                self.suppressed += 1
                return False
            self._seen[name] = count + 1
            return True

    def _entry_row(
        self,
        kind: str,
        name: str,
        duration_ms: float,
        span: Any,
        operators: Optional[list[list[Any]]] = None,
    ) -> dict[str, Any]:
        profiler = getattr(self.runtime, "profiler", None)
        stacks: Optional[dict[str, float]] = None
        span_id = getattr(span, "span_id", 0)
        if profiler is not None and span_id:
            profile = profiler.span_profile(span_id)
            if profile is not None:
                stacks = {
                    stack: round(ms, 3) for stack, ms in profile["stacks"].items()
                }
        return {
            "id": next(self._ids),
            "ts": self.database.now(),
            "kind": kind,
            "name": name,
            "duration_ms": duration_ms,
            "budget_ms": self.budget_ms,
            "thread": getattr(span, "thread_name", ""),
            "trace_id": getattr(span, "trace_id", 0),
            "span_id": span_id,
            "operators": _json_text(operators) if operators is not None else None,
            "stacks": _json_text(stacks) if stacks is not None else None,
            "tags": _json_text(dict(getattr(span, "tags", {}) or {})),
        }

    # ------------------------------------------------------------------
    # Persistence
    def _persist_or_queue(self, row: dict[str, Any]) -> None:
        """Write now if the db lock is free, else queue for a safe flush.

        Non-blocking: a finish hook must never wait on the database lock
        with unknown locks already held (lock-order inversion).
        """
        if self.database.lock.acquire(blocking=False):
            try:
                with self.runtime.tracer.suppress():
                    self._persist([row])
            finally:
                self.database.lock.release()
        else:
            with self._lock:
                self._pending.append(row)

    def _persist(self, rows: list[dict[str, Any]]) -> None:
        """Insert ``rows`` (plus any queued backlog) and enforce capacity."""
        with self._lock:
            backlog = list(self._pending)
            self._pending.clear()
        batch = backlog + rows
        if not batch:
            return
        with self.database.lock:
            self.database.insert_many(SYS_SLOWLOG, batch)
            self._stored += len(batch)
            if self._stored > self.capacity:
                cutoff = max(r["id"] for r in batch) - self.capacity
                evicted = self.database.delete(SYS_SLOWLOG, col("id") <= cutoff)
                self._stored -= evicted
        self.recorded += len(batch)

    def flush(self) -> int:
        """Persist hook entries queued while the db lock was busy."""
        with self._lock:
            pending = len(self._pending)
        if pending:
            with self.runtime.tracer.suppress():
                self._persist([])
        return pending

    # ------------------------------------------------------------------
    # Reads
    def entries(self, limit: Optional[int] = None) -> list[dict[str, Any]]:
        """Slowlog rows, newest first (flushes queued entries first)."""
        self.flush()
        with self.runtime.tracer.suppress():
            rows = self.database.query(
                f"SELECT * FROM {SYS_SLOWLOG} ORDER BY id DESC"
                + (f" LIMIT {int(limit)}" if limit is not None else "")
            )
        return rows

    def format_entries(self, limit: int = 10) -> str:
        """Human-readable digest: one offender per block, evidence inline."""
        lines: list[str] = []
        for row in self.entries(limit):
            lines.append(
                f"[{row['kind']}] {row['name']!r} "
                f"{row['duration_ms']:.1f}ms (budget {row['budget_ms']:.0f}ms)"
            )
            if row.get("operators"):
                for label, produced in json.loads(row["operators"]):
                    lines.append(f"    {label} (rows={produced})")
            if row.get("stacks"):
                stacks = json.loads(row["stacks"])
                for stack, ms in sorted(stacks.items(), key=lambda kv: -kv[1]):
                    leaf = stack.rsplit(";", 1)[-1]
                    lines.append(f"    {ms:.1f}ms in {leaf}")
        return "\n".join(lines)

    def counters(self) -> dict[str, int]:
        with self._lock:
            pending = len(self._pending)
        return {
            "recorded": self.recorded,
            "suppressed": self.suppressed,
            "pending": pending,
            "errors": self.errors,
        }

    def reset_dedup(self) -> None:
        """Forget which names already hit ``max_per_statement``."""
        with self._lock:
            self._seen.clear()

    def close(self) -> None:
        """Unhook from the tracer and flush the queue.  Rows remain."""
        self.runtime.tracer.remove_finish_hook(self._on_span_finish)
        self.flush()
