"""View registry: wires base-table triggers to maintenance.

Registering a view installs statement-level triggers on each of its base
tables; every subsequent change set is converted to a delta and folded
into the view incrementally.  The registry records counters so benchmarks
(ablation A1) can report maintenance vs recomputation work.

Views participate in the propagation policies of Section V: under a
non-immediate policy (:meth:`ViewRegistry.set_policy`) the trigger path
*buffers* change sets in a :class:`~repro.sync.batching.DeltaCoalescer`
and a flush folds the whole batch into the view as **one** combined
delta -- one ``apply_delta`` call, one maintenance span, however many
statements fed it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from ..db.database import Database
from ..db.table import ChangeSet
from ..errors import DatabaseError, ViewError
from ..obs.runtime import OBS
from ..sync.batching import BatchBuffer, IMMEDIATE, PropagationPolicy
from .delta import Delta
from .maintenance import apply_delta
from .view import ViewDefinition


@dataclass
class ViewStats:
    """Bookkeeping for one registered view."""

    recomputes: int = 0
    deltas_applied: int = 0
    delta_rows: int = 0
    #: Flushes of buffered (non-immediate policy) batches.
    batched_flushes: int = 0
    #: Raw operations removed by coalescing before application.
    coalesced_ops: int = 0


class ViewRegistry:
    """Owns materialized views over one database."""

    def __init__(self, database: Database) -> None:
        self._database = database
        self._views: dict[str, ViewDefinition] = {}
        self._stats: dict[str, ViewStats] = {}
        self._trigger_names: dict[str, list[str]] = {}
        # Propagation policies: view name -> policy (absent = immediate).
        # Buffer keys are "view|table" since one view may span tables.
        self._policies: dict[str, PropagationPolicy] = {}
        self._buffer = BatchBuffer()
        self._lock = threading.RLock()

    def register(self, view: ViewDefinition, populate: bool = True) -> ViewDefinition:
        """Add a view, install its triggers, and (by default) populate it."""
        if view.name in self._views:
            raise ViewError(f"view {view.name!r} already registered")
        self._views[view.name] = view
        self._stats[view.name] = ViewStats()
        triggers: list[str] = []
        for table in sorted(view.base_tables()):
            name = self._database.on(
                table,
                ("insert", "update", "delete"),
                self._make_handler(view),
                name=f"ivm_{view.name}_{table}",
            )
            triggers.append(name)
        self._trigger_names[view.name] = triggers
        # Lineage-enabled views become provenance-queryable through the
        # database's lineage manager (when capture is on).
        manager = getattr(self._database, "lineage", None)
        if manager is not None and getattr(view, "lineage", None) is not None:
            manager.register_view(view)
        if populate:
            self.recompute(view.name)
        return view

    # ------------------------------------------------------------------
    # Propagation policies
    def set_policy(self, view_name: str, policy: PropagationPolicy) -> None:
        """Configure how base-table changes reach ``view_name``.

        Anything buffered under the old policy is flushed first, so a
        policy switch never strands deltas.
        """
        self.view(view_name)  # must exist
        self.flush_view(view_name)
        with self._lock:
            if policy.buffers:
                self._policies[view_name] = policy
            else:
                self._policies.pop(view_name, None)

    def policy(self, view_name: str) -> PropagationPolicy:
        with self._lock:
            return self._policies.get(view_name, IMMEDIATE)

    def pending_ops(self, view_name: str) -> int:
        """Buffered raw operations awaiting a flush for ``view_name``."""
        prefix = view_name + "|"
        with self._lock:
            return sum(
                self._buffer.pending_ops(key)
                for key in self._buffer.keys()
                if key.startswith(prefix)
            )

    def flush_view(self, view_name: str) -> int:
        """Apply buffered deltas of ``view_name`` as combined batches.

        Returns the number of net operations applied.  One call per base
        table: a flush of 10k coalesced inserts costs one ``apply_delta``
        invocation instead of 10k trigger firings.
        """
        prefix = view_name + "|"
        # Database lock first: the trigger path arrives holding it, so a
        # flusher thread must use the same order.
        with self._database.lock:
            with self._lock:
                coalescers = [
                    self._buffer.take(key)
                    for key in self._buffer.keys()
                    if key.startswith(prefix)
                ]
            applied = 0
            for coalescer in coalescers:
                if coalescer is None:
                    continue
                stats = self._stats.get(view_name)
                if stats is not None:
                    stats.coalesced_ops += coalescer.coalesced_away()
                if coalescer.is_empty():
                    continue  # batch annihilated itself; savings counted
                if stats is not None:
                    stats.batched_flushes += 1
                self._apply_now(self._views[view_name], coalescer.net_changeset())
                applied += coalescer.net_ops()
            return applied

    def flush_all(self) -> int:
        """Flush every view with buffered deltas; returns total net ops."""
        with self._lock:
            names = {key.split("|", 1)[0] for key in self._buffer.keys()}
        return sum(self.flush_view(name) for name in names)

    # ------------------------------------------------------------------
    def _make_handler(self, view: ViewDefinition):
        def handler(change: ChangeSet) -> None:
            # Trigger context: database lock held.
            with self._lock:
                policy = self._policies.get(view.name)
                if policy is not None:
                    key = f"{view.name}|{change.table}"
                    coalescer = self._buffer.add(key, change)
                    due = policy.should_flush(
                        coalescer.raw_ops, self._buffer.age_ms(key)
                    )
                    if not due:
                        return
            if policy is not None:
                self.flush_view(view.name)
                return
            self._apply_now(view, change)

        return handler

    def _apply_now(self, view: ViewDefinition, change: ChangeSet) -> int:
        def apply(change: ChangeSet) -> int:
            delta = Delta.from_changeset(change)
            applied = apply_delta(view, delta, self._database)
            stats = self._stats[view.name]
            stats.deltas_applied += 1
            stats.delta_rows += applied
            return applied

        if not OBS.enabled:
            return apply(change)
        with OBS.tracer.span(
            "ivm.delta_apply",
            tags={"view": view.name, "table": change.table},
        ) as span:
            applied = apply(change)
            span.set_tag("rows", applied)
        OBS.metrics.histogram("ivm.delta_rows", view=view.name).observe(applied)
        OBS.metrics.histogram("ivm.maintenance_ms", view=view.name).observe(
            span.duration_ms
        )
        return applied

    def unregister(self, name: str) -> None:
        if name not in self._views:
            raise ViewError(f"no view named {name!r}")
        for trigger in self._trigger_names.pop(name, []):
            try:
                self._database.drop_trigger(trigger)
            except DatabaseError:
                # Table may have been dropped, taking triggers with it.
                # Count the skip instead of swallowing it invisibly.
                if OBS.enabled:
                    OBS.metrics.counter(
                        "ivm.trigger_drop_errors", view=name
                    ).inc()
        manager = getattr(self._database, "lineage", None)
        if manager is not None:
            manager.unregister_view(name)
        prefix = name + "|"
        with self._lock:
            self._policies.pop(name, None)
            for key in self._buffer.keys():
                if key.startswith(prefix):
                    self._buffer.take(key)
        del self._views[name]
        del self._stats[name]

    def view(self, name: str) -> ViewDefinition:
        try:
            return self._views[name]
        except KeyError:
            raise ViewError(f"no view named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._views)

    def recompute(self, name: str) -> None:
        """Full recomputation (also the fallback for doubt or repair)."""
        view = self.view(name)
        try:
            view.recompute(self._database)
        except Exception:
            # Surface recompute failures: count them so the dashboard /
            # alerts see a broken view, then let the caller handle it.
            if OBS.enabled:
                OBS.metrics.counter("ivm.recompute_errors", view=name).inc()
            raise
        self._stats[name].recomputes += 1

    def stats(self, name: str) -> ViewStats:
        return self._stats[name]

    def rows(self, name: str) -> list[dict[str, Any]]:
        return self.view(name).rows()
