"""View registry: wires base-table triggers to maintenance.

Registering a view installs statement-level triggers on each of its base
tables; every subsequent change set is converted to a delta and folded
into the view incrementally.  The registry records counters so benchmarks
(ablation A1) can report maintenance vs recomputation work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..db.database import Database
from ..db.table import ChangeSet
from ..errors import ViewError
from ..obs.runtime import OBS
from .delta import Delta
from .maintenance import apply_delta
from .view import ViewDefinition


@dataclass
class ViewStats:
    """Bookkeeping for one registered view."""

    recomputes: int = 0
    deltas_applied: int = 0
    delta_rows: int = 0


class ViewRegistry:
    """Owns materialized views over one database."""

    def __init__(self, database: Database) -> None:
        self._database = database
        self._views: dict[str, ViewDefinition] = {}
        self._stats: dict[str, ViewStats] = {}
        self._trigger_names: dict[str, list[str]] = {}

    def register(self, view: ViewDefinition, populate: bool = True) -> ViewDefinition:
        """Add a view, install its triggers, and (by default) populate it."""
        if view.name in self._views:
            raise ViewError(f"view {view.name!r} already registered")
        self._views[view.name] = view
        self._stats[view.name] = ViewStats()
        triggers: list[str] = []
        for table in sorted(view.base_tables()):
            name = self._database.on(
                table,
                ("insert", "update", "delete"),
                self._make_handler(view),
                name=f"ivm_{view.name}_{table}",
            )
            triggers.append(name)
        self._trigger_names[view.name] = triggers
        if populate:
            self.recompute(view.name)
        return view

    def _make_handler(self, view: ViewDefinition):
        def apply(change: ChangeSet) -> int:
            delta = Delta.from_changeset(change)
            applied = apply_delta(view, delta, self._database)
            stats = self._stats[view.name]
            stats.deltas_applied += 1
            stats.delta_rows += applied
            return applied

        def handler(change: ChangeSet) -> None:
            if not OBS.enabled:
                apply(change)
                return
            with OBS.tracer.span(
                "ivm.delta_apply",
                tags={"view": view.name, "table": change.table},
            ) as span:
                applied = apply(change)
                span.set_tag("rows", applied)
            OBS.metrics.histogram("ivm.delta_rows", view=view.name).observe(applied)
            OBS.metrics.histogram("ivm.maintenance_ms", view=view.name).observe(
                span.duration_ms
            )

        return handler

    def unregister(self, name: str) -> None:
        if name not in self._views:
            raise ViewError(f"no view named {name!r}")
        for trigger in self._trigger_names.pop(name, []):
            try:
                self._database.drop_trigger(trigger)
            except Exception:
                pass  # table may have been dropped, taking triggers with it
        del self._views[name]
        del self._stats[name]

    def view(self, name: str) -> ViewDefinition:
        try:
            return self._views[name]
        except KeyError:
            raise ViewError(f"no view named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._views)

    def recompute(self, name: str) -> None:
        """Full recomputation (also the fallback for doubt or repair)."""
        view = self.view(name)
        view.recompute(self._database)
        self._stats[name].recomputes += 1

    def stats(self, name: str) -> ViewStats:
        return self._stats[name]

    def rows(self, name: str) -> list[dict[str, Any]]:
        return self.view(name).rows()
