"""Incremental maintenance algorithms.

Given a :class:`~repro.ivm.delta.Delta` against a base table, update each
dependent view in time proportional to the delta (not the base table) --
the property that makes the Wikipedia application feasible: "a total
recomputation of the aggregation is out of reach, because change frequency
is too high" (Section III of the paper).
"""

from __future__ import annotations

from typing import Any

from ..db.expression import evaluate_predicate
from ..errors import ViewError
from .delta import Delta, Row
from .view import AggregateView, JoinView, SelectProjectView, ViewDefinition, _project


def apply_delta(view: ViewDefinition, delta: Delta, database: Any = None) -> int:
    """Route ``delta`` to the view's maintenance algorithm.

    Returns the number of delta rows actually folded into the view (rows
    filtered out by the view's predicate do not count).
    """
    if isinstance(view, SelectProjectView):
        return _maintain_select_project(view, delta)
    if isinstance(view, JoinView):
        return _maintain_join(view, delta)
    if isinstance(view, AggregateView):
        return _maintain_aggregate(view, delta)
    raise ViewError(f"no maintenance algorithm for {type(view).__name__}")


def _maintain_select_project(view: SelectProjectView, delta: Delta) -> int:
    if delta.table != view.table:
        return 0
    applied = 0
    for row in delta.inserted:
        if evaluate_predicate(view.where, row):
            view.storage.add(_project(row, view.project))
            applied += 1
    for row in delta.deleted:
        if evaluate_predicate(view.where, row):
            view.storage.remove(_project(row, view.project))
            applied += 1
    return applied


def _join_side_apply(
    view: JoinView,
    side_rows: dict[Any, list[Row]],
    other_rows: dict[Any, list[Row]],
    key_col: str,
    row: Row,
    from_left: bool,
    sign: int,
) -> int:
    """Fold one delta row on one side of the join; returns combos touched."""
    key = row[key_col]
    touched = 0
    if key is not None:
        for other in other_rows.get(key, ()):
            lrow, rrow = (row, other) if from_left else (other, row)
            combined = view.combine(lrow, rrow)
            if combined is None:
                continue
            if sign > 0:
                view.storage.add(combined)
            else:
                view.storage.remove(combined)
            touched += 1
    # Maintain the side map itself.
    image = {k: v for k, v in row.items() if not k.startswith("__")}
    bucket = side_rows.setdefault(key, [])
    if sign > 0:
        bucket.append(image)
    else:
        try:
            bucket.remove(image)
        except ValueError:
            raise ViewError(
                f"join view {view.name!r}: deleting a row never seen on "
                f"{'left' if from_left else 'right'} side: {image!r}"
            ) from None
        if not bucket:
            del side_rows[key]
    return touched


def _maintain_join(view: JoinView, delta: Delta) -> int:
    applied = 0
    if delta.table == view.left:
        for row in delta.deleted:
            applied += _join_side_apply(
                view, view.left_rows, view.right_rows, view.left_on, row, True, -1
            )
        for row in delta.inserted:
            applied += _join_side_apply(
                view, view.left_rows, view.right_rows, view.left_on, row, True, +1
            )
    elif delta.table == view.right:
        for row in delta.deleted:
            applied += _join_side_apply(
                view, view.right_rows, view.left_rows, view.right_on, row, False, -1
            )
        for row in delta.inserted:
            applied += _join_side_apply(
                view, view.right_rows, view.left_rows, view.right_on, row, False, +1
            )
    return applied


def _maintain_aggregate(view: AggregateView, delta: Delta) -> int:
    if delta.table != view.table:
        return 0
    applied = 0
    for row in delta.deleted:
        if evaluate_predicate(view.where, row):
            view.apply_row(row, -1)
            applied += 1
    for row in delta.inserted:
        if evaluate_predicate(view.where, row):
            view.apply_row(row, +1)
            applied += 1
    return applied
