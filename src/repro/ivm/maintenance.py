"""Incremental maintenance algorithms.

Given a :class:`~repro.ivm.delta.Delta` against a base table, update each
dependent view in time proportional to the delta (not the base table) --
the property that makes the Wikipedia application feasible: "a total
recomputation of the aggregation is out of reach, because change frequency
is too high" (Section III of the paper).
"""

from __future__ import annotations

from typing import Any

from ..db.expression import evaluate_predicate
from ..db.schema import TID
from ..errors import ViewError
from .delta import Delta, Row, partition_rows, row_key
from .view import AggregateView, JoinView, SelectProjectView, ViewDefinition, _project

# Deltas at least this large take the batch maintenance path: rows are
# partitioned per group (aggregates) or projected en masse (select-project)
# and folded in with one view-level call per partition instead of one per
# row.  Coalesced flushes from the batching layer routinely carry thousands
# of rows; below this size the per-row path's simplicity wins.
_BATCH_MIN = 64


def apply_delta(view: ViewDefinition, delta: Delta, database: Any = None) -> int:
    """Route ``delta`` to the view's maintenance algorithm.

    Returns the number of delta rows actually folded into the view (rows
    filtered out by the view's predicate do not count).
    """
    if isinstance(view, SelectProjectView):
        return _maintain_select_project(view, delta)
    if isinstance(view, JoinView):
        return _maintain_join(view, delta)
    if isinstance(view, AggregateView):
        return _maintain_aggregate(view, delta)
    raise ViewError(f"no maintenance algorithm for {type(view).__name__}")


def _maintain_select_project(view: SelectProjectView, delta: Delta) -> int:
    if delta.table != view.table:
        return 0
    if len(delta) >= _BATCH_MIN:
        return _maintain_select_project_batch(view, delta)
    applied = 0
    lineage = view.lineage
    for row in delta.inserted:
        if evaluate_predicate(view.where, row):
            projected = _project(row, view.project)
            view.storage.add(projected)
            if lineage is not None:
                lineage.add(row_key(projected), ((view.table, row.get(TID)),))
            applied += 1
    for row in delta.deleted:
        if evaluate_predicate(view.where, row):
            projected = _project(row, view.project)
            view.storage.remove(projected)
            if lineage is not None:
                lineage.remove(row_key(projected), ((view.table, row.get(TID)),))
            applied += 1
    return applied


def _maintain_select_project_batch(view: SelectProjectView, delta: Delta) -> int:
    """Batch path: project all qualifying rows, then fold them in en masse.

    Ordering matches the per-row path (insertions before deletions), and
    ``add_many``/``remove_many`` are row-order-preserving, so the view's
    multiset state is byte-identical.
    """
    where = view.where
    project = view.project
    inserted = delta.inserted
    deleted = delta.deleted
    if where is not None:
        inserted = [row for row in inserted if evaluate_predicate(where, row)]
        deleted = [row for row in deleted if evaluate_predicate(where, row)]
    inserted_projected = [_project(row, project) for row in inserted]
    deleted_projected = [_project(row, project) for row in deleted]
    view.storage.add_many(inserted_projected)
    view.storage.remove_many(deleted_projected)
    lineage = view.lineage
    if lineage is not None:
        table = view.table
        for row, projected in zip(inserted, inserted_projected):
            lineage.add(row_key(projected), ((table, row.get(TID)),))
        for row, projected in zip(deleted, deleted_projected):
            lineage.remove(row_key(projected), ((table, row.get(TID)),))
    return len(inserted) + len(deleted)


def _join_side_apply(
    view: JoinView,
    side_rows: dict[Any, list[tuple[Row, Any]]],
    other_rows: dict[Any, list[tuple[Row, Any]]],
    key_col: str,
    row: Row,
    from_left: bool,
    sign: int,
) -> int:
    """Fold one delta row on one side of the join; returns combos touched."""
    key = row[key_col]
    touched = 0
    tid = row.get(TID)
    lineage = view.lineage
    if key is not None:
        for other, otid in other_rows.get(key, ()):
            lrow, rrow = (row, other) if from_left else (other, row)
            combined = view.combine(lrow, rrow)
            if combined is None:
                continue
            if from_left:
                srcs = ((view.left, tid), (view.right, otid))
            else:
                srcs = ((view.left, otid), (view.right, tid))
            if sign > 0:
                view.storage.add(combined)
                if lineage is not None:
                    lineage.add(row_key(combined), srcs)
            else:
                view.storage.remove(combined)
                if lineage is not None:
                    lineage.remove(row_key(combined), srcs)
            touched += 1
    # Maintain the side map itself.  Entries are (visible image, tid);
    # deletes match by tid when the delta row carries one (recomputed
    # state and delta images then agree even though delta rows are full
    # internal images), falling back to image equality for tid-less rows.
    image = {k: v for k, v in row.items() if not k.startswith("__")}
    bucket = side_rows.setdefault(key, [])
    if sign > 0:
        bucket.append((image, tid))
    else:
        idx = None
        if tid is not None:
            for i, (_, t) in enumerate(bucket):
                if t == tid:
                    idx = i
                    break
        if idx is None:
            for i, (img, _) in enumerate(bucket):
                if img == image:
                    idx = i
                    break
        if idx is None:
            raise ViewError(
                f"join view {view.name!r}: deleting a row never seen on "
                f"{'left' if from_left else 'right'} side: {image!r}"
            )
        del bucket[idx]
        if not bucket:
            del side_rows[key]
    return touched


def _maintain_join(view: JoinView, delta: Delta) -> int:
    applied = 0
    if delta.table == view.left:
        for row in delta.deleted:
            applied += _join_side_apply(
                view, view.left_rows, view.right_rows, view.left_on, row, True, -1
            )
        for row in delta.inserted:
            applied += _join_side_apply(
                view, view.left_rows, view.right_rows, view.left_on, row, True, +1
            )
    elif delta.table == view.right:
        for row in delta.deleted:
            applied += _join_side_apply(
                view, view.right_rows, view.left_rows, view.right_on, row, False, -1
            )
        for row in delta.inserted:
            applied += _join_side_apply(
                view, view.right_rows, view.left_rows, view.right_on, row, False, +1
            )
    return applied


def _maintain_aggregate(view: AggregateView, delta: Delta) -> int:
    if delta.table != view.table:
        return 0
    if len(delta) >= _BATCH_MIN:
        return _maintain_aggregate_batch(view, delta)
    applied = 0
    for row in delta.deleted:
        if evaluate_predicate(view.where, row):
            view.apply_row(row, -1)
            applied += 1
    for row in delta.inserted:
        if evaluate_predicate(view.where, row):
            view.apply_row(row, +1)
            applied += 1
    return applied


def _maintain_aggregate_batch(view: AggregateView, delta: Delta) -> int:
    """Batch path: partition qualifying rows per group, fold each partition
    with one :meth:`AggregateView.apply_group_rows` call.

    Deletions are applied fully before insertions and row order is
    preserved inside each partition, so accumulator state (including float
    SUM rounding) matches the per-row path exactly.
    """
    where = view.where
    group_by = view.group_by
    deleted = delta.deleted
    inserted = delta.inserted
    if where is not None:
        deleted = [row for row in deleted if evaluate_predicate(where, row)]
        inserted = [row for row in inserted if evaluate_predicate(where, row)]
    applied = 0
    for key, rows in partition_rows(deleted, group_by).items():
        view.apply_group_rows(key, rows, -1)
        applied += len(rows)
    for key, rows in partition_rows(inserted, group_by).items():
        view.apply_group_rows(key, rows, +1)
        applied += len(rows)
    return applied
