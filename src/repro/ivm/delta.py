"""Deltas: the unit of incremental propagation.

The paper writes updates as ``Delta R`` -- "a set of tuples added to R"
(Section V) -- and propagates them "using well-known incremental view
maintenance algorithms" (Section VI-B, citing Gupta-Mumick).  A
:class:`Delta` carries inserted and deleted row images; an update is
modelled, classically, as delete(before) + insert(after).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..db.table import ChangeSet

Row = dict[str, Any]


@dataclass
class Delta:
    """Net change to one relation."""

    table: str
    inserted: list[Row] = field(default_factory=list)
    deleted: list[Row] = field(default_factory=list)

    @classmethod
    def from_changeset(cls, change: ChangeSet) -> "Delta":
        """Convert a trigger-level change set, splitting updates."""
        delta = cls(table=change.table)
        delta.inserted.extend(change.inserted)
        delta.deleted.extend(change.deleted)
        for before, after in change.updated:
            delta.deleted.append(before)
            delta.inserted.append(after)
        return delta

    @classmethod
    def insertions(cls, table: str, rows: Iterable[Row]) -> "Delta":
        return cls(table=table, inserted=list(rows))

    @classmethod
    def deletions(cls, table: str, rows: Iterable[Row]) -> "Delta":
        return cls(table=table, deleted=list(rows))

    def is_empty(self) -> bool:
        return not self.inserted and not self.deleted

    def __len__(self) -> int:
        return len(self.inserted) + len(self.deleted)

    def inverted(self) -> "Delta":
        """The delta that undoes this one."""
        return Delta(
            table=self.table,
            inserted=list(self.deleted),
            deleted=list(self.inserted),
        )


def partition_rows(rows: Iterable[Row], group_by: Sequence[str]) -> dict[tuple, list[Row]]:
    """Partition rows by their group key, preserving first-seen group order
    and within-group row order.

    Batch aggregate maintenance folds each partition with one
    :meth:`AggregateView.apply_group_rows` call instead of one
    :meth:`apply_row` call per row; preserving row order keeps float SUM
    accumulation identical to the per-row path.
    """
    groups: dict[tuple, list[Row]] = {}
    for row in rows:
        key = tuple(row[g] for g in group_by)
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [row]
        else:
            bucket.append(row)
    return groups


def row_key(row: Row) -> tuple[tuple[str, Any], ...]:
    """Hashable identity of a row over its visible columns.

    Used by multiset view storage: two rows with equal visible columns are
    the same tuple for view-maintenance purposes.
    """
    return tuple(sorted((k, v) for k, v in row.items() if not k.startswith("__")))
