"""Materialized view definitions and storage.

Three view shapes cover everything EdiFlow's applications need:

* :class:`SelectProjectView` -- sigma/pi over one base table;
* :class:`JoinView` -- equi-join of two base tables with optional
  selection and projection;
* :class:`AggregateView` -- GROUP BY with COUNT/SUM/AVG/MIN/MAX over one
  base table (the US-election vote aggregates and the Wikipedia
  contribution metrics are exactly this shape).

Views store their result as a counted multiset so that duplicate tuples
delete correctly (classic counting algorithm of Gupta-Mumick).  The
maintenance algorithms live in :mod:`repro.ivm.maintenance`.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Sequence

from ..db.algebra import AggSpec
from ..db.expression import ColumnRef, Expression, evaluate_predicate
from ..db.schema import TID
from ..errors import ViewError
from .delta import Row, row_key


class ViewDefinition:
    """Base class: which tables feed the view, and how to recompute it."""

    name: str
    #: Optional bidirectional lineage index (see :meth:`enable_lineage`).
    lineage: Any = None

    def base_tables(self) -> set[str]:
        raise NotImplementedError

    def recompute(self, database: Any) -> None:
        raise NotImplementedError

    def rows(self) -> list[Row]:
        raise NotImplementedError

    def enable_lineage(self) -> "ViewDefinition":
        """Track per-output input-tid sets through recompute and deltas.

        After enabling, :meth:`backward_lineage` answers "which base
        tuples produced this output" and :meth:`forward_lineage` the
        reverse.  Tracking starts from the next recompute; enable before
        registering the view so the initial population is indexed.
        Returns ``self`` for chaining.
        """
        if self.lineage is None:
            from ..lineage.views import ViewLineage

            self.lineage = ViewLineage()
        return self

    def _lineage_key(self, row: Row) -> Any:
        """The lineage-index key for one output row (see subclasses)."""
        raise NotImplementedError

    def backward_lineage(self, key: Any) -> set[tuple[str, Any]]:
        """Base ``(table, tid)`` pairs currently feeding output ``key``.

        For :class:`AggregateView` the key is the group-key tuple; for
        the other shapes it is :func:`~repro.ivm.delta.row_key` of the
        output row.
        """
        if self.lineage is None:
            raise ViewError(
                f"view {self.name!r} has no lineage index; call enable_lineage()"
            )
        return self.lineage.backward(key)

    def forward_lineage(self, table: str, tid: Any) -> set[Any]:
        """Output keys that base tuple ``(table, tid)`` contributes to."""
        if self.lineage is None:
            raise ViewError(
                f"view {self.name!r} has no lineage index; call enable_lineage()"
            )
        return self.lineage.forward((table, tid))


class _MultisetStorage:
    """Counted multiset of rows keyed by their visible-column identity."""

    def __init__(self) -> None:
        self._counts: Counter[tuple[tuple[str, Any], ...]] = Counter()
        self._samples: dict[tuple[tuple[str, Any], ...], Row] = {}

    def clear(self) -> None:
        self._counts.clear()
        self._samples.clear()

    def add(self, row: Row, count: int = 1) -> None:
        key = row_key(row)
        self._counts[key] += count
        self._samples.setdefault(
            key, {k: v for k, v in row.items() if not k.startswith("__")}
        )

    def remove(self, row: Row, count: int = 1) -> None:
        key = row_key(row)
        current = self._counts.get(key, 0)
        if current < count:
            raise ViewError(
                f"view multiset underflow removing {dict(key)!r} "
                f"(have {current}, removing {count})"
            )
        if current == count:
            del self._counts[key]
            del self._samples[key]
        else:
            self._counts[key] = current - count

    def add_many(self, rows: Sequence[Row]) -> None:
        """Fold a batch of rows in; equivalent to ``add`` per row in order."""
        counts = self._counts
        samples = self._samples
        for row in rows:
            key = row_key(row)
            counts[key] += 1
            if key not in samples:
                samples[key] = {k: v for k, v in row.items() if not k.startswith("__")}

    def remove_many(self, rows: Sequence[Row]) -> None:
        """Fold a batch of rows out; equivalent to ``remove`` per row in order."""
        counts = self._counts
        samples = self._samples
        for row in rows:
            key = row_key(row)
            current = counts.get(key, 0)
            if current < 1:
                raise ViewError(
                    f"view multiset underflow removing {dict(key)!r} "
                    f"(have {current}, removing 1)"
                )
            if current == 1:
                del counts[key]
                del samples[key]
            else:
                counts[key] = current - 1

    def rows(self) -> list[Row]:
        out: list[Row] = []
        for key, count in self._counts.items():
            sample = self._samples[key]
            out.extend(dict(sample) for _ in range(count))
        return out

    def distinct_rows(self) -> list[Row]:
        return [dict(self._samples[key]) for key in self._counts]

    def __len__(self) -> int:
        return sum(self._counts.values())

    def __contains__(self, row: Row) -> bool:
        return self._counts.get(row_key(row), 0) > 0

    def count(self, row: Row) -> int:
        return self._counts.get(row_key(row), 0)


def _project(row: Row, items: Sequence[tuple[str, Expression]] | None) -> Row:
    if items is None:
        return {k: v for k, v in row.items() if not k.startswith("__")}
    return {name: expr.eval(row) for name, expr in items}


class SelectProjectView(ViewDefinition):
    """``SELECT <project> FROM <table> WHERE <predicate>`` materialized."""

    def __init__(
        self,
        name: str,
        table: str,
        where: Expression | None = None,
        project: Sequence[tuple[str, Expression]] | None = None,
    ) -> None:
        self.name = name
        self.table = table
        self.where = where
        self.project = list(project) if project is not None else None
        self.storage = _MultisetStorage()

    def base_tables(self) -> set[str]:
        return {self.table}

    def recompute(self, database: Any) -> None:
        self.storage.clear()
        lineage = self.lineage
        if lineage is not None:
            lineage.clear()
        for row in database.table(self.table).rows():
            if evaluate_predicate(self.where, row):
                projected = _project(row, self.project)
                self.storage.add(projected)
                if lineage is not None:
                    lineage.add(row_key(projected), ((self.table, row.get(TID)),))

    def _lineage_key(self, row: Row) -> Any:
        return row_key(row)

    def rows(self) -> list[Row]:
        return self.storage.rows()

    def __len__(self) -> int:
        return len(self.storage)


class JoinView(ViewDefinition):
    """Materialized equi-join ``left JOIN right ON left_on = right_on``.

    Maintains per-side hash maps from join-key to source-row multiplicity
    so a delta on either side joins against the *other side's current
    state* in O(|delta|) expected time.
    """

    def __init__(
        self,
        name: str,
        left: str,
        right: str,
        left_on: str,
        right_on: str,
        where: Expression | None = None,
        project: Sequence[tuple[str, Expression]] | None = None,
    ) -> None:
        if left == right:
            raise ViewError("self-joins are not supported by JoinView")
        self.name = name
        self.left = left
        self.right = right
        self.left_on = left_on
        self.right_on = right_on
        self.where = where
        self.project = list(project) if project is not None else None
        self.storage = _MultisetStorage()
        # join key -> list of (visible-column image, tid) entries currently
        # on that side.  The tid disambiguates duplicate images on delete
        # and carries the lineage source; it may be None for rows that
        # never touched a stored table.
        self.left_rows: dict[Any, list[tuple[Row, Any]]] = {}
        self.right_rows: dict[Any, list[tuple[Row, Any]]] = {}

    def base_tables(self) -> set[str]:
        return {self.left, self.right}

    def combine(self, lrow: Row, rrow: Row) -> Row | None:
        joined = {
            **{k: v for k, v in lrow.items() if not k.startswith("__")},
            **{k: v for k, v in rrow.items() if not k.startswith("__")},
        }
        if not evaluate_predicate(self.where, joined):
            return None
        return _project(joined, self.project)

    @staticmethod
    def _image(row: Row) -> Row:
        return {k: v for k, v in row.items() if not k.startswith("__")}

    def recompute(self, database: Any) -> None:
        self.storage.clear()
        self.left_rows.clear()
        self.right_rows.clear()
        lineage = self.lineage
        if lineage is not None:
            lineage.clear()
        for row in database.table(self.left).rows():
            self.left_rows.setdefault(row[self.left_on], []).append(
                (self._image(row), row.get(TID))
            )
        for row in database.table(self.right).rows():
            self.right_rows.setdefault(row[self.right_on], []).append(
                (self._image(row), row.get(TID))
            )
        for key, lrows in self.left_rows.items():
            for rrow, rtid in self.right_rows.get(key, ()):
                for lrow, ltid in lrows:
                    combined = self.combine(lrow, rrow)
                    if combined is not None:
                        self.storage.add(combined)
                        if lineage is not None:
                            lineage.add(
                                row_key(combined),
                                ((self.left, ltid), (self.right, rtid)),
                            )

    def _lineage_key(self, row: Row) -> Any:
        return row_key(row)

    def rows(self) -> list[Row]:
        return self.storage.rows()

    def __len__(self) -> int:
        return len(self.storage)


class _GroupState:
    """Incremental state of one group in an aggregate view."""

    __slots__ = ("count_star", "sums", "counts", "value_counts")

    def __init__(self, n_aggs: int) -> None:
        self.count_star = 0
        self.sums: list[Any] = [0] * n_aggs
        self.counts = [0] * n_aggs
        # For MIN/MAX: multiset of observed values per aggregate slot.
        self.value_counts: list[Counter[Any] | None] = [None] * n_aggs


class AggregateView(ViewDefinition):
    """Materialized ``SELECT group_by..., aggs... FROM table WHERE ...``.

    SUM/COUNT/AVG maintain in O(1) per delta row.  MIN/MAX keep a counted
    multiset of values per group, so deletions of the current extremum
    find the next one without touching the base table.
    """

    def __init__(
        self,
        name: str,
        table: str,
        group_by: Sequence[str],
        aggregates: Sequence[AggSpec],
        where: Expression | None = None,
    ) -> None:
        self.name = name
        self.table = table
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        self.where = where
        self.groups: dict[tuple[Any, ...], _GroupState] = {}
        for spec in self.aggregates:
            if spec.arg is not None and not isinstance(spec.arg, ColumnRef):
                # Arbitrary expressions are fine -- they are evaluated over
                # base rows -- this is just a sanity note, not a limitation.
                pass

    def base_tables(self) -> set[str]:
        return {self.table}

    # -- maintenance primitives (called by maintenance.py) ---------------
    def _group_key(self, row: Row) -> tuple[Any, ...]:
        return tuple(row[g] for g in self.group_by)

    def apply_row(self, row: Row, sign: int) -> None:
        """Fold one base row in (+1) or out (-1) of its group."""
        key = self._group_key(row)
        state = self.groups.get(key)
        if state is None:
            if sign < 0:
                raise ViewError(
                    f"aggregate view {self.name!r}: deleting from unknown group {key!r}"
                )
            state = _GroupState(len(self.aggregates))
            self.groups[key] = state
        if self.lineage is not None:
            src = ((self.table, row.get(TID)),)
            if sign > 0:
                self.lineage.add(key, src)
            else:
                self.lineage.remove(key, src)
        state.count_star += sign
        for i, spec in enumerate(self.aggregates):
            if spec.arg is None:
                continue
            value = spec.arg.eval(row)
            if value is None:
                continue
            state.counts[i] += sign
            if spec.func in ("SUM", "AVG"):
                state.sums[i] += sign * value
            elif spec.func in ("MIN", "MAX"):
                vc = state.value_counts[i]
                if vc is None:
                    vc = Counter()
                    state.value_counts[i] = vc
                vc[value] += sign
                if vc[value] <= 0:
                    del vc[value]
        if state.count_star < 0:
            raise ViewError(
                f"aggregate view {self.name!r}: group {key!r} count underflow"
            )
        if state.count_star == 0:
            del self.groups[key]

    def apply_group_rows(self, key: tuple[Any, ...], rows: Sequence[Row], sign: int) -> None:
        """Fold a batch of same-group base rows in (+1) or out (-1).

        Equivalent to calling :meth:`apply_row` once per row in order:
        per-slot accumulation stays a left fold in row order, so float SUM
        rounding and MIN/MAX multiset contents match the per-row path
        exactly.
        """
        if not rows:
            return
        state = self.groups.get(key)
        if state is None:
            if sign < 0:
                raise ViewError(
                    f"aggregate view {self.name!r}: deleting from unknown group {key!r}"
                )
            state = _GroupState(len(self.aggregates))
            self.groups[key] = state
        if self.lineage is not None:
            srcs = [(self.table, row.get(TID)) for row in rows]
            if sign > 0:
                self.lineage.add(key, srcs)
            else:
                self.lineage.remove(key, srcs)
        state.count_star += sign * len(rows)
        first = rows[0]
        for i, spec in enumerate(self.aggregates):
            arg = spec.arg
            if arg is None:
                continue
            if isinstance(arg, ColumnRef) and arg.name in first:
                name = arg.name
                values = [v for row in rows if (v := row[name]) is not None]
            else:
                values = [v for row in rows if (v := arg.eval(row)) is not None]
            if not values:
                continue
            state.counts[i] += sign * len(values)
            if spec.func in ("SUM", "AVG"):
                if sign > 0:
                    # Left fold from the current total -- same float
                    # rounding as per-row ``sums[i] += value``.
                    state.sums[i] = sum(values, state.sums[i])
                else:
                    total = state.sums[i]
                    for value in values:
                        total -= value
                    state.sums[i] = total
            elif spec.func in ("MIN", "MAX"):
                vc = state.value_counts[i]
                if vc is None:
                    vc = Counter()
                    state.value_counts[i] = vc
                if sign > 0:
                    vc.update(values)
                else:
                    vc.subtract(values)
                    for value in set(values):
                        if vc[value] <= 0:
                            del vc[value]
        if state.count_star < 0:
            raise ViewError(
                f"aggregate view {self.name!r}: group {key!r} count underflow"
            )
        if state.count_star == 0:
            del self.groups[key]

    def recompute(self, database: Any) -> None:
        self.groups.clear()
        if self.lineage is not None:
            self.lineage.clear()
        for row in database.table(self.table).rows():
            if evaluate_predicate(self.where, row):
                self.apply_row(row, +1)

    def _lineage_key(self, row: Row) -> Any:
        return tuple(row[g] for g in self.group_by)

    def rows(self) -> list[Row]:
        out: list[Row] = []
        for key, state in self.groups.items():
            row: Row = dict(zip(self.group_by, key))
            for i, spec in enumerate(self.aggregates):
                row[spec.name] = self._result(state, i, spec)
            out.append(row)
        return out

    def _result(self, state: _GroupState, i: int, spec: AggSpec) -> Any:
        if spec.func == "COUNT":
            return state.count_star if spec.arg is None else state.counts[i]
        if state.counts[i] == 0:
            return None
        if spec.func == "SUM":
            return state.sums[i]
        if spec.func == "AVG":
            return state.sums[i] / state.counts[i]
        vc = state.value_counts[i]
        assert vc is not None
        return min(vc) if spec.func == "MIN" else max(vc)

    def group(self, *key: Any) -> Row | None:
        """Result row for one group key, or None if the group is empty."""
        state = self.groups.get(tuple(key))
        if state is None:
            return None
        row: Row = dict(zip(self.group_by, key))
        for i, spec in enumerate(self.aggregates):
            row[spec.name] = self._result(state, i, spec)
        return row

    def __len__(self) -> int:
        return len(self.groups)
