"""Incremental view maintenance (Gupta-Mumick counting algorithm).

Public surface::

    from repro.ivm import ViewRegistry, SelectProjectView, JoinView, AggregateView, Delta

    registry = ViewRegistry(db)
    view = registry.register(AggregateView(
        "votes_by_state", "votes", group_by=["state"],
        aggregates=[AggSpec("SUM", col("count"), "total")],
    ))
    # ... inserts into `votes` now maintain the view automatically.
"""

from .delta import Delta, row_key
from .maintenance import apply_delta
from .registry import ViewRegistry, ViewStats
from .view import AggregateView, JoinView, SelectProjectView, ViewDefinition

__all__ = [
    "AggregateView",
    "Delta",
    "JoinView",
    "SelectProjectView",
    "ViewDefinition",
    "ViewRegistry",
    "ViewStats",
    "apply_delta",
    "row_key",
]
