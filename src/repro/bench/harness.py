"""Benchmark harness: timing, result tables, and shape checks.

The paper's evaluation reports per-step times against growing input sizes
(Figure 8) and convergence behavior (Section VII-B).  This module gives
every bench the same vocabulary: a :class:`Timer`, a :class:`SeriesTable`
that prints paper-style rows, and regression helpers asserting the
*shape* of results (linearity, dominance, speedups) rather than absolute
numbers.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Sequence

import numpy as np


class Timer:
    """Context manager measuring wall-clock milliseconds."""

    def __init__(self) -> None:
        self.ms = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.ms = (time.perf_counter() - self._start) * 1000.0


def time_ms(fn: Callable[[], Any]) -> tuple[float, Any]:
    """Run ``fn`` once; return (elapsed_ms, result)."""
    start = time.perf_counter()
    result = fn()
    return (time.perf_counter() - start) * 1000.0, result


@dataclass
class SeriesTable:
    """A result table: one row per x-value, one column per series.

    Mirrors how Figure 8 presents results ("the times we measured for
    these five steps are shown... for different numbers of inserted data
    tuples").
    """

    x_label: str
    series_names: list[str]
    rows: list[tuple[float, dict[str, float]]] = field(default_factory=list)

    def add(self, x: float, values: dict[str, float]) -> None:
        missing = set(self.series_names) - set(values)
        if missing:
            raise ValueError(f"missing series values: {sorted(missing)}")
        self.rows.append((x, dict(values)))

    def series(self, name: str) -> list[float]:
        return [values[name] for _x, values in self.rows]

    def xs(self) -> list[float]:
        return [x for x, _values in self.rows]

    def format(self, unit: str = "ms", width: int = 12) -> str:
        header = [self.x_label.rjust(width)] + [
            name[: width - 1].rjust(width) for name in self.series_names
        ]
        lines = ["".join(header)]
        for x, values in self.rows:
            cells = [f"{x:>{width}.0f}"]
            for name in self.series_names:
                cells.append(f"{values[name]:>{width}.3f}")
            lines.append("".join(cells))
        lines.append(f"(values in {unit})")
        return "\n".join(lines)

    def print(self, title: str = "", unit: str = "ms") -> None:
        if title:
            print(f"\n== {title} ==")
        print(self.format(unit=unit))

    # ------------------------------------------------------------------
    # Machine-readable output
    def as_json(self) -> dict[str, Any]:
        """The table as a JSON-ready dict (rows keep series order)."""
        return {
            "x_label": self.x_label,
            "series": list(self.series_names),
            "rows": [
                {"x": x, "values": {n: values[n] for n in self.series_names}}
                for x, values in self.rows
            ],
        }

    def write_json(
        self,
        path: str | Path,
        name: str,
        unit: str = "ms",
        extra: Optional[dict[str, Any]] = None,
    ) -> dict[str, Any]:
        """Write the table as a ``BENCH_<name>.json``-style payload.

        ``extra`` merges additional metadata (e.g. git revision) into the
        payload; returns the payload for further use.
        """
        payload: dict[str, Any] = {"name": name, "unit": unit}
        payload.update(self.as_json())
        if extra:
            payload.update(extra)
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
        return payload


# ---------------------------------------------------------------------------
# Shape checks


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float, float]:
    """Least-squares line fit; returns (slope, intercept, r_squared)."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if len(x) < 2:
        raise ValueError("need at least two points for a fit")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return float(slope), float(intercept), r_squared


def is_roughly_linear(
    xs: Sequence[float], ys: Sequence[float], min_r_squared: float = 0.9
) -> bool:
    """Does y grow linearly in x?  (Figure 8's claim.)

    Timing noise on small inputs is tolerated by requiring a decent fit,
    not a perfect one.
    """
    _slope, _intercept, r_squared = linear_fit(xs, ys)
    return r_squared >= min_r_squared


def dominance_ratio(
    table: SeriesTable, dominant: str, others: Iterable[str]
) -> float:
    """How strongly one series dominates: min over rows of
    dominant / max(others)."""
    ratios = []
    for _x, values in table.rows:
        other_max = max(values[name] for name in others)
        if other_max <= 0:
            continue
        ratios.append(values[dominant] / other_max)
    if not ratios:
        raise ValueError("no comparable rows")
    return min(ratios)


def speedup(baseline: float, improved: float) -> float:
    """baseline / improved (guarding zero)."""
    if improved <= 0:
        return float("inf")
    return baseline / improved


@dataclass
class ExperimentRecord:
    """One paper-vs-measured record for EXPERIMENTS.md."""

    experiment: str
    paper_claim: str
    measured: str
    holds: bool

    def format(self) -> str:
        status = "HOLDS" if self.holds else "DIVERGES"
        return (
            f"[{status}] {self.experiment}\n"
            f"    paper:    {self.paper_claim}\n"
            f"    measured: {self.measured}"
        )
