"""Benchmark harness: timing, result tables, and the Figure-8 pipeline."""

from .harness import (
    ExperimentRecord,
    SeriesTable,
    Timer,
    dominance_ratio,
    is_roughly_linear,
    linear_fit,
    speedup,
    time_ms,
)
from .pipeline import FIG8_SERIES, BatchTiming, InsertPipeline

__all__ = [
    "BatchTiming",
    "ExperimentRecord",
    "FIG8_SERIES",
    "InsertPipeline",
    "SeriesTable",
    "Timer",
    "dominance_ratio",
    "is_roughly_linear",
    "linear_fit",
    "speedup",
    "time_ms",
]
