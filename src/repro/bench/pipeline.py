"""The Figure-8 insert pipeline, instrumented end to end.

The paper's robustness experiment (Section VII-C): "the DBMS is connected
to two EdiFlow instances running on two machines.  The first EdiFlow
machine computes visual attributes, while the second extracts nodes from
VisualAttributes table and displays the graph."  Inserting tuples
performs five measured steps:

1. Parsing the message involved after insertion in the nodes table
   (protocol step 7, on the first machine);
2. Inserting the resulting tuples in the VisualAttributes table;
3. Parsing the message involved after insertion in VisualAttributes
   (protocol step 9, on all display machines);
4. Extracting the visual attributes of the new nodes (a select);
5. Inserting the new nodes into the display screen.

:class:`InsertPipeline` reproduces the deployment with two sync clients
(the "machines") over loopback sockets or the in-process transport, and
:meth:`run_batch` returns the per-step times for one batch of tuples.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Optional

from ..core import datamodel
from ..db.database import Database
from ..db.schema import Column
from ..db.types import INTEGER, TEXT
from ..sync.client import SyncClient
from ..sync.notification import NotificationCenter
from ..sync.server import SyncServer
from ..vis.attributes import VisualAttributesStore, VisualItem
from ..vis.display import Display

T_NODES = "pipeline_author"

#: The six series of Figure 8, in the paper's legend order.
FIG8_SERIES = (
    "parse_author_msg",
    "insert_visualattrs",
    "parse_visattr_msg",
    "extract_new_nodes",
    "insert_into_display",
    "total",
)


@dataclass
class BatchTiming:
    """Per-step times (ms) for one inserted batch."""

    batch_size: int
    parse_author_msg: float
    insert_visualattrs: float
    parse_visattr_msg: float
    extract_new_nodes: float
    insert_into_display: float

    @property
    def total(self) -> float:
        return (
            self.parse_author_msg
            + self.insert_visualattrs
            + self.parse_visattr_msg
            + self.extract_new_nodes
            + self.insert_into_display
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "parse_author_msg": self.parse_author_msg,
            "insert_visualattrs": self.insert_visualattrs,
            "parse_visattr_msg": self.parse_visattr_msg,
            "extract_new_nodes": self.extract_new_nodes,
            "insert_into_display": self.insert_into_display,
            "total": self.total,
        }


class InsertPipeline:
    """Two-machine notification pipeline over one database."""

    def __init__(
        self,
        database: Optional[Database] = None,
        use_sockets: bool = True,
        seed: int = 5,
        component_id: int = 1,
    ) -> None:
        self.database = database or Database("fig8")
        self.rng = random.Random(seed)
        datamodel.install_core_schema(self.database)
        if not self.database.has_table(T_NODES):
            self.database.create_table(
                T_NODES,
                [
                    Column("id", INTEGER, nullable=False),
                    Column("name", TEXT, nullable=False),
                ],
                primary_key="id",
            )
        self.center = NotificationCenter(self.database)
        self.server = SyncServer(self.database, self.center, use_sockets=use_sockets)
        self.store = VisualAttributesStore(self.database)
        self.component_id = component_id
        # Machine 1: computes visual attributes from author changes.
        self.machine1 = SyncClient(self.server)
        self.machine1_nodes = self.machine1.mirror(T_NODES)
        # Machine 2: extracts VisualAttributes rows and displays them.
        self.machine2 = SyncClient(self.server)
        self.machine2_attrs = self.machine2.mirror(datamodel.T_VISUAL_ATTRIBUTES)
        self.display = Display("machine2")
        self._next_node_id = 1

    # ------------------------------------------------------------------
    def _wait_dirty(self, client: SyncClient, table: str) -> float:
        """Time (ms) until the NOTIFY for ``table`` is received and parsed."""
        start = time.perf_counter()
        if self.server.use_sockets:
            if not client.wait_dirty(table, timeout=10.0):
                raise TimeoutError(f"no NOTIFY for {table!r} within 10s")
        return (time.perf_counter() - start) * 1000.0

    def run_batch(self, batch_size: int) -> BatchTiming:
        """Insert ``batch_size`` author tuples and time all five steps."""
        rows = []
        for _ in range(batch_size):
            rows.append({"id": self._next_node_id, "name": f"node-{self._next_node_id}"})
            self._next_node_id += 1
        # The stimulus (not one of the measured steps): the batch lands in
        # the nodes table as one statement -> one notification.
        self.database.insert_many(T_NODES, rows)

        # Step 1: machine 1 receives + parses the author-change message.
        t1 = self._wait_dirty(self.machine1, T_NODES)
        start = time.perf_counter()
        self.machine1.refresh(T_NODES)
        t1 += (time.perf_counter() - start) * 1000.0
        new_nodes = [r for r in rows]

        # Step 2: compute + insert the visual attributes (the layout
        # stand-in assigns positions; the dominant cost is the DB write).
        start = time.perf_counter()
        items = [
            VisualItem(
                obj_id=row["id"],
                x=self.rng.uniform(0, 800),
                y=self.rng.uniform(0, 600),
                color="#4e79a7",
                label=row["name"],
            )
            for row in new_nodes
        ]
        self.store.write(self.component_id, items)
        t2 = (time.perf_counter() - start) * 1000.0

        # Step 3: machine 2 receives + parses the VisualAttributes message.
        t3 = self._wait_dirty(self.machine2, datamodel.T_VISUAL_ATTRIBUTES)

        # Step 4: extract the new rows (the select).  Only the changed
        # tids are pulled -- cost proportional to the batch, not to the
        # accumulated table (the property behind Figure 8's linearity).
        start = time.perf_counter()
        _newest, changed = self.center.changes_since(
            datamodel.T_VISUAL_ATTRIBUTES, self.machine2_attrs.last_seq_no
        )
        self.machine2.refresh(datamodel.T_VISUAL_ATTRIBUTES)
        fresh_rows = []
        seen_tids = set()
        for tid, op in changed:
            if op == "delete" or tid in seen_tids:
                continue
            seen_tids.add(tid)
            row = self.machine2_attrs.get(tid)
            if row is not None and row["component_id"] == self.component_id:
                fresh_rows.append(row)
        t4 = (time.perf_counter() - start) * 1000.0

        # Step 5: insert the new nodes into the display.
        start = time.perf_counter()
        self.display.apply_rows(fresh_rows)
        self.display.refresh()
        t5 = (time.perf_counter() - start) * 1000.0

        # Housekeeping outside the measured steps: purge consumed
        # notifications (protocol step 11) so the change log stays small.
        self.server.purge_notifications()

        return BatchTiming(
            batch_size=batch_size,
            parse_author_msg=t1,
            insert_visualattrs=t2,
            parse_visattr_msg=t3,
            extract_new_nodes=t4,
            insert_into_display=t5,
        )

    def close(self) -> None:
        self.machine1.close()
        self.machine2.close()
        self.server.close()
