"""repro: a full reproduction of EdiFlow (ICDE 2011).

EdiFlow is a workflow platform for visual analytics backed by a
persistent DBMS.  This package rebuilds the entire system in Python:

- ``repro.db``        embedded relational engine (SQL subset, triggers)
- ``repro.ivm``       incremental view maintenance
- ``repro.core``      EdiFlow data model + assembled platform facade
- ``repro.workflow``  process model, enactment, update propagation,
                      isolation
- ``repro.sync``      DBMS <-> visualization notification protocol
- ``repro.vis``       headless visualization toolkit + LinLog layout
- ``repro.apps``      the paper's three applications
- ``repro.bench``     workload + reporting harness for the evaluation

Quickstart::

    from repro import EdiFlow
    platform = EdiFlow()
    platform.execute("CREATE TABLE points (id INTEGER PRIMARY KEY, x FLOAT)")
"""

from .core.platform import EdiFlow
from .db.database import Database

__version__ = "1.0.0"

__all__ = ["Database", "EdiFlow", "__version__"]
