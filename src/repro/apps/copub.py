"""The INRIA co-publications application (Section III-c, Section VII).

"We used a dataset of co-publications between INRIA researchers... about
4500 nodes and edges.  The goal is to compute the attributes of each node
and edge, display the graph over one or several screens and update it as
the underlying data changes."

The paper's dataset is not public, so :class:`CopublicationGenerator`
produces a synthetic equivalent: researchers spread over teams and
research centres, publications drawn with team-biased author sets and
preferential attachment -- yielding the clustered, heavy-tailed
co-authorship structure LinLog is good at (Figure 7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..db.database import Database
from ..db.schema import Column
from ..db.types import INTEGER, TEXT
from ..vis.layout.graph import Graph

T_AUTHOR = "copub_author"
T_PUBLICATION = "copub_publication"
T_AUTHORSHIP = "copub_authorship"
T_EDGE = "copub_edge"

RESEARCH_CENTERS = (
    "Saclay", "Rocquencourt", "Sophia", "Grenoble", "Rennes", "Bordeaux",
    "Lille", "Nancy",
)


def install_schema(database: Database) -> None:
    """Create the co-publication entity tables (idempotent)."""
    if not database.has_table(T_AUTHOR):
        database.create_table(
            T_AUTHOR,
            [
                Column("id", INTEGER, nullable=False),
                Column("name", TEXT, nullable=False),
                Column("team", TEXT, nullable=False),
                Column("center", TEXT, nullable=False),
            ],
            primary_key="id",
        )
    if not database.has_table(T_PUBLICATION):
        database.create_table(
            T_PUBLICATION,
            [
                Column("id", INTEGER, nullable=False),
                Column("year", INTEGER, nullable=False),
                Column("title", TEXT),
            ],
            primary_key="id",
        )
    if not database.has_table(T_AUTHORSHIP):
        database.create_table(
            T_AUTHORSHIP,
            [
                Column("publication_id", INTEGER, nullable=False),
                Column("author_id", INTEGER, nullable=False),
            ],
        )
    if not database.has_table(T_EDGE):
        database.create_table(
            T_EDGE,
            [
                Column("source", INTEGER, nullable=False),
                Column("target", INTEGER, nullable=False),
                Column("weight", INTEGER, nullable=False, default=1),
            ],
        )


@dataclass
class Publication:
    """One publication event: id, year, and its author ids."""

    publication_id: int
    year: int
    authors: tuple[int, ...]


class CopublicationGenerator:
    """Synthetic INRIA-like co-authorship network.

    Parameters are sized so defaults approximate the paper's dataset
    (~4,500 researchers).  Publications draw 2-5 authors, mostly from one
    team, with preferential attachment toward productive authors.
    """

    def __init__(
        self,
        n_authors: int = 4500,
        n_teams: int = 180,
        seed: int = 31,
    ) -> None:
        self.rng = random.Random(seed)
        self.n_authors = n_authors
        self.n_teams = n_teams
        self.teams = [f"team-{i:03d}" for i in range(n_teams)]
        self.authors = [
            {
                "id": i + 1,
                "name": f"Researcher {i + 1}",
                "team": self.teams[i % n_teams],
                "center": RESEARCH_CENTERS[i % len(RESEARCH_CENTERS)],
            }
            for i in range(n_authors)
        ]
        self._by_team: dict[str, list[int]] = {}
        for author in self.authors:
            self._by_team.setdefault(author["team"], []).append(author["id"])
        self._productivity = [1.0] * (n_authors + 1)  # 1-indexed
        self._next_publication = 1

    def publications(self, start_year: int = 2005, end_year: int = 2010) -> Iterator[Publication]:
        """Infinite stream of publications across the year range."""
        while True:
            team = self.rng.choice(self.teams)
            members = self._by_team[team]
            k = min(len(members), self.rng.randint(2, 5))
            weights = [self._productivity[a] for a in members]
            authors = set()
            guard = 0
            while len(authors) < k and guard < 50:
                authors.add(self.rng.choices(members, weights=weights, k=1)[0])
                guard += 1
            # Occasionally a cross-team collaborator (the inter-cluster
            # edges that make the layout interesting).
            if self.rng.random() < 0.25:
                other = self.rng.randint(1, self.n_authors)
                authors.add(other)
            for author in authors:
                self._productivity[author] += 1.0
            publication = Publication(
                publication_id=self._next_publication,
                year=self.rng.randint(start_year, end_year),
                authors=tuple(sorted(authors)),
            )
            self._next_publication += 1
            yield publication

    def take(self, count: int) -> list[Publication]:
        stream = self.publications()
        return [next(stream) for _ in range(count)]


def load_into_database(
    database: Database,
    generator: CopublicationGenerator,
    n_publications: int,
) -> list[Publication]:
    """Populate the entity tables with authors and publications."""
    install_schema(database)
    database.insert_many(T_AUTHOR, generator.authors)
    publications = generator.take(n_publications)
    pub_rows = []
    authorship_rows = []
    for pub in publications:
        pub_rows.append(
            {
                "id": pub.publication_id,
                "year": pub.year,
                "title": f"Publication {pub.publication_id}",
            }
        )
        for author in pub.authors:
            authorship_rows.append(
                {"publication_id": pub.publication_id, "author_id": author}
            )
    database.insert_many(T_PUBLICATION, pub_rows)
    database.insert_many(T_AUTHORSHIP, authorship_rows)
    refresh_edges(database)
    return publications


def refresh_edges(database: Database) -> int:
    """(Re)compute the co-authorship edge table from authorships."""
    pairs: dict[tuple[int, int], int] = {}
    by_publication: dict[int, list[int]] = {}
    for row in database.table(T_AUTHORSHIP).scan():
        by_publication.setdefault(row["publication_id"], []).append(row["author_id"])
    for authors in by_publication.values():
        authors = sorted(set(authors))
        for i, u in enumerate(authors):
            for v in authors[i + 1 :]:
                pairs[(u, v)] = pairs.get((u, v), 0) + 1
    database.delete(T_EDGE)
    database.insert_many(
        T_EDGE,
        [
            {"source": u, "target": v, "weight": w}
            for (u, v), w in sorted(pairs.items())
        ],
    )
    return len(pairs)


def build_graph(
    publications: Sequence[Publication], graph: Optional[Graph] = None
) -> Graph:
    """Fold publications into a co-authorship :class:`Graph`.

    Passing an existing graph applies the publications incrementally --
    the delta path of the layout handler experiment.
    """
    graph = graph if graph is not None else Graph()
    for pub in publications:
        authors = sorted(set(pub.authors))
        for node in authors:
            graph.add_node(node)
        for i, u in enumerate(authors):
            for v in authors[i + 1 :]:
                current = graph.neighbors(u).get(v, 0.0)
                graph.add_edge(u, v, current + 1.0)
    return graph


def graph_from_database(database: Database) -> Graph:
    """Build the layout graph from the stored edge table."""
    graph = Graph()
    for row in database.table(T_EDGE).scan():
        graph.add_edge(row["source"], row["target"], float(row["weight"]))
    return graph


def connected_authors(graph: Graph) -> int:
    """Number of non-isolated authors (what Figure 7 actually shows)."""
    return sum(1 for node in graph.nodes() if graph.degree(node) > 0)
