"""The INRIA activity-reports application (Section III-c).

"The data are collected from Raweb (INRIA's legacy collection of
activity reports)... the report of each team from each year is a
separate XML file; new files are added as teams produce new annual
reports.  Our goal was to build a self-maintained application which,
once deployed, would automatically and incrementally re-compute
statistics, as needed."

This module provides:

* :class:`ReportGenerator` -- synthetic Raweb-like XML files (team,
  year, members with ages and *noisy name variants*, publication
  counts);
* :func:`parse_report` / :class:`ReportIngestor` -- XML -> relational
  ingestion with similarity-based entity resolution (the "external
  code" of the paper: is this member already in the database?);
* statistics helpers (age / team / research-centre distributions as SQL)
  and an EdiFlow process definition that recomputes them incrementally
  when new report files arrive.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator
from xml.etree import ElementTree as ET

from ..db.database import Database
from ..db.schema import Column
from ..db.types import FLOAT, INTEGER, TEXT
from ..errors import SpecificationError
from .similarity import PersonMatcher

T_REPORT = "raweb_report"
T_TEAM = "raweb_team"
T_MEMBER = "raweb_member"
T_MEMBERSHIP = "raweb_membership"
T_STATS = "raweb_stats"

_FIRST = (
    "Jean", "Marie", "Pierre", "Sophie", "Luc", "Anne", "Paul", "Claire",
    "Hugo", "Emma", "Louis", "Alice", "Jules", "Lea", "Victor", "Nina",
)
_LAST = (
    "Martin", "Bernard", "Dubois", "Thomas", "Robert", "Richard", "Petit",
    "Durand", "Leroy", "Moreau", "Simon", "Laurent", "Lefebvre", "Michel",
)
CENTERS = ("Saclay", "Rocquencourt", "Sophia", "Grenoble", "Rennes")


def install_schema(database: Database) -> None:
    """Create the activity-report tables (idempotent)."""
    if not database.has_table(T_TEAM):
        database.create_table(
            T_TEAM,
            [
                Column("id", INTEGER, nullable=False),
                Column("name", TEXT, nullable=False),
                Column("center", TEXT, nullable=False),
            ],
            primary_key="id",
            unique=["name"],
        )
    if not database.has_table(T_REPORT):
        database.create_table(
            T_REPORT,
            [
                Column("id", INTEGER, nullable=False),
                Column("team_id", INTEGER, nullable=False),
                Column("year", INTEGER, nullable=False),
                Column("publications", INTEGER, nullable=False, default=0),
            ],
            primary_key="id",
        )
    if not database.has_table(T_MEMBER):
        database.create_table(
            T_MEMBER,
            [
                Column("id", INTEGER, nullable=False),
                Column("name", TEXT, nullable=False),
                Column("birth_year", INTEGER),
            ],
            primary_key="id",
        )
    if not database.has_table(T_MEMBERSHIP):
        database.create_table(
            T_MEMBERSHIP,
            [
                Column("report_id", INTEGER, nullable=False),
                Column("member_id", INTEGER, nullable=False),
                Column("role", TEXT),
            ],
        )
    if not database.has_table(T_STATS):
        database.create_table(
            T_STATS,
            [
                Column("stat", TEXT, nullable=False),
                Column("key", TEXT, nullable=False),
                Column("value", FLOAT, nullable=False),
            ],
        )


# ---------------------------------------------------------------------------
# Synthetic Raweb-like XML


@dataclass
class MemberRecord:
    name: str
    birth_year: int
    role: str


@dataclass
class TeamYearReport:
    team: str
    center: str
    year: int
    publications: int
    members: list[MemberRecord]


class ReportGenerator:
    """Generates one XML activity report per (team, year).

    Member names are deliberately noisy across years -- initials,
    swapped orders, stray hyphens -- so that ingestion must do entity
    resolution, exactly the paper's challenge.
    """

    def __init__(self, n_teams: int = 12, seed: int = 2005) -> None:
        self.rng = random.Random(seed)
        self.teams = [
            (f"team-{chr(ord('a') + i)}", CENTERS[i % len(CENTERS)])
            for i in range(n_teams)
        ]
        # A stable roster per team; reports sample and perturb it.
        self._rosters: dict[str, list[MemberRecord]] = {}
        for team, _center in self.teams:
            roster = []
            for _ in range(self.rng.randint(5, 12)):
                name = f"{self.rng.choice(_FIRST)} {self.rng.choice(_LAST)}"
                roster.append(
                    MemberRecord(
                        name=name,
                        birth_year=self.rng.randint(1950, 1990),
                        role=self.rng.choice(
                            ("researcher", "phd", "engineer", "postdoc")
                        ),
                    )
                )
            self._rosters[team] = roster

    def _noisy_name(self, name: str) -> str:
        """A report-specific rendering of a person's name."""
        first, last = name.split(" ", 1)
        style = self.rng.random()
        if style < 0.25:
            return f"{first[0]}. {last}"        # initials
        if style < 0.40:
            return f"{last}, {first}"            # inverted
        if style < 0.50:
            return name.upper()                  # shouting legacy export
        return name

    def reports(self, start_year: int = 2005, end_year: int = 2008) -> Iterator[TeamYearReport]:
        """One report per (team, year), years in order."""
        for year in range(start_year, end_year + 1):
            for team, center in self.teams:
                roster = self._rosters[team]
                size = self.rng.randint(max(3, len(roster) - 3), len(roster))
                sampled = self.rng.sample(roster, size)
                members = [
                    MemberRecord(
                        name=self._noisy_name(m.name),
                        birth_year=m.birth_year,
                        role=m.role,
                    )
                    for m in sampled
                ]
                yield TeamYearReport(
                    team=team,
                    center=center,
                    year=year,
                    publications=self.rng.randint(3, 40),
                    members=members,
                )

    def to_xml(self, report: TeamYearReport) -> str:
        root = ET.Element(
            "raweb",
            {"team": report.team, "center": report.center, "year": str(report.year)},
        )
        ET.SubElement(root, "publications", {"count": str(report.publications)})
        members_el = ET.SubElement(root, "members")
        for member in report.members:
            ET.SubElement(
                members_el,
                "member",
                {
                    "name": member.name,
                    "birthYear": str(member.birth_year),
                    "role": member.role,
                },
            )
        ET.indent(root)
        return ET.tostring(root, encoding="unicode")


def parse_report(xml_text: str) -> TeamYearReport:
    """Parse one Raweb-like XML document."""
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise SpecificationError(f"invalid report XML: {exc}") from None
    if root.tag != "raweb":
        raise SpecificationError(f"expected <raweb>, found <{root.tag}>")
    team = root.get("team")
    year = root.get("year")
    if not team or not year:
        raise SpecificationError("<raweb> needs team and year attributes")
    pubs_el = root.find("publications")
    publications = int(pubs_el.get("count", "0")) if pubs_el is not None else 0
    members = []
    members_el = root.find("members")
    if members_el is not None:
        for member_el in members_el.findall("member"):
            name = member_el.get("name")
            if not name:
                raise SpecificationError("<member> needs a name")
            birth = member_el.get("birthYear")
            members.append(
                MemberRecord(
                    name=name,
                    birth_year=int(birth) if birth else 0,
                    role=member_el.get("role", ""),
                )
            )
    return TeamYearReport(
        team=team,
        center=root.get("center", ""),
        year=int(year),
        publications=publications,
        members=members,
    )


# ---------------------------------------------------------------------------
# Ingestion with entity resolution


class ReportIngestor:
    """Loads reports into the database, resolving member identities.

    The matcher decides, per mention, "whether an employee is already
    present in the database or needs to be added" (Section III-c).
    """

    def __init__(self, database: Database, threshold: float = 0.88) -> None:
        self.database = database
        install_schema(database)
        self.matcher = PersonMatcher(threshold=threshold)
        self._team_ids: dict[str, int] = {
            row["name"]: row["id"] for row in database.table(T_TEAM).scan()
        }
        self._next_team = max(self._team_ids.values(), default=0) + 1
        self._next_report = (
            max((r["id"] for r in database.table(T_REPORT).scan()), default=0) + 1
        )
        self._stored_members: set[int] = {
            row["id"] for row in database.table(T_MEMBER).scan()
        }
        self.reports_ingested = 0

    def ingest_xml(self, xml_text: str) -> int:
        return self.ingest(parse_report(xml_text))

    def ingest(self, report: TeamYearReport) -> int:
        """Load one report; returns its report id."""
        team_id = self._team_ids.get(report.team)
        if team_id is None:
            team_id = self._next_team
            self._next_team += 1
            self.database.insert(
                T_TEAM,
                {"id": team_id, "name": report.team, "center": report.center},
            )
            self._team_ids[report.team] = team_id
        report_id = self._next_report
        self._next_report += 1
        self.database.insert(
            T_REPORT,
            {
                "id": report_id,
                "team_id": team_id,
                "year": report.year,
                "publications": report.publications,
            },
        )
        memberships = []
        for member in report.members:
            person_id = self.matcher.resolve(member.name)
            if person_id not in self._stored_members:
                self.database.insert(
                    T_MEMBER,
                    {
                        "id": person_id,
                        "name": self.matcher.name_of(person_id),
                        "birth_year": member.birth_year or None,
                    },
                )
                self._stored_members.add(person_id)
            memberships.append(
                {
                    "report_id": report_id,
                    "member_id": person_id,
                    "role": member.role,
                }
            )
        if memberships:
            self.database.insert_many(T_MEMBERSHIP, memberships)
        self.reports_ingested += 1
        return report_id


# ---------------------------------------------------------------------------
# Statistics ("simple statistics were then computed by means of SQL queries")


def compute_statistics(database: Database, as_of_year: int = 2024) -> dict[str, dict[str, float]]:
    """Age / team-size / centre / publication statistics via SQL.

    Results are both returned and materialized into ``raweb_stats`` so
    the visualization layer can mirror them.
    """
    stats: dict[str, dict[str, float]] = {}

    center_rows = database.query(
        f"SELECT t.center AS center, COUNT(*) AS n "
        f"FROM {T_REPORT} r JOIN {T_TEAM} t ON r.team_id = t.id "
        "GROUP BY t.center ORDER BY t.center"
    )
    stats["reports_by_center"] = {r["center"]: float(r["n"]) for r in center_rows}

    pub_rows = database.query(
        f"SELECT t.name AS team, SUM(r.publications) AS pubs "
        f"FROM {T_REPORT} r JOIN {T_TEAM} t ON r.team_id = t.id "
        "GROUP BY t.name ORDER BY t.name"
    )
    stats["publications_by_team"] = {r["team"]: float(r["pubs"]) for r in pub_rows}

    member_rows = database.query(
        f"SELECT t.name AS team, COUNT(DISTINCT m.member_id) AS members "
        f"FROM {T_MEMBERSHIP} m "
        f"JOIN {T_REPORT} r ON m.report_id = r.id "
        f"JOIN {T_TEAM} t ON r.team_id = t.id "
        "GROUP BY t.name ORDER BY t.name"
    )
    stats["members_by_team"] = {r["team"]: float(r["members"]) for r in member_rows}

    age_rows = database.query(
        f"SELECT birth_year FROM {T_MEMBER} WHERE birth_year IS NOT NULL"
    )
    buckets: dict[str, float] = {}
    for row in age_rows:
        age = as_of_year - row["birth_year"]
        bucket = f"{(age // 10) * 10}s"
        buckets[bucket] = buckets.get(bucket, 0.0) + 1.0
    stats["age_distribution"] = dict(sorted(buckets.items()))

    database.delete(T_STATS)
    rows = []
    for stat, values in stats.items():
        for key, value in values.items():
            rows.append({"stat": stat, "key": str(key), "value": value})
    if rows:
        database.insert_many(T_STATS, rows)
    return stats
