"""The Wikipedia application (Section III-b, Figure 2).

Four elementary tasks, straight from the paper:

(i)   compute the differences between successive versions of each article;
(ii)  compute a contribution table storing, at each token index, the
      identifier of the user who entered it;
(iii) for each article, compute the number of distinct effective
      contributors;
(iv)  compute the total contribution (over all contribution tables) of
      each user -- including the *durability* metric: characters remaining
      in the latest version divided by characters inserted.

"A total recomputation of the aggregation is out of reach, because change
frequency is too high... updates received at a given moment only affect a
tiny part of the database" -- so the analyzer maintains all metrics
incrementally, one revision at a time; a full-recompute path exists for
verification and for the IVM-vs-recompute ablation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..db.database import Database
from ..db.expression import col
from ..db.schema import Column
from ..db.types import FLOAT, INTEGER, TEXT
from .diff import annotate_contributions, diff_stats

T_ARTICLE = "wiki_article"
T_REVISION = "wiki_revision"
T_METRICS_ARTICLE = "wiki_article_metrics"
T_METRICS_USER = "wiki_user_metrics"

#: A tiny vocabulary; tokens stand in for characters at coarser grain.
_WORDS = (
    "data analysis visual flow process table query update view index "
    "graph node edge layout color screen page user edit article history"
).split()


def install_schema(database: Database) -> None:
    """Create the Wikipedia entity and metric tables (idempotent)."""
    if not database.has_table(T_ARTICLE):
        database.create_table(
            T_ARTICLE,
            [
                Column("id", INTEGER, nullable=False),
                Column("title", TEXT, nullable=False),
            ],
            primary_key="id",
        )
    if not database.has_table(T_REVISION):
        database.create_table(
            T_REVISION,
            [
                Column("id", INTEGER, nullable=False),
                Column("article_id", INTEGER, nullable=False),
                Column("user_id", INTEGER, nullable=False),
                Column("version", INTEGER, nullable=False),
                Column("text", TEXT, nullable=False),
            ],
            primary_key="id",
        )
    if not database.has_table(T_METRICS_ARTICLE):
        database.create_table(
            T_METRICS_ARTICLE,
            [
                Column("article_id", INTEGER, nullable=False),
                Column("versions", INTEGER, nullable=False, default=0),
                Column("contributors", INTEGER, nullable=False, default=0),
                Column("length", INTEGER, nullable=False, default=0),
                Column("churn", INTEGER, nullable=False, default=0),
            ],
            primary_key="article_id",
        )
    if not database.has_table(T_METRICS_USER):
        database.create_table(
            T_METRICS_USER,
            [
                Column("user_id", INTEGER, nullable=False),
                Column("inserted", INTEGER, nullable=False, default=0),
                Column("remaining", INTEGER, nullable=False, default=0),
                Column("edits", INTEGER, nullable=False, default=0),
                Column("durability", FLOAT),
            ],
            primary_key="user_id",
        )


@dataclass
class Revision:
    """One edit event in the synthetic stream."""

    revision_id: int
    article_id: int
    user_id: int
    version: int
    text: str


class RevisionStream:
    """Synthetic Wikipedia edit stream.

    Articles and users follow heavy-tailed popularity (a few hot pages
    and prolific editors), matching why incremental maintenance wins:
    each edit touches one article.  Edits insert, delete, and replace
    token runs.
    """

    def __init__(
        self,
        n_articles: int = 50,
        n_users: int = 30,
        seed: int = 11,
        initial_tokens: int = 60,
    ) -> None:
        self.rng = random.Random(seed)
        self.n_articles = n_articles
        self.n_users = n_users
        self.initial_tokens = initial_tokens
        self._texts: dict[int, list[str]] = {}
        self._versions: dict[int, int] = {}
        self._next_revision = 1
        # Zipf-ish weights.
        self._article_weights = [1.0 / (i + 1) for i in range(n_articles)]
        self._user_weights = [1.0 / (i + 1) ** 0.8 for i in range(n_users)]

    def _pick(self, weights: list[float]) -> int:
        return self.rng.choices(range(len(weights)), weights=weights, k=1)[0]

    def revisions(self) -> Iterator[Revision]:
        """Infinite stream of revisions (first touch creates the page)."""
        while True:
            article = self._pick(self._article_weights) + 1
            user = self._pick(self._user_weights) + 1
            tokens = self._texts.get(article)
            if tokens is None:
                tokens = [
                    self.rng.choice(_WORDS) for _ in range(self.initial_tokens)
                ]
            else:
                tokens = self._edit(list(tokens))
            self._texts[article] = tokens
            version = self._versions.get(article, 0) + 1
            self._versions[article] = version
            revision = Revision(
                revision_id=self._next_revision,
                article_id=article,
                user_id=user,
                version=version,
                text=" ".join(tokens),
            )
            self._next_revision += 1
            yield revision

    def take(self, count: int) -> list[Revision]:
        stream = self.revisions()
        return [next(stream) for _ in range(count)]

    def _edit(self, tokens: list[str]) -> list[str]:
        """Apply a few random span edits."""
        for _ in range(self.rng.randint(1, 3)):
            action = self.rng.random()
            if action < 0.5 or not tokens:
                # Insert a run.
                position = self.rng.randint(0, len(tokens))
                run = [self.rng.choice(_WORDS) for _ in range(self.rng.randint(1, 8))]
                tokens[position:position] = run
            elif action < 0.8:
                # Delete a run.
                start = self.rng.randrange(len(tokens))
                length = self.rng.randint(1, min(6, len(tokens) - start))
                del tokens[start : start + length]
            else:
                # Replace a run.
                start = self.rng.randrange(len(tokens))
                length = self.rng.randint(1, min(4, len(tokens) - start))
                tokens[start : start + length] = [
                    self.rng.choice(_WORDS) for _ in range(length)
                ]
        return tokens


@dataclass
class _ArticleState:
    """In-memory incremental state per article (the contribution table)."""

    tokens: list[str] = field(default_factory=list)
    authors: list[int] = field(default_factory=list)
    versions: int = 0
    churn: int = 0


class WikipediaAnalyzer:
    """Maintains tasks (i)-(iv) incrementally over a revision feed."""

    def __init__(self, database: Database) -> None:
        self.database = database
        install_schema(database)
        self._articles: dict[int, _ArticleState] = {}
        #: user_id -> [inserted, edits]; `remaining` is derived per flush.
        self._inserted: dict[int, int] = {}
        self._edits: dict[int, int] = {}
        self.revisions_processed = 0

    # ------------------------------------------------------------------
    def process(self, revision: Revision, store_revision: bool = True) -> None:
        """Fold one revision into all metric tables."""
        if store_revision:
            self._store(revision)
        state = self._articles.setdefault(revision.article_id, _ArticleState())
        new_tokens = revision.text.split()
        # Task (i): diff between successive versions.
        equal, inserted, deleted = diff_stats(state.tokens, new_tokens)
        # Task (ii): carry the contribution table across the edit.
        state.authors = annotate_contributions(
            state.tokens, state.authors, new_tokens, revision.user_id
        )
        state.tokens = new_tokens
        state.versions += 1
        state.churn += inserted + deleted
        self._inserted[revision.user_id] = (
            self._inserted.get(revision.user_id, 0) + inserted
        )
        self._edits[revision.user_id] = self._edits.get(revision.user_id, 0) + 1
        # Task (iii): distinct effective contributors of this article.
        contributors = len(set(state.authors)) if state.authors else 0
        self._upsert_article(
            revision.article_id,
            state.versions,
            contributors,
            len(state.tokens),
            state.churn,
        )
        self.revisions_processed += 1

    def _store(self, revision: Revision) -> None:
        if self.database.table(T_ARTICLE).by_key(revision.article_id) is None:
            self.database.insert(
                T_ARTICLE,
                {
                    "id": revision.article_id,
                    "title": f"Article {revision.article_id}",
                },
            )
        self.database.insert(
            T_REVISION,
            {
                "id": revision.revision_id,
                "article_id": revision.article_id,
                "user_id": revision.user_id,
                "version": revision.version,
                "text": revision.text,
            },
        )

    def _upsert_article(
        self, article_id: int, versions: int, contributors: int, length: int, churn: int
    ) -> None:
        values = {
            "article_id": article_id,
            "versions": versions,
            "contributors": contributors,
            "length": length,
            "churn": churn,
        }
        if self.database.table(T_METRICS_ARTICLE).by_key(article_id) is None:
            self.database.insert(T_METRICS_ARTICLE, values)
        else:
            self.database.update(
                T_METRICS_ARTICLE,
                {k: v for k, v in values.items() if k != "article_id"},
                col("article_id") == article_id,
            )

    # ------------------------------------------------------------------
    def flush_user_metrics(self) -> None:
        """Task (iv): recompute per-user remaining counts and durability.

        ``remaining`` must scan the current contribution tables (cheap:
        they live in memory); ``inserted``/``edits`` are maintained
        incrementally.  Durability follows the paper: the ratio of a
        user's surviving characters to the characters they inserted
        (the paper words it as an inverse; we store the survival ratio,
        which carries the same information and reads naturally).
        """
        remaining: dict[int, int] = {}
        for state in self._articles.values():
            for author in state.authors:
                remaining[author] = remaining.get(author, 0) + 1
        users = set(self._inserted) | set(remaining)
        for user_id in sorted(users):
            inserted = self._inserted.get(user_id, 0)
            stay = remaining.get(user_id, 0)
            durability = stay / inserted if inserted > 0 else None
            values = {
                "user_id": user_id,
                "inserted": inserted,
                "remaining": stay,
                "edits": self._edits.get(user_id, 0),
                "durability": durability,
            }
            if self.database.table(T_METRICS_USER).by_key(user_id) is None:
                self.database.insert(T_METRICS_USER, values)
            else:
                self.database.update(
                    T_METRICS_USER,
                    {k: v for k, v in values.items() if k != "user_id"},
                    col("user_id") == user_id,
                )

    # ------------------------------------------------------------------
    def recompute_all(self) -> None:
        """Full recomputation from the stored revision log.

        The path the paper says is "out of reach" at Wikipedia scale;
        kept for verification (incremental must match) and the A1
        ablation bench.
        """
        self._articles.clear()
        self._inserted.clear()
        self._edits.clear()
        self.revisions_processed = 0
        self.database.delete(T_METRICS_ARTICLE)
        self.database.delete(T_METRICS_USER)
        revisions = sorted(
            self.database.table(T_REVISION).rows(),
            key=lambda r: (r["article_id"], r["version"]),
        )
        # Global order must follow revision ids for user counters.
        revisions.sort(key=lambda r: r["id"])
        for row in revisions:
            self.process(
                Revision(
                    revision_id=row["id"],
                    article_id=row["article_id"],
                    user_id=row["user_id"],
                    version=row["version"],
                    text=row["text"],
                ),
                store_revision=False,
            )
        self.flush_user_metrics()

    # ------------------------------------------------------------------
    def article_metrics(self) -> list[dict[str, Any]]:
        return [dict(r) for r in self.database.table(T_METRICS_ARTICLE).rows()]

    def user_metrics(self) -> list[dict[str, Any]]:
        return [dict(r) for r in self.database.table(T_METRICS_USER).rows()]

    def contribution_table(self, article_id: int) -> list[int]:
        """Task (ii) output for one article: author per token index."""
        state = self._articles.get(article_id)
        return list(state.authors) if state else []
