"""String similarity for entity resolution.

The INRIA activity-reports application computes "aggregates... relying
on external code such as the similarity between two people referenced in
the reports in order to determine whether an employee is already present
in the database or needs to be added" (Section III-c).  This module is
that external code: Levenshtein distance, Jaro and Jaro-Winkler
similarity, and a person-name matcher built on them, all from scratch.
"""

from __future__ import annotations

from typing import Optional


def levenshtein(a: str, b: str) -> int:
    """Edit distance with unit costs (two-row dynamic program)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a  # keep the inner row short
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(
                    previous[j] + 1,      # deletion
                    current[j - 1] + 1,   # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Normalized edit similarity in [0, 1]."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity in [0, 1]."""
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0
    window = max(len_a, len_b) // 2 - 1
    window = max(window, 0)
    match_a = [False] * len_a
    match_b = [False] * len_b
    matches = 0
    for i, ch in enumerate(a):
        lo = max(0, i - window)
        hi = min(len_b, i + window + 1)
        for j in range(lo, hi):
            if not match_b[j] and b[j] == ch:
                match_a[i] = True
                match_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    # Count transpositions among matched characters.
    transpositions = 0
    k = 0
    for i in range(len_a):
        if match_a[i]:
            while not match_b[k]:
                k += 1
            if a[i] != b[k]:
                transpositions += 1
            k += 1
    transpositions //= 2
    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted by the common prefix (up to 4 chars)."""
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError(f"prefix_scale must be in [0, 0.25], got {prefix_scale}")
    base = jaro(a, b)
    prefix = 0
    for ch_a, ch_b in zip(a[:4], b[:4]):
        if ch_a != ch_b:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def _normalize_name(name: str) -> str:
    return " ".join(name.lower().replace("-", " ").replace(".", " ").split())


def _name_tokens(name: str) -> list[str]:
    return _normalize_name(name).split()


def person_similarity(a: str, b: str) -> float:
    """Similarity between two person names, robust to the usual report
    noise: reordered given/family names, initials, hyphens, case.

    Tokens are greedily aligned by best Jaro-Winkler score; initials
    match their expansion ("J." ~ "Jean") at a fixed confidence.
    """
    tokens_a = _name_tokens(a)
    tokens_b = _name_tokens(b)
    if not tokens_a or not tokens_b:
        return 0.0
    if _normalize_name(a) == _normalize_name(b):
        return 1.0
    # Greedy best alignment, shorter side drives.
    if len(tokens_a) > len(tokens_b):
        tokens_a, tokens_b = tokens_b, tokens_a
    remaining = list(tokens_b)
    scores: list[float] = []
    for token in tokens_a:
        best_score = 0.0
        best_index: Optional[int] = None
        for index, other in enumerate(remaining):
            score = _token_similarity(token, other)
            if score > best_score:
                best_score = score
                best_index = index
        if best_index is not None:
            remaining.pop(best_index)
        scores.append(best_score)
    coverage = len(tokens_a) / len(tokens_b)  # unmatched extra tokens cost
    return (sum(scores) / len(scores)) * (0.7 + 0.3 * coverage)


def _token_similarity(a: str, b: str) -> float:
    if a == b:
        return 1.0
    # Initial vs expansion: "j" ~ "jean".
    if len(a) == 1 or len(b) == 1:
        short, long = (a, b) if len(a) <= len(b) else (b, a)
        if long.startswith(short):
            return 0.85
        return 0.0
    return jaro_winkler(a, b)


class PersonMatcher:
    """Deduplicating registry of person names.

    ``resolve(name)`` returns the id of an existing person whose name is
    similar enough, or registers a new one -- the exact check the
    activity-reports ingestion performs per author mention.
    """

    def __init__(self, threshold: float = 0.88) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self._names: dict[int, str] = {}
        self._canonical: dict[str, int] = {}
        self._next_id = 1
        self.merges = 0

    def resolve(self, name: str) -> int:
        """Return a person id for ``name``, merging near-duplicates."""
        key = _normalize_name(name)
        existing = self._canonical.get(key)
        if existing is not None:
            return existing
        best_id: Optional[int] = None
        best_score = 0.0
        for person_id, known in self._names.items():
            score = person_similarity(name, known)
            if score > best_score:
                best_score = score
                best_id = person_id
        if best_id is not None and best_score >= self.threshold:
            self._canonical[key] = best_id
            self.merges += 1
            # Keep the longer variant as the display name.
            if len(name) > len(self._names[best_id]):
                self._names[best_id] = name
            return best_id
        person_id = self._next_id
        self._next_id += 1
        self._names[person_id] = name
        self._canonical[key] = person_id
        return person_id

    def name_of(self, person_id: int) -> str:
        return self._names[person_id]

    def __len__(self) -> int:
        return len(self._names)

    def known_names(self) -> list[tuple[int, str]]:
        return sorted(self._names.items())
