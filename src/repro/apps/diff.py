"""Myers O(ND) diff.

The Wikipedia application's first elementary task is to "compute the
differences between successive versions of each article" (Section III).
This is the classic Myers greedy algorithm over token sequences, plus
helpers to express the result as edit operations with positions -- which
the contribution-table computation consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence


@dataclass(frozen=True)
class EditOp:
    """One edit operation transforming ``old`` into ``new``.

    ``kind`` is 'equal', 'insert', or 'delete'.
    For 'equal':  old[old_start:old_end] == new[new_start:new_end].
    For 'insert': tokens new[new_start:new_end] appear at old_start.
    For 'delete': tokens old[old_start:old_end] are removed.
    """

    kind: str
    old_start: int
    old_end: int
    new_start: int
    new_end: int

    @property
    def length(self) -> int:
        if self.kind == "insert":
            return self.new_end - self.new_start
        return self.old_end - self.old_start


def _myers_middle_trace(a: Sequence[Any], b: Sequence[Any]) -> list[dict[int, int]]:
    """Forward pass of Myers's algorithm, keeping the V maps per D."""
    n, m = len(a), len(b)
    v: dict[int, int] = {1: 0}
    trace: list[dict[int, int]] = []
    for d in range(n + m + 1):
        trace.append(dict(v))
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v.get(k - 1, -1) < v.get(k + 1, -1)):
                x = v.get(k + 1, 0)
            else:
                x = v.get(k - 1, 0) + 1
            y = x - k
            while x < n and y < m and a[x] == b[y]:
                x += 1
                y += 1
            v[k] = x
            if x >= n and y >= m:
                trace.append(dict(v))
                return trace
    return trace  # pragma: no cover - loop always returns for valid input


def _backtrack(
    a: Sequence[Any], b: Sequence[Any], trace: list[dict[int, int]]
) -> list[tuple[int, int, int, int]]:
    """Recover the edit path as (prev_x, prev_y, x, y) moves, reversed."""
    moves: list[tuple[int, int, int, int]] = []
    x, y = len(a), len(b)
    for d in range(len(trace) - 2, -1, -1):
        v = trace[d]
        k = x - y
        if k == -d or (k != d and v.get(k - 1, -1) < v.get(k + 1, -1)):
            prev_k = k + 1
        else:
            prev_k = k - 1
        prev_x = v.get(prev_k, 0)
        prev_y = prev_x - prev_k
        # Snake (diagonal) part.
        while x > prev_x and y > prev_y:
            moves.append((x - 1, y - 1, x, y))
            x -= 1
            y -= 1
        if d > 0:
            moves.append((prev_x, prev_y, x, y))
            x, y = prev_x, prev_y
        if x == 0 and y == 0:
            break
    moves.reverse()
    return moves


def diff(a: Sequence[Any], b: Sequence[Any]) -> list[EditOp]:
    """Compute a minimal edit script turning ``a`` into ``b``.

    Returns a list of :class:`EditOp` covering both sequences in order,
    with adjacent ops of the same kind coalesced.
    """
    if not a and not b:
        return []
    if not a:
        return [EditOp("insert", 0, 0, 0, len(b))]
    if not b:
        return [EditOp("delete", 0, len(a), 0, 0)]
    trace = _myers_middle_trace(a, b)
    moves = _backtrack(a, b, trace)
    ops: list[EditOp] = []

    def push(kind: str, ox: int, oy: int, x: int, y: int) -> None:
        if ops and ops[-1].kind == kind and ops[-1].old_end == ox and ops[-1].new_end == oy:
            last = ops.pop()
            ops.append(EditOp(kind, last.old_start, x, last.new_start, y))
        else:
            ops.append(EditOp(kind, ox, x, oy, y))

    for prev_x, prev_y, x, y in moves:
        if x - prev_x == 1 and y - prev_y == 1:
            push("equal", prev_x, prev_y, x, y)
        elif x - prev_x == 1:
            push("delete", prev_x, prev_y, x, y)
        else:
            push("insert", prev_x, prev_y, x, y)
    return ops


def diff_stats(a: Sequence[Any], b: Sequence[Any]) -> tuple[int, int, int]:
    """(equal, inserted, deleted) token counts between two versions."""
    equal = inserted = deleted = 0
    for op in diff(a, b):
        if op.kind == "equal":
            equal += op.length
        elif op.kind == "insert":
            inserted += op.length
        else:
            deleted += op.length
    return equal, inserted, deleted


def apply_ops(a: Sequence[Any], ops: list[EditOp]) -> list[Any]:
    """Replay an edit script over ``a`` (sanity check: result == b)."""
    out: list[Any] = []
    for op in ops:
        if op.kind == "equal":
            out.extend(a[op.old_start : op.old_end])
        elif op.kind == "insert":
            # Tokens come from the 'new' side; callers keep b around.
            out.append(("__insert__", op.new_start, op.new_end))
    return out


def annotate_contributions(
    old_tokens: Sequence[Any],
    old_authors: Sequence[int],
    new_tokens: Sequence[Any],
    author: int,
) -> list[int]:
    """Carry per-token authorship across one revision.

    ``old_authors[i]`` is the user who contributed ``old_tokens[i]``.
    Tokens surviving the edit keep their author; inserted tokens belong
    to ``author``.  This is the "contribution table, storing at each
    character index the identifier of the user who entered it"
    (Section III), at token granularity.
    """
    if len(old_tokens) != len(old_authors):
        raise ValueError(
            f"token/author length mismatch: {len(old_tokens)} vs {len(old_authors)}"
        )
    new_authors: list[int] = []
    for op in diff(old_tokens, new_tokens):
        if op.kind == "equal":
            new_authors.extend(old_authors[op.old_start : op.old_end])
        elif op.kind == "insert":
            new_authors.extend([author] * op.length)
    return new_authors
