"""The paper's applications (Section III) and their substrates."""

from . import copub, diff, elections, reports, similarity, telemetry, wikipedia

__all__ = [
    "copub",
    "diff",
    "elections",
    "reports",
    "similarity",
    "telemetry",
    "wikipedia",
]
