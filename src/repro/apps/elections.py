"""The US-elections application (Section III-a, Figure 1).

"A dynamic visualisation of elections outcome, varying as new election
results become available...  This very simple example uses a process of
two activities: computing some aggregates over the votes, and visualizing
the results."

We build the whole pipeline: a synthetic incremental returns feed, the
two-activity EdiFlow process, the aggregate procedure with an incremental
delta handler, and the TreeMap visual mapping (state area proportional to
population, shade proportional to the leading party's margin).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterator, Optional, Sequence

from ..db.database import Database
from ..db.schema import Column
from ..db.types import FLOAT, INTEGER, TEXT
from ..ivm.delta import Delta
from ..vis.attributes import VisualItem
from ..vis.color import SequentialScale
from ..vis.treemap import squarify
from ..workflow.model import (
    CallProcedure,
    ProcessDefinition,
    RelationDecl,
    UpdatePropagation,
    seq,
)
from ..workflow.procedures import Procedure, ProcessEnv, Tables

#: The 50 states plus DC ("the 51 states are shown", Section III).
STATES: tuple[tuple[str, int], ...] = (
    ("AL", 5), ("AK", 1), ("AZ", 7), ("AR", 3), ("CA", 39), ("CO", 6),
    ("CT", 4), ("DE", 1), ("DC", 1), ("FL", 22), ("GA", 11), ("HI", 1),
    ("ID", 2), ("IL", 13), ("IN", 7), ("IA", 3), ("KS", 3), ("KY", 5),
    ("LA", 5), ("ME", 1), ("MD", 6), ("MA", 7), ("MI", 10), ("MN", 6),
    ("MS", 3), ("MO", 6), ("MT", 1), ("NE", 2), ("NV", 3), ("NH", 1),
    ("NJ", 9), ("NM", 2), ("NY", 19), ("NC", 11), ("ND", 1), ("OH", 12),
    ("OK", 4), ("OR", 4), ("PA", 13), ("RI", 1), ("SC", 5), ("SD", 1),
    ("TN", 7), ("TX", 30), ("UT", 3), ("VT", 1), ("VA", 9), ("WA", 8),
    ("WV", 2), ("WI", 6), ("WY", 1),
)

PARTIES = ("DEM", "REP")

#: Census-style regions for the hierarchical treemap view.
REGIONS: dict[str, tuple[str, ...]] = {
    "northeast": ("CT", "ME", "MA", "NH", "NJ", "NY", "PA", "RI", "VT"),
    "midwest": ("IL", "IN", "IA", "KS", "MI", "MN", "MO", "NE", "ND", "OH",
                "SD", "WI"),
    "south": ("AL", "AR", "DE", "DC", "FL", "GA", "KY", "LA", "MD", "MS",
              "NC", "OK", "SC", "TN", "TX", "VA", "WV"),
    "west": ("AK", "AZ", "CA", "CO", "HI", "ID", "MT", "NV", "NM", "OR",
             "UT", "WA", "WY"),
}

T_VOTES = "election_votes"
T_AGG = "election_agg"


def install_schema(database: Database) -> None:
    """Create the application tables (idempotent)."""
    if not database.has_table(T_VOTES):
        database.create_table(
            T_VOTES,
            [
                Column("id", INTEGER, nullable=False),
                Column("state", TEXT, nullable=False),
                Column("party", TEXT, nullable=False),
                Column("votes", INTEGER, nullable=False),
            ],
            primary_key="id",
        )
    if not database.has_table(T_AGG):
        database.create_table(
            T_AGG,
            [
                Column("state", TEXT, nullable=False),
                Column("population", INTEGER, nullable=False),
                Column("dem", INTEGER, nullable=False, default=0),
                Column("rep", INTEGER, nullable=False, default=0),
                Column("margin", FLOAT),  # (dem-rep)/(dem+rep), None = no data
                Column("winner_last3", TEXT),
            ],
            primary_key="state",
        )


@dataclass
class ReturnsBatch:
    """One precinct-report batch of the election-night feed."""

    rows: list[dict[str, Any]]
    minute: int


class ReturnsFeed:
    """Synthetic election-night returns.

    Each state has a hidden true lean; precinct batches arrive in random
    state order over ``total_minutes``, so early in the night many states
    have no data ("distinguishing the areas where not enough data is
    available yet").
    """

    def __init__(self, seed: int = 2008, total_minutes: int = 120, batch_size: int = 8) -> None:
        self.rng = random.Random(seed)
        self.total_minutes = total_minutes
        self.batch_size = batch_size
        self.lean = {
            state: self.rng.uniform(0.32, 0.68) for state, _pop in STATES
        }
        self._next_id = 1

    def batches(self) -> Iterator[ReturnsBatch]:
        """Yield batches until the night is over."""
        reports = []
        for state, population in STATES:
            # Population scales how many precinct reports a state emits.
            for _ in range(max(2, population)):
                reports.append(state)
        self.rng.shuffle(reports)
        per_minute = max(1, len(reports) // self.total_minutes)
        minute = 0
        while reports:
            chunk, reports = reports[:per_minute], reports[per_minute:]
            rows = []
            for state in chunk:
                dem_share = self.lean[state] + self.rng.uniform(-0.05, 0.05)
                total = self.rng.randint(2_000, 30_000)
                dem = int(total * dem_share)
                rows.append(
                    {
                        "id": self._next_id,
                        "state": state,
                        "party": "DEM",
                        "votes": dem,
                    }
                )
                self._next_id += 1
                rows.append(
                    {
                        "id": self._next_id,
                        "state": state,
                        "party": "REP",
                        "votes": total - dem,
                    }
                )
                self._next_id += 1
            minute += 1
            yield ReturnsBatch(rows=rows, minute=minute)


class AggregateVotes(Procedure):
    """Activity 1: aggregate raw returns per state.

    Distributive in spirit but implemented with explicit handlers, since
    the output is an upsert into ``election_agg``: the running/finished
    handlers fold a delta's counts in without rescanning the votes table
    ("the corresponding aggregated values are recomputed").
    """

    name = "aggregate_votes"

    def run(self, env: ProcessEnv, inputs: Tables, read_write: list[str]) -> Tables:
        votes = inputs[0]
        totals: dict[str, dict[str, int]] = {}
        for row in votes:
            per_state = totals.setdefault(row["state"], {"DEM": 0, "REP": 0})
            per_state[row["party"]] += row["votes"]
        self._upsert(env.database, totals)
        return []

    def _upsert(self, database: Database, totals: dict[str, dict[str, int]]) -> None:
        populations = dict(STATES)
        for state, counts in sorted(totals.items()):
            existing = database.table(T_AGG).by_key(state)
            dem = counts.get("DEM", 0)
            rep = counts.get("REP", 0)
            if existing is not None:
                dem += existing["dem"]
                rep += existing["rep"]
            margin = (dem - rep) / (dem + rep) if dem + rep > 0 else None
            values = {
                "state": state,
                "population": populations.get(state, 1),
                "dem": dem,
                "rep": rep,
                "margin": margin,
            }
            if existing is None:
                database.insert(T_AGG, values)
            else:
                database.execute(
                    f"UPDATE {T_AGG} SET dem = ?, rep = ?, margin = ? WHERE state = ?",
                    [dem, rep, margin, state],
                )

    def _fold_delta(self, env: ProcessEnv, delta: Delta) -> None:
        totals: dict[str, dict[str, int]] = {}
        for row in delta.inserted:
            per_state = totals.setdefault(row["state"], {"DEM": 0, "REP": 0})
            per_state[row["party"]] += row["votes"]
        for row in delta.deleted:
            per_state = totals.setdefault(row["state"], {"DEM": 0, "REP": 0})
            per_state[row["party"]] -= row["votes"]
        self._upsert(env.database, totals)

    def on_delta_running(self, env: ProcessEnv, delta: Delta) -> Optional[Tables]:
        self._fold_delta(env, delta)
        return None

    def on_delta_finished(self, env: ProcessEnv, delta: Delta) -> Optional[Tables]:
        self._fold_delta(env, delta)
        return None


class TreemapVotes(Procedure):
    """Activity 2: map the aggregate table to TreeMap visual items.

    Area encodes population; shade encodes the selected party's share
    ("the more the states vote for the respective party, the darker the
    color"); states without data render in neutral gray.
    """

    name = "treemap_votes"

    def __init__(self, width: float = 800.0, height: float = 500.0) -> None:
        self.width = width
        self.height = height
        self.last_items: list[VisualItem] = []

    def run(self, env: ProcessEnv, inputs: Tables, read_write: list[str]) -> Tables:
        agg = inputs[0]
        party = env.lookup("party") if _has_var(env, "party") else "DEM"
        items = compute_treemap(agg, party, self.width, self.height)
        self.last_items = items
        return [[item.to_row(0, i + 1) for i, item in enumerate(items)]]

    def on_delta_running(self, env: ProcessEnv, delta: Delta) -> Optional[Tables]:
        # Re-derive the picture from the (already-folded) aggregate table.
        agg = env.database.query(f"SELECT * FROM {T_AGG}")
        party = env.lookup("party") if _has_var(env, "party") else "DEM"
        self.last_items = compute_treemap(agg, party, self.width, self.height)
        return None

    def on_delta_finished(self, env: ProcessEnv, delta: Delta) -> Optional[Tables]:
        return self.on_delta_running(env, delta)


def _has_var(env: ProcessEnv, name: str) -> bool:
    return name in env.variables or name in env.constants


def compute_treemap(
    agg_rows: Sequence[dict[str, Any]],
    party: str,
    width: float = 800.0,
    height: float = 500.0,
) -> list[VisualItem]:
    """Pure mapping: aggregate rows -> treemap visual items."""
    by_state = {row["state"]: row for row in agg_rows}
    cells = squarify(
        [(state, float(population)) for state, population in STATES],
        0.0,
        0.0,
        width,
        height,
    )
    neutral = "#cccccc"
    ramp = SequentialScale(
        (0.3, 0.7), low="#f7fbff", high="#08306b" if party == "DEM" else "#67000d"
    )
    items = []
    for cell in cells:
        row = by_state.get(cell.key)
        if row is None or row["margin"] is None:
            color = neutral  # not enough data yet
            label = f"{cell.key}"
        else:
            total = row["dem"] + row["rep"]
            share = (row["dem"] if party == "DEM" else row["rep"]) / total
            color = ramp(share)
            label = f"{cell.key} {share:.0%}"
        items.append(
            VisualItem(
                obj_id=cell.key,
                x=cell.x,
                y=cell.y,
                width=cell.width,
                height=cell.height,
                color=color,
                label=label,
            )
        )
    return items


def compute_nested_treemap(
    agg_rows: Sequence[dict[str, Any]],
    party: str,
    width: float = 800.0,
    height: float = 500.0,
    padding: float = 3.0,
) -> list[VisualItem]:
    """Hierarchical variant: states nested inside census regions.

    Region cells render as neutral group frames; state leaves carry the
    same population-area / share-shade encoding as the flat treemap.
    """
    from ..vis.treemap import squarify_nested

    populations = dict(STATES)
    tree: dict[str, dict[str, float]] = {
        region: {
            state: float(populations[state])
            for state in states
            if state in populations
        }
        for region, states in REGIONS.items()
    }
    by_state = {row["state"]: row for row in agg_rows}
    ramp = SequentialScale(
        (0.3, 0.7), low="#f7fbff", high="#08306b" if party == "DEM" else "#67000d"
    )
    items: list[VisualItem] = []
    for cell in squarify_nested(tree, 0.0, 0.0, width, height, padding=padding):
        if not cell.is_leaf:
            items.append(
                VisualItem(
                    obj_id=f"region:{cell.key}",
                    x=cell.x,
                    y=cell.y,
                    width=cell.width,
                    height=cell.height,
                    color="#eeeeee",
                    label=str(cell.key),
                )
            )
            continue
        row = by_state.get(cell.key)
        if row is None or row["margin"] is None:
            color = "#cccccc"
            label = str(cell.key)
        else:
            total = row["dem"] + row["rep"]
            share = (row["dem"] if party == "DEM" else row["rep"]) / total
            color = ramp(share)
            label = f"{cell.key} {share:.0%}"
        items.append(
            VisualItem(
                obj_id=cell.key,
                x=cell.x,
                y=cell.y,
                width=cell.width,
                height=cell.height,
                color=color,
                label=label,
            )
        )
    return items


def build_process(detached_visualization: bool = True) -> ProcessDefinition:
    """The two-activity EdiFlow process, wired for reactivity.

    UP statements route vote deltas to both activities: running instances
    (``ra``) refresh live; terminated ones (``ta-rp``) keep their stored
    results fresh while the process instance is still open.
    """
    return ProcessDefinition(
        name="us-elections",
        body=seq(
            CallProcedure(
                "aggregate",
                "aggregate_votes",
                inputs=[T_VOTES],
                outputs=[],
            ),
            CallProcedure(
                "visualize",
                "treemap_votes",
                inputs=[T_AGG],
                outputs=["election_visual"],
                detached=detached_visualization,
                fresh_snapshot=True,
            ),
        ),
        relations=[
            RelationDecl(T_VOTES),
            RelationDecl(T_AGG),
            RelationDecl(
                "election_visual",
                columns=(
                    ("id", "INTEGER"),
                    ("component_id", "INTEGER"),
                    ("obj_id", "ANY"),
                    ("x", "FLOAT"),
                    ("y", "FLOAT"),
                    ("width", "FLOAT"),
                    ("height", "FLOAT"),
                    ("color", "TEXT"),
                    ("label", "TEXT"),
                    ("selected", "BOOLEAN"),
                ),
            ),
        ],
        procedures=["aggregate_votes", "treemap_votes"],
        propagations=[
            UpdatePropagation(T_VOTES, "aggregate", "ra"),
            UpdatePropagation(T_VOTES, "aggregate", "ta-rp"),
            UpdatePropagation(T_VOTES, "visualize", "ra"),
        ],
    )
