"""A live, EdiFlow-native telemetry dashboard (self-hosted observability).

The dashboard is deliberately built from the same parts as every other
application in this repo -- no privileged access to the tracer:

- the :class:`~repro.obs.store.TelemetrySink` persists spans/metrics
  into ``sys_spans`` / ``sys_metrics`` of a telemetry database;
- a :class:`~repro.sync.server.SyncServer` +
  :class:`~repro.sync.client.SyncClient` pair mirrors those tables the
  normal way (NOTIFY/NOTIFYB over the sink's notification center);
- a :class:`~repro.ivm.registry.ViewRegistry`
  :class:`~repro.ivm.view.AggregateView` maintains per-span-name
  statistics incrementally as the sink writes;
- :class:`~repro.vis.display.Display` objects render three views:
  a **span waterfall** (one bar per recent span, lane per span name),
  the **NOTIFY -> applied latency distribution** (a
  :class:`~repro.vis.scatter.ScatterPlot` over the persisted
  p50/p95/p99 summaries), and a **per-table batch/coalesce savings
  treemap** (cell area = operations eliminated before they reached the
  wire).

Because the observed workload keeps running while the dashboard
refreshes, every dashboard operation runs under the tracer's recursion
guard -- the dashboard observing the telemetry tables must not itself
generate telemetry (see :mod:`repro.obs.store`).
"""

from __future__ import annotations

import json
from typing import Any, Optional

from ..db.algebra import AggSpec
from ..db.expression import col
from ..db.schema import TID
from ..ivm.registry import ViewRegistry
from ..ivm.view import AggregateView
from ..obs.store import SYS_METRICS, SYS_PROFILES, SYS_SPANS, SYS_STACKS, TelemetrySink
from ..sync.client import SyncClient
from ..sync.server import SyncServer
from ..vis.attributes import VisualItem
from ..vis.color import categorical
from ..vis.display import Display
from ..vis.scatter import ScatterPlot
from ..vis.treemap import squarify

__all__ = [
    "TelemetryDashboard",
    "V_HOT_SPANS",
    "V_SPAN_STATS",
    "compute_coalesce_treemap",
    "compute_flame_icicle",
    "compute_latency_points",
    "compute_span_waterfall",
]

V_SPAN_STATS = "telemetry_span_stats"
V_HOT_SPANS = "telemetry_hot_spans"

#: Quantile stats persisted per histogram, in plotting order.
_QUANTILE_STATS = ("p50", "p95", "p99")


def _labels(row: dict[str, Any]) -> dict[str, Any]:
    try:
        decoded = json.loads(row.get("labels") or "{}")
    except (TypeError, ValueError):
        return {}
    return decoded if isinstance(decoded, dict) else {}


def latest_series_rows(metric_rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """The newest row per (name, labels, stat) series.

    The sink persists changed series only between keyframes, so the
    current value of a metric is its newest *persisted* row -- a series
    absent from the latest snap is unchanged, not gone.
    """
    newest: dict[tuple[str, str, str], dict[str, Any]] = {}
    for row in metric_rows:
        key = (row["name"], row["labels"], row["stat"])
        held = newest.get(key)
        if held is None or row["snap"] > held["snap"]:
            newest[key] = row
    return list(newest.values())


# ---------------------------------------------------------------------------
# Pure visual mappings (rows -> VisualItems), in the apps-module idiom.


def compute_span_waterfall(
    span_rows: list[dict[str, Any]],
    width: float = 900.0,
    height: float = 400.0,
    limit: int = 96,
) -> list[VisualItem]:
    """The most recent spans as a waterfall: time on x, one lane per name.

    Bar length encodes duration; color encodes the span name.  Workflow
    rows (logical clock) are excluded -- their time axis is not
    commensurable with ``perf_counter_ns``.
    """
    spans = [r for r in span_rows if r.get("kind") == "span" and r.get("end_ns")]
    spans.sort(key=lambda r: r["start_ns"])
    spans = spans[-limit:]
    if not spans:
        return []
    t0 = min(r["start_ns"] for r in spans)
    t1 = max(r["end_ns"] for r in spans)
    span_ns = max(t1 - t0, 1)
    names = sorted({r["name"] for r in spans})
    lane_height = height / max(len(names), 1)
    items: list[VisualItem] = []
    for row in spans:
        lane = names.index(row["name"])
        x = (row["start_ns"] - t0) / span_ns * width
        bar = max((row["end_ns"] - row["start_ns"]) / span_ns * width, 1.0)
        items.append(
            VisualItem(
                obj_id=row["span_id"],
                x=x,
                y=lane * lane_height,
                width=bar,
                height=lane_height * 0.8,
                color=categorical(lane),
                label=f"{row['name']} {row['duration_ms']:.2f}ms",
            )
        )
    return items


def compute_latency_points(
    metric_rows: list[dict[str, Any]],
    metric: str = "sync.notify_to_applied_ms",
    width: float = 600.0,
    height: float = 300.0,
) -> list[VisualItem]:
    """NOTIFY -> applied latency distribution as a quantile scatter.

    One dot per (table, quantile) from the latest persisted snapshot:
    x = quantile, y = milliseconds, color = table.  Built on the
    declarative :class:`ScatterPlot` so the dashboard exercises the
    normal vis pipeline.
    """
    latest = latest_series_rows(metric_rows)
    points: list[dict[str, Any]] = []
    for row in latest:
        if row["name"] != metric or row["stat"] not in _QUANTILE_STATS:
            continue
        table = _labels(row).get("table", "?")
        points.append(
            {
                "key": f"{table}:{row['stat']}",
                "quantile": float(row["stat"].lstrip("p")),
                "ms": row["value"],
                "table": table,
            }
        )
    if not points:
        return []
    plot = ScatterPlot(
        x="quantile",
        y="ms",
        key="key",
        color_by="table",
        label="key",
        width=width,
        height=height,
    )
    return plot.compute(points)


def compute_coalesce_treemap(
    metric_rows: list[dict[str, Any]],
    width: float = 600.0,
    height: float = 300.0,
) -> list[VisualItem]:
    """Per-table propagation savings as a treemap.

    Cell area = operations eliminated before they reached the wire
    (``sync.coalesced_away``); falls back to per-table write volume
    (``db.writes``) when no batching policy has saved anything yet, so
    the view is never blank on a fresh system.
    """
    latest = latest_series_rows(metric_rows)

    def series(name: str) -> dict[str, float]:
        out: dict[str, float] = {}
        for row in latest:
            if row["name"] == name and row["stat"] == "value" and row["value"]:
                table = _labels(row).get("table", "?")
                out[table] = out.get(table, 0.0) + row["value"]
        return out

    values = series("sync.coalesced_away")
    label_fmt = "{table}: {value:.0f} saved"
    if not values:
        values = series("db.writes")
        label_fmt = "{table}: {value:.0f} writes"
    if not values:
        return []
    cells = squarify(sorted(values.items()), 0.0, 0.0, width, height)
    items: list[VisualItem] = []
    for index, cell in enumerate(cells):
        items.append(
            VisualItem(
                obj_id=cell.key,
                x=cell.x,
                y=cell.y,
                width=cell.width,
                height=cell.height,
                color=categorical(index),
                label=label_fmt.format(table=cell.key, value=values[cell.key]),
            )
        )
    return items


def compute_flame_icicle(
    stack_rows: list[dict[str, Any]],
    width: float = 900.0,
    height: float = 300.0,
    max_depth: int = 12,
) -> list[VisualItem]:
    """Persisted ``sys_stacks`` rows as an icicle (root-at-top flamegraph).

    Each row is one collapsed stack delta from the sampling profiler;
    the synthetic frame chain is ``thread -> span:<name> -> frames...``,
    weighted by attributed self-time (falling back to sample counts when
    a row carries no time).  One cell per distinct frame *prefix*: cell
    width is the prefix's share of total attributed time, depth is the
    row below its caller -- exactly a flamegraph, drawn top-down.
    """
    totals: dict[tuple[str, ...], float] = {}
    for row in stack_rows:
        frames: list[str] = [row.get("thread") or "?"]
        if row.get("span_name"):
            frames.append(f"span:{row['span_name']}")
        stack = row.get("stack") or ""
        if stack:
            frames.extend(stack.split(";"))
        frames = frames[:max_depth]
        weight = float(row.get("self_ms") or 0.0) or float(row.get("samples") or 0)
        if weight <= 0:
            continue
        for depth in range(1, len(frames) + 1):
            key = tuple(frames[:depth])
            totals[key] = totals.get(key, 0.0) + weight
    if not totals:
        return []
    depth_max = max(len(key) for key in totals)
    row_height = height / depth_max
    grand_total = sum(v for key, v in totals.items() if len(key) == 1)
    children: dict[tuple[str, ...], list[tuple[str, ...]]] = {}
    for key in totals:
        if len(key) > 1:
            children.setdefault(key[:-1], []).append(key)
    items: list[VisualItem] = []

    def emit(key: tuple[str, ...], x_px: float) -> None:
        cell_width = totals[key] / grand_total * width
        depth = len(key) - 1
        items.append(
            VisualItem(
                obj_id=";".join(key),
                x=x_px,
                y=depth * row_height,
                width=max(cell_width, 0.5),
                height=row_height * 0.92,
                color=categorical(depth),
                label=f"{key[-1]} {totals[key]:.1f}",
            )
        )
        child_x = x_px
        for child in sorted(children.get(key, [])):
            emit(child, child_x)
            child_x += totals[child] / grand_total * width

    x = 0.0
    for root in sorted(key for key in totals if len(key) == 1):
        emit(root, x)
        x += totals[root] / grand_total * width
    return items


# ---------------------------------------------------------------------------


class TelemetryDashboard:
    """Three live displays over the telemetry system tables.

    Parameters
    ----------
    sink:
        The telemetry sink whose database/center this dashboard attaches
        to.  The dashboard never reads the tracer directly -- only the
        persisted tables, through a synchronized mirror.
    use_sockets:
        ``True`` routes the NOTIFY path over a real loopback socket
        (exactly like a remote display wall); ``False`` uses in-process
        polling.
    """

    def __init__(
        self,
        sink: TelemetrySink,
        use_sockets: bool = False,
        width: float = 900.0,
        height: float = 400.0,
    ) -> None:
        self.sink = sink
        self.server = SyncServer(
            sink.database,
            center=sink.center,
            use_sockets=use_sockets,
            heartbeat_interval=0.5 if use_sockets else None,
        )
        # Everything the dashboard does against the telemetry database
        # must be invisible to the tracer (recursion guard, layer 1).
        with sink.runtime.tracer.suppress():
            self.client = SyncClient(self.server)
            self.span_mirror = self.client.mirror(SYS_SPANS)
            self.metric_mirror = self.client.mirror(SYS_METRICS)
            self.stack_mirror = self.client.mirror(SYS_STACKS)
            self.registry = ViewRegistry(sink.database)
            self.span_stats = AggregateView(
                V_SPAN_STATS,
                SYS_SPANS,
                ("name",),
                [
                    AggSpec("COUNT", None, "n"),
                    AggSpec("SUM", col("duration_ms"), "total_ms"),
                    AggSpec("MAX", col("duration_ms"), "max_ms"),
                ],
                where=col("kind") == "span",
            )
            # Lineage-enabled: every stats group knows exactly which
            # sys_spans rows it aggregates, so the dashboard can answer
            # "why is this pixel here" without re-querying.
            self.span_stats.enable_lineage()
            self.registry.register(self.span_stats)
            # Hottest spans by profiler self-time: an ordinary
            # AggregateView over sys_profiles delta rows, maintained
            # incrementally as the sink writes (and pruned sums shrink
            # with retention -- the view is a sliding window, on purpose).
            self.hot_spans_view = AggregateView(
                V_HOT_SPANS,
                SYS_PROFILES,
                ("span_name",),
                [
                    AggSpec("COUNT", None, "n"),
                    AggSpec("SUM", col("samples"), "samples"),
                    AggSpec("SUM", col("self_ms"), "self_ms"),
                ],
                where=col("kind") == "delta",
            )
            self.registry.register(self.hot_spans_view)
        self.waterfall = Display("span-waterfall", width=width, height=height)
        self.latency = Display("notify-latency", width=width, height=height)
        self.savings = Display("coalesce-savings", width=width, height=height)
        self.flame = Display("flame-icicle", width=width, height=height)
        self.refreshes = 0

    # ------------------------------------------------------------------
    def refresh(self) -> dict[str, Any]:
        """Pull the mirrors and redraw all three views.

        Returns a stats dict (mirrored row counts, items per display,
        the metric snapshot generation rendered) so headless callers --
        tests, the CI e2e -- can assert the dashboard reflects the
        system tables.
        """
        with self.sink.runtime.tracer.suppress():
            self.client.refresh(SYS_SPANS)
            self.client.refresh(SYS_METRICS)
            self.client.refresh(SYS_STACKS)
            span_rows = self.span_mirror.all_rows()
            metric_rows = self.metric_mirror.all_rows()
            stack_rows = self.stack_mirror.all_rows()
            self.waterfall.apply_snapshot(
                r.to_row(0, i + 1)
                for i, r in enumerate(compute_span_waterfall(span_rows))
            )
            self.latency.apply_snapshot(
                r.to_row(1, i + 1)
                for i, r in enumerate(compute_latency_points(metric_rows))
            )
            self.savings.apply_snapshot(
                r.to_row(2, i + 1)
                for i, r in enumerate(compute_coalesce_treemap(metric_rows))
            )
            self.flame.apply_snapshot(
                r.to_row(3, i + 1)
                for i, r in enumerate(compute_flame_icicle(stack_rows))
            )
        self.refreshes += 1
        return {
            "span_rows": len(span_rows),
            "metric_rows": len(metric_rows),
            "stack_rows": len(stack_rows),
            "snap": max((r["snap"] for r in metric_rows), default=0),
            "waterfall_items": len(self.waterfall),
            "latency_items": len(self.latency),
            "savings_items": len(self.savings),
            "flame_items": len(self.flame),
        }

    def span_summary(self) -> list[dict[str, Any]]:
        """Per-span-name statistics from the incremental AggregateView."""
        rows = self.registry.rows(V_SPAN_STATS)
        return sorted(rows, key=lambda r: -(r["total_ms"] or 0.0))

    def hot_spans(self) -> list[dict[str, Any]]:
        """Span names by profiler self-time, hottest first.

        Fed by the :data:`V_HOT_SPANS` AggregateView over ``sys_profiles``
        delta rows -- the dashboard's "where is the CPU going" answer.
        Rows with no span attribution (samples outside any span) appear
        under the ``None`` group last.
        """
        rows = self.registry.rows(V_HOT_SPANS)
        return sorted(
            rows,
            key=lambda r: (r["span_name"] is None, -(r["self_ms"] or 0.0)),
        )

    def format_hot_spans(self, limit: int = 12) -> str:
        """A terminal-friendly rendering of the hottest-spans view."""
        lines = [f"{'span':<28}{'samples':>9}{'self ms':>12}"]
        for row in self.hot_spans()[:limit]:
            name = row["span_name"] if row["span_name"] is not None else "<no span>"
            lines.append(
                f"{name:<28}{int(row['samples'] or 0):>9}"
                f"{(row['self_ms'] or 0.0):>12.2f}"
            )
        return "\n".join(lines)

    def format_summary(self, limit: int = 12) -> str:
        """A terminal-friendly rendering of the span-stats view."""
        lines = [f"{'span':<28}{'count':>8}{'total ms':>12}{'max ms':>10}"]
        for row in self.span_summary()[:limit]:
            lines.append(
                f"{row['name']:<28}{row['n']:>8}"
                f"{(row['total_ms'] or 0.0):>12.2f}"
                f"{(row['max_ms'] or 0.0):>10.2f}"
            )
        return "\n".join(lines)

    def why(self, span_id: str) -> Optional[dict[str, Any]]:
        """"Why is this point here": provenance of one waterfall bar.

        ``span_id`` is the bar's obj_id in the waterfall display.  The
        answer traces both lineage directions through the span-stats
        view: *forward* -- which aggregate group this span's ``sys_spans``
        row feeds -- and *backward* -- every base tid contributing to
        that group, i.e. the bar's siblings in the statistics it is part
        of.  Returns None for an unknown span id.
        """
        with self.sink.runtime.tracer.suppress():
            db = self.sink.database
            target = None
            for row in db.table(SYS_SPANS).rows():
                if row.get("span_id") == span_id:
                    target = row
                    break
            if target is None:
                return None
            tid = target[TID]
            lineage = self.span_stats.lineage
            groups = sorted(lineage.forward((SYS_SPANS, tid)))
            contributing = sorted(
                {t for g in groups for (_, t) in lineage.backward(g)}
            )
            stats = [
                r
                for r in self.registry.rows(V_SPAN_STATS)
                if (r["name"],) in groups
            ]
        return {
            "span_id": span_id,
            "name": target["name"],
            "duration_ms": target["duration_ms"],
            "source": (SYS_SPANS, tid),
            "groups": groups,
            "stats": stats,
            "contributing_tids": contributing,
            "contributing_spans": len(contributing),
        }

    def render_svg(self) -> dict[str, str]:
        """All four views as SVG documents (keyed by display name)."""
        return {
            d.name: d.render_svg()
            for d in (self.waterfall, self.latency, self.savings, self.flame)
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self.sink.runtime.tracer.suppress():
            self.registry.unregister(V_SPAN_STATS)
            self.registry.unregister(V_HOT_SPANS)
            self.client.close()
            self.server.close()


def attach_dashboard(
    sink: Optional[TelemetrySink] = None, use_sockets: bool = False
) -> TelemetryDashboard:
    """Convenience: build a sink (if needed) and attach a dashboard."""
    return TelemetryDashboard(sink or TelemetrySink(), use_sockets=use_sockets)
