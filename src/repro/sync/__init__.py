"""DBMS <-> visualization synchronization (Section VI-C of the paper).

Typical socket-mode use::

    center = NotificationCenter(db)
    server = SyncServer(db, center)           # DBMS side
    client = SyncClient(server)               # visualization host
    rm = client.mirror("visual_attributes")   # steps 1-6 + initial fill
    ... db changes ... client receives NOTIFY ...
    client.refresh("visual_attributes")       # step 8: pull
    client.write_back("visual_attributes", tid, "x", 4.2)   # step 9

Propagation policies (Section V) are per-table::

    center.set_policy("visual_attributes", Threshold(max_changes=256))
    center.set_policy("annotations", MANUAL)   # flush on activity end
"""

from .batching import (
    BatchBuffer,
    DeltaCoalescer,
    IMMEDIATE,
    Immediate,
    MANUAL,
    Manual,
    PropagationPolicy,
    Threshold,
)
from .client import SyncClient
from .faults import FaultPlan, FaultyTransport
from .memtable import MemoryTable
from .notification import NotificationCenter, T_CHANGED_ROWS
from .refresher import RefreshDriver
from .protocol import (
    DISCONNECT,
    HELLO,
    NOTIFY,
    NOTIFY_BATCH,
    PING,
    PONG,
    REPLY,
    MessageStream,
    decode,
    encode,
)
from .server import SyncServer

__all__ = [
    "BatchBuffer",
    "DISCONNECT",
    "DeltaCoalescer",
    "FaultPlan",
    "FaultyTransport",
    "HELLO",
    "IMMEDIATE",
    "Immediate",
    "MANUAL",
    "Manual",
    "MemoryTable",
    "MessageStream",
    "NOTIFY",
    "NOTIFY_BATCH",
    "NotificationCenter",
    "PING",
    "PONG",
    "PropagationPolicy",
    "REPLY",
    "RefreshDriver",
    "SyncClient",
    "SyncServer",
    "T_CHANGED_ROWS",
    "Threshold",
    "decode",
    "encode",
]
