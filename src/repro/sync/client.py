"""Client-side synchronization: listening socket, R_M refresh, write-back.

One :class:`SyncClient` plays the role of the "connection manager" on a
visualization host (Section VI-C): it owns a listening socket, registers
its memory tables with the DBMS server, accepts the DBMS's call-back
connection, and counts NOTIFY messages.  The visualization software
"may decide what are the appropriate moments to refresh the display"
(step 8) -- so NOTIFYs only raise a dirty flag; :meth:`refresh` performs
the actual pull.

The client talks to the database through direct method calls (standing in
for JDBC): in the paper's deployment the client host holds a DB
connection too; here both ends share the process, while the *notification
path* still crosses a real TCP socket when ``use_sockets=True``.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Callable, Optional

from ..db.database import Database
from ..db.schema import TID
from ..errors import SyncError
from . import protocol
from .memtable import MemoryTable, RowPredicate
from .notification import NotificationCenter
from .server import SyncServer

Row = dict[str, Any]

#: Callback invoked (table, op, seq_no) whenever a NOTIFY arrives.
NotifyHook = Callable[[str, str, int], None]


class SyncClient:
    """A visualization host's connection manager plus its R_M tables."""

    def __init__(
        self,
        server: SyncServer,
        host: str = "127.0.0.1",
        user_id: Optional[int] = None,
    ) -> None:
        self.server = server
        self.database: Database = server.database
        self.center: NotificationCenter = server.center
        self.host = host
        self.user_id = user_id
        self._tables: dict[str, MemoryTable] = {}
        self._cu_ids: dict[str, int] = {}
        self._dirty: set[str] = set()
        self._dirty_lock = threading.Lock()
        self.notify_received = 0
        self._hooks: list[NotifyHook] = []
        self._listener: Optional[socket.socket] = None
        self._reader: Optional[threading.Thread] = None
        self._stream: Optional[protocol.MessageStream] = None
        self.port = 0
        self._closed = False
        if server.use_sockets:
            self._open_listener()
        else:
            # In-process transport: dirty flags come straight from the
            # notification center instead of a socket reader thread.
            self.center.add_listener(self._on_local_notify)

    def _on_local_notify(self, table: str, op: str, seq_no: int) -> None:
        if table not in self._tables:
            return
        self.notify_received += 1
        with self._dirty_lock:
            self._dirty.add(table)
        for hook in list(self._hooks):
            hook(table, op, seq_no)

    # ------------------------------------------------------------------
    def _open_listener(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(4)
        self._listener = listener
        self.port = listener.getsockname()[1]

    def _accept_callback_connection(self) -> None:
        """Accept the DBMS's call-back connection and handshake (step 6)."""
        assert self._listener is not None
        self._listener.settimeout(5.0)
        try:
            sock, _addr = self._listener.accept()
        except socket.timeout:
            raise SyncError("DBMS never connected back") from None
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._stream = protocol.MessageStream(sock)
        protocol.client_handshake(self._stream)
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()

    def _read_loop(self) -> None:
        assert self._stream is not None
        while not self._closed:
            try:
                message = self._stream.receive(timeout=None)
            except Exception:
                return  # connection closed
            if message["type"] == protocol.NOTIFY:
                table = message["table"]
                self.notify_received += 1
                with self._dirty_lock:
                    self._dirty.add(table)
                for hook in list(self._hooks):
                    hook(table, message.get("op", ""), message.get("seq_no", 0))
            elif message["type"] == protocol.DISCONNECT:
                return

    def on_notify(self, hook: NotifyHook) -> None:
        """Register a callback fired on every incoming NOTIFY."""
        self._hooks.append(hook)

    # ------------------------------------------------------------------
    def mirror(
        self,
        table: str,
        fraction: float = 1.0,
        predicate: Optional[RowPredicate] = None,
        prefill: bool = True,
    ) -> MemoryTable:
        """Create R_M for ``table`` and register with the DBMS (steps 1-6)."""
        if table in self._tables:
            raise SyncError(f"table {table!r} is already mirrored")
        memtable = MemoryTable(table, fraction=fraction, predicate=predicate)
        self._tables[table] = memtable
        first_socket_table = self.server.use_sockets and self._stream is None
        if first_socket_table:
            # Register, then accept the call-back connection the server
            # opens during register_client.  Registration happens in a
            # helper thread so accept() and connect() can rendezvous.
            result: dict[str, Any] = {}

            def register() -> None:
                try:
                    result["cu_id"] = self.server.register_client(
                        table, self.host, self.port, self.user_id
                    )
                except Exception as exc:  # pragma: no cover - plumbing
                    result["error"] = exc

            thread = threading.Thread(target=register, daemon=True)
            thread.start()
            self._accept_callback_connection()
            thread.join(timeout=5.0)
            if "error" in result:
                raise result["error"]
            self._cu_ids[table] = result["cu_id"]
        else:
            self._cu_ids[table] = self.server.register_client(
                table, self.host, self.port, self.user_id
            )
        if prefill:
            self.refresh(table, full=True)
        return memtable

    def table(self, name: str) -> MemoryTable:
        try:
            return self._tables[name]
        except KeyError:
            raise SyncError(f"table {name!r} is not mirrored") from None

    # ------------------------------------------------------------------
    def dirty_tables(self) -> set[str]:
        """Tables with NOTIFYs not yet refreshed (socket mode)."""
        with self._dirty_lock:
            return set(self._dirty)

    def wait_dirty(self, table: str, timeout: float = 5.0) -> bool:
        """Poll until ``table`` is flagged dirty (testing convenience)."""
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._dirty_lock:
                if table in self._dirty:
                    return True
            time.sleep(0.001)
        return False

    def refresh(self, table: str, full: bool = False) -> dict[str, int]:
        """Step 8: pull changed rows from R_D and fold them into R_M.

        Returns counters: pulled inserts/updates/deletes.  With
        ``full=True``, the entire table is pulled (initial fill).
        """
        memtable = self.table(table)
        base = self.database.table(table)
        stats = {"upserts": 0, "deletes": 0}
        if full:
            # Take the current notification horizon first, so changes that
            # land during the scan are re-pulled on the next refresh.
            newest, _changes = self.center.changes_since(table, memtable.last_seq_no)
            for row in base.rows():
                memtable.apply_upsert(row)
                stats["upserts"] += 1
            memtable.last_seq_no = newest
        else:
            newest, changes = self.center.changes_since(table, memtable.last_seq_no)
            for tid, op in changes:
                if op == "delete":
                    memtable.apply_delete(tid)
                    stats["deletes"] += 1
                else:
                    row = base.get(tid)
                    if row is None:
                        memtable.apply_delete(tid)
                        stats["deletes"] += 1
                    else:
                        memtable.apply_upsert(row)
                        stats["upserts"] += 1
            memtable.last_seq_no = newest
        with self._dirty_lock:
            self._dirty.discard(table)
        self.server.update_client_seq(self._cu_ids[table], memtable.last_seq_no)
        return stats

    # ------------------------------------------------------------------
    def write_back(self, table: str, tid: int, column: str, value: Any) -> None:
        """Step 9: propagate a local R_M edit to R_D.

        The DBMS-side trigger will emit a NOTIFY for this change; the
        memtable remembers the pending write so the echo is processed
        "in a smart way to avoid redundant work".
        """
        memtable = self.table(table)
        memtable.stage_write(tid, column, value)
        self.database.update_by_tid(table, tid, {column: value})

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Step 10: disconnect and remove ConnectedUser entries."""
        if self._closed:
            return
        self._closed = True
        if not self.server.use_sockets:
            self.center.remove_listener(self._on_local_notify)
        for table, cu_id in self._cu_ids.items():
            self.server.unregister_client(cu_id)
        self._cu_ids.clear()
        self._tables.clear()
        if self._stream is not None:
            self._stream.close()
        if self._listener is not None:
            self._listener.close()
