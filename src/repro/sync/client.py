"""Client-side synchronization: listening socket, R_M refresh, write-back.

One :class:`SyncClient` plays the role of the "connection manager" on a
visualization host (Section VI-C): it owns a listening socket, registers
its memory tables with the DBMS server, accepts the DBMS's call-back
connection, and counts NOTIFY messages.  The visualization software
"may decide what are the appropriate moments to refresh the display"
(step 8) -- so NOTIFYs only raise a dirty flag; :meth:`refresh` performs
the actual pull.

The client talks to the database through direct method calls (standing in
for JDBC): in the paper's deployment the client host holds a DB
connection too; here both ends share the process, while the *notification
path* still crosses a real TCP socket when ``use_sockets=True``.

Fault tolerance (beyond the paper): the client watches the callback
connection's liveness -- any inbound message (NOTIFY or the server's
PING, which it answers with PONG) refreshes a deadline; when the stream
errors out or falls silent past ``heartbeat_timeout``, the client

1. marks every mirror dirty and flips ``status`` to ``"reconnecting"``
   (satellite of the paper's step 8: a frozen link must never look like
   a quiet one);
2. re-attaches via :meth:`SyncServer.reconnect_client` under an
   exponential-backoff :class:`~repro.retry.RetryPolicy`, then *replays*
   every notification it missed from the server-side Notification table
   (``seq_no > last_seq_no`` -- the same invariant that protects those
   rows from purging);
3. failing that, **degrades to polling**: it subscribes to the
   :class:`NotificationCenter` in-process (the ``use_sockets=False``
   path) so dirty flags and :meth:`refresh` keep working, and flags the
   condition via ``status == "degraded"``.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Callable, Optional

from ..db.database import Database
from ..errors import SyncError
from ..obs.runtime import OBS
from ..obs.trace import SpanContext
from ..retry import RetryPolicy
from . import protocol
from .memtable import MemoryTable, RowPredicate
from .notification import NotificationCenter
from .server import SyncServer

Row = dict[str, Any]

#: Callback invoked (table, op, seq_no) whenever a NOTIFY arrives.
NotifyHook = Callable[[str, str, int], None]

#: Callback invoked (status, reason) on every connection-state change.
StatusHook = Callable[[str, str], None]

# Connection states (the ``status`` property).
IDLE = "idle"  # socket mode, nothing mirrored yet
CONNECTED = "connected"  # live callback connection
RECONNECTING = "reconnecting"  # transport lost, backoff in progress
DEGRADED = "degraded"  # gave up on sockets; polling the center
POLLING = "polling"  # in-process mode by construction
CLOSED = "closed"


def default_reconnect_policy() -> RetryPolicy:
    """Backoff used when none is supplied: 6 tries over ~1.5 s."""
    return RetryPolicy(
        max_attempts=6,
        base_delay=0.05,
        multiplier=2.0,
        max_delay=0.5,
        jitter=0.5,
        retryable=(OSError, SyncError),
    )


class SyncClient:
    """A visualization host's connection manager plus its R_M tables."""

    def __init__(
        self,
        server: SyncServer,
        host: str = "127.0.0.1",
        user_id: Optional[int] = None,
        reconnect: Optional[RetryPolicy] = None,
        auto_reconnect: bool = True,
        heartbeat_timeout: Optional[float] = None,
    ) -> None:
        self.server = server
        self.database: Database = server.database
        self.center: NotificationCenter = server.center
        self.host = host
        self.user_id = user_id
        self.auto_reconnect = auto_reconnect
        self.reconnect_policy = reconnect or default_reconnect_policy()
        if heartbeat_timeout is None and server.heartbeat_interval is not None:
            # Give the server's pinger generous slack before declaring death.
            heartbeat_timeout = server.heartbeat_interval * 8
        self.heartbeat_timeout = heartbeat_timeout
        self._tables: dict[str, MemoryTable] = {}
        self._cu_ids: dict[str, int] = {}
        self._dirty: set[str] = set()
        self._dirty_lock = threading.Lock()
        # Per-table refresh serialization: the RefreshDriver's loop and an
        # explicit flush() may call refresh concurrently; without this
        # both would take the same changes_since snapshot and apply it
        # twice.
        self._refresh_locks: dict[str, threading.Lock] = {}
        self._refresh_locks_guard = threading.Lock()
        #: Capabilities negotiated with the server (socket mode only).
        self.server_caps: frozenset[str] = frozenset()
        self.notify_received = 0
        self.batch_notifies_received = 0
        self._hooks: list[NotifyHook] = []
        self._status_hooks: list[StatusHook] = []
        self._listener: Optional[socket.socket] = None
        self._reader: Optional[threading.Thread] = None
        self._stream: Optional[protocol.MessageStream] = None
        self.port = 0
        self._closed = False
        self._state_lock = threading.Lock()
        self._last_rx = time.monotonic()
        self._monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        self._reconnector: Optional[threading.Thread] = None
        self.connection_lost_reason: Optional[str] = None
        # Counters (tests and dashboards read these).
        self.reconnects = 0
        self.replayed_notifications = 0
        self.pongs_sent = 0
        #: Real (non-shutdown) accept failures on the callback listener.
        self.accept_failures = 0
        #: Hook invocations that raised (and were contained); a failing
        #: observer must never take the read-loop or reconnect thread
        #: down with it.
        self.hook_failures = 0
        #: table -> span context of the last completed refresh, so later
        #: pipeline stages (layout, display) can join the trace.
        self._refresh_contexts: dict[str, Any] = {}
        #: table -> (seq_no, (trace_id, span_id, sent_ns)) decoded from
        #: the newest NOTIFY/NOTIFYB frame's ``ctx`` field.  This is the
        #: *cross-socket* trace bridge: unlike the tracer's link
        #: registry it needs no shared memory with the server side.
        self._frame_contexts: dict[str, tuple[int, tuple[int, int, int]]] = {}
        if server.use_sockets:
            self.status = IDLE
            self._open_listener()
        else:
            # In-process transport: dirty flags come straight from the
            # notification center instead of a socket reader thread.
            self.status = POLLING
            self.center.add_listener(self._on_local_notify)

    def _on_local_notify(self, table: str, op: str, seq_no: int) -> None:
        if table not in self._tables:
            return
        self.notify_received += 1
        if OBS.enabled:
            OBS.metrics.counter("sync.client.messages", type="notify").inc()
        with self._dirty_lock:
            self._dirty.add(table)
        self._fire_notify_hooks(table, op, seq_no)

    def _fire_notify_hooks(self, table: str, op: str, seq_no: int) -> None:
        """Invoke notify hooks, containing their failures.

        Hooks are user code running on liveness-critical threads (the
        socket read loop, the reconnector); one raising observer must not
        kill delivery for everyone else.
        """
        for hook in list(self._hooks):
            try:
                hook(table, op, seq_no)
            except Exception:
                self.hook_failures += 1
                OBS.metrics.counter("sync.client.hook_failures", kind="notify").inc()

    # ------------------------------------------------------------------
    # Status surface
    @property
    def connection_lost(self) -> bool:
        """True while the socket path is down (reconnecting or degraded)."""
        return self.status in (RECONNECTING, DEGRADED)

    def on_notify(self, hook: NotifyHook) -> None:
        """Register a callback fired on every incoming NOTIFY."""
        self._hooks.append(hook)

    def on_status(self, hook: StatusHook) -> None:
        """Register a callback fired on every connection-state change."""
        self._status_hooks.append(hook)

    def _set_status(self, status: str, reason: str) -> None:
        self.status = status
        for hook in list(self._status_hooks):
            # Status hooks run on the reader/reconnector threads; a hook
            # that raises must not abort recovery or skip later hooks.
            try:
                hook(status, reason)
            except Exception:
                self.hook_failures += 1
                OBS.metrics.counter("sync.client.hook_failures", kind="status").inc()

    # ------------------------------------------------------------------
    def _open_listener(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(4)
        self._listener = listener
        self.port = listener.getsockname()[1]

    def _accept_callback_connection(self, timeout: float = 5.0) -> None:
        """Accept the DBMS's call-back connection and handshake (step 6)."""
        assert self._listener is not None
        try:
            self._listener.settimeout(timeout)
            sock, _addr = self._listener.accept()
        except socket.timeout:
            raise SyncError("DBMS never connected back") from None
        except OSError as exc:
            # A mid-accept OSError is expected exactly once: when close()
            # tears down the listener under us.  Anything else is a real
            # accept failure (fd exhaustion, listener died) and must be
            # visible, not folded into the shutdown path.
            if self._closed:
                raise SyncError("listener closed during shutdown") from None
            self.accept_failures += 1
            OBS.metrics.counter("sync.client.accept_failures").inc()
            raise SyncError(f"listener unusable: {exc}") from None
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        stream = protocol.MessageStream(sock)
        self.server_caps = protocol.client_handshake(
            stream, caps=[protocol.CAP_BATCH, protocol.CAP_TRACE]
        )
        self._stream = stream
        self._last_rx = time.monotonic()
        self._reader = threading.Thread(
            target=self._read_loop, args=(stream,), daemon=True
        )
        self._reader.start()
        self._ensure_monitor()

    def _read_loop(self, stream: protocol.MessageStream) -> None:
        while not self._closed:
            try:
                message = stream.receive(timeout=None)
            except Exception as exc:
                # Never swallow a transport death silently: unless this
                # client is closing (or the loop belongs to a superseded
                # stream), hand off to connection-loss recovery.
                if not self._closed and stream is self._stream:
                    self._connection_lost(f"read failed: {exc}")
                return
            self._last_rx = time.monotonic()
            kind = message["type"]
            if OBS.enabled:
                # Lowercase so socket and in-process paths share series.
                OBS.metrics.counter("sync.client.messages", type=kind.lower()).inc()
            if kind == protocol.NOTIFY:
                table = message["table"]
                self.notify_received += 1
                self._note_frame_context(
                    table, message.get("seq_no", 0), message
                )
                with self._dirty_lock:
                    self._dirty.add(table)
                self._fire_notify_hooks(
                    table, message.get("op", ""), message.get("seq_no", 0)
                )
            elif kind == protocol.NOTIFY_BATCH:
                table = message["table"]
                try:
                    events = protocol.batch_events(message)
                except SyncError:
                    # Malformed frame from a confused peer: the dirty
                    # flag still forces a pull, so nothing is lost.
                    events = []
                self.batch_notifies_received += 1
                self.notify_received += len(events)
                self._note_frame_context(table, message.get("hi", 0), message)
                with self._dirty_lock:
                    self._dirty.add(table)
                for op, seq_no in events:
                    self._fire_notify_hooks(table, op, seq_no)
            elif kind == protocol.PING:
                # Count before sending: once the frame is on the wire the
                # server (or a test polling its pongs_received) may observe
                # it ahead of this thread's next statement.  On send
                # failure the link is torn down anyway, so one phantom
                # count never survives a healthy run.
                self.pongs_sent += 1
                try:
                    stream.send(protocol.pong(message.get("seq", 0)))
                except OSError as exc:
                    if not self._closed and stream is self._stream:
                        self._connection_lost(f"pong send failed: {exc}")
                    return
            elif kind == protocol.DISCONNECT:
                if not self._closed and stream is self._stream:
                    self._connection_lost("server sent DISCONNECT")
                return

    # ------------------------------------------------------------------
    # Liveness monitor
    def _ensure_monitor(self) -> None:
        if self.heartbeat_timeout is None or self._monitor is not None:
            return
        self._monitor = threading.Thread(target=self._monitor_loop, daemon=True)
        self._monitor.start()

    def _monitor_loop(self) -> None:
        assert self.heartbeat_timeout is not None
        interval = max(self.heartbeat_timeout / 4.0, 0.01)
        while not self._monitor_stop.wait(interval):
            if self._closed:
                return
            if self.status != CONNECTED:
                continue
            if time.monotonic() - self._last_rx > self.heartbeat_timeout:
                self._connection_lost("heartbeat timeout")

    # ------------------------------------------------------------------
    # Connection-loss recovery
    def _connection_lost(self, reason: str) -> None:
        """Idempotent entry point for every detected transport death."""
        with self._state_lock:
            if self._closed or self.status not in (CONNECTED, IDLE):
                return
            stale = self._stream
            self._stream = None
            self.connection_lost_reason = reason
            self.status = RECONNECTING
        # Rare event: always counted, enabled or not.
        OBS.metrics.counter("sync.client.connection_lost").inc()
        if stale is not None:
            stale.close()
        # A dead link means *unknown* staleness: flag every mirror so
        # dirty_tables()/RefreshDriver consumers pull rather than trust.
        with self._dirty_lock:
            self._dirty.update(self._tables)
        self._set_status(RECONNECTING, reason)
        if self.auto_reconnect:
            self._reconnector = threading.Thread(
                target=self._reconnect_loop, daemon=True
            )
            self._reconnector.start()
        else:
            self._degrade(f"auto_reconnect disabled ({reason})")

    def _reconnect_loop(self) -> None:
        policy = self.reconnect_policy
        last_error: Optional[BaseException] = None
        for attempt in policy.attempts():
            if self._closed:
                return
            try:
                self._reattach()
            except Exception as exc:
                last_error = exc
                continue
            with self._state_lock:
                if self._closed:
                    return
                self.status = CONNECTED
                self.reconnects += 1
            OBS.metrics.counter("sync.client.reconnects").inc()
            self._replay_missed()
            self._set_status(CONNECTED, f"reconnected on attempt {attempt.number}")
            return
        self._degrade(
            f"reconnect failed after {policy.max_attempts} attempts: {last_error}"
        )

    def _reattach(self) -> None:
        """One reconnection attempt: rendezvous accept() with the server's
        connect-back, exactly like the initial registration."""
        result: dict[str, Any] = {}

        def kick() -> None:
            try:
                result["ok"] = self.server.reconnect_client(self.host, self.port)
            except Exception as exc:
                result["error"] = exc

        thread = threading.Thread(target=kick, daemon=True)
        thread.start()
        try:
            self._accept_callback_connection(timeout=2.0)
        except SyncError:
            thread.join(timeout=1.0)
            raise result.get("error", SyncError("reconnect rendezvous failed"))
        thread.join(timeout=5.0)
        if "error" in result:
            raise result["error"]

    def _replay_missed(self) -> None:
        """Seq-no catch-up: re-deliver every notification that fired while
        the transport was down (the paper's "purge only below every
        client's last_seq_no" invariant guarantees they still exist)."""
        for table, memtable in list(self._tables.items()):
            missed = self.center.notifications_since(table, memtable.last_seq_no)
            if not missed:
                continue
            with self._dirty_lock:
                self._dirty.add(table)
            for seq_no, op in missed:
                self.notify_received += 1
                self.replayed_notifications += 1
                self._fire_notify_hooks(table, op, seq_no)

    def _degrade(self, reason: str) -> None:
        """Fall back to polling the NotificationCenter in-process.

        Views keep refreshing -- dirty flags now come from the center's
        listener fan-out and :meth:`refresh` never needed the socket --
        but the condition is flagged (``status == "degraded"``) so
        operators know the push path is gone."""
        with self._state_lock:
            if self._closed or self.status == DEGRADED:
                return
            self.status = DEGRADED
        OBS.metrics.counter("sync.client.degrades").inc()
        self.center.add_listener(self._on_local_notify)
        self._replay_missed()
        self._set_status(DEGRADED, reason)

    # ------------------------------------------------------------------
    def mirror(
        self,
        table: str,
        fraction: float = 1.0,
        predicate: Optional[RowPredicate] = None,
        prefill: bool = True,
    ) -> MemoryTable:
        """Create R_M for ``table`` and register with the DBMS (steps 1-6)."""
        if table in self._tables:
            raise SyncError(f"table {table!r} is already mirrored")
        memtable = MemoryTable(table, fraction=fraction, predicate=predicate)
        self._tables[table] = memtable
        first_socket_table = (
            self.server.use_sockets and self._stream is None and self.status == IDLE
        )
        if first_socket_table:
            # Register, then accept the call-back connection the server
            # opens during register_client.  Registration happens in a
            # helper thread so accept() and connect() can rendezvous.
            result: dict[str, Any] = {}

            def register() -> None:
                try:
                    result["cu_id"] = self.server.register_client(
                        table, self.host, self.port, self.user_id
                    )
                except Exception as exc:  # pragma: no cover - plumbing
                    result["error"] = exc

            thread = threading.Thread(target=register, daemon=True)
            thread.start()
            try:
                self._accept_callback_connection()
            except Exception:
                # Let the server finish rolling back the registration
                # before surfacing the failure, so no ConnectedUser row
                # outlives a mirror() that raised.
                thread.join(timeout=5.0)
                del self._tables[table]
                raise
            thread.join(timeout=5.0)
            if "error" in result:
                del self._tables[table]
                raise result["error"]
            self._cu_ids[table] = result["cu_id"]
            self.status = CONNECTED
        else:
            self._cu_ids[table] = self.server.register_client(
                table, self.host, self.port, self.user_id
            )
        if prefill:
            self.refresh(table, full=True)
        return memtable

    def table(self, name: str) -> MemoryTable:
        try:
            return self._tables[name]
        except KeyError:
            raise SyncError(f"table {name!r} is not mirrored") from None

    # ------------------------------------------------------------------
    def dirty_tables(self) -> set[str]:
        """Tables with NOTIFYs not yet refreshed (socket mode).

        While the connection is lost every mirrored table reports dirty:
        without a transport the client cannot rule out missed changes."""
        with self._dirty_lock:
            return set(self._dirty)

    def wait_dirty(self, table: str, timeout: float = 5.0) -> bool:
        """Poll until ``table`` is flagged dirty (testing convenience)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._dirty_lock:
                if table in self._dirty:
                    return True
            time.sleep(0.001)
        return False

    def wait_status(self, status: str, timeout: float = 5.0) -> bool:
        """Poll until the client reaches ``status`` (testing convenience)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.status == status:
                return True
            time.sleep(0.001)
        return False

    def refresh(self, table: str, full: bool = False) -> dict[str, int]:
        """Step 8: pull changed rows from R_D and fold them into R_M.

        Returns counters: pulled inserts/updates/deletes.  With
        ``full=True``, the entire table is pulled (initial fill).

        This path never touches the notification socket -- it reads the
        database directly -- so it keeps working while the client is
        reconnecting or degraded (stale-but-consistent views, then
        convergence, rather than a frozen display).

        Refreshes of one table are serialized: the RefreshDriver's loop
        and an explicit ``flush()`` would otherwise race, take the same
        seq snapshot, and apply the same delta twice.
        """
        with self._refresh_lock(table):
            if not OBS.enabled:
                return self._refresh_impl(table, full)
            with OBS.tracer.span(
                "sync.mirror_refresh", tags={"table": table, "full": full}
            ) as span:
                stats = self._refresh_impl(table, full, span=span)
                span.set_tag("upserts", stats["upserts"])
                span.set_tag("deletes", stats["deletes"])
            OBS.metrics.histogram("sync.refresh_ms", table=table).observe(
                span.duration_ms
            )
            self._refresh_contexts[table] = span.context()
            return stats

    def _refresh_lock(self, table: str) -> threading.Lock:
        with self._refresh_locks_guard:
            lock = self._refresh_locks.get(table)
            if lock is None:
                lock = self._refresh_locks[table] = threading.Lock()
            return lock

    def last_refresh_context(self, table: str) -> Optional[Any]:
        """Span context of the latest traced refresh of ``table``.

        Lets downstream pipeline stages (the refresh driver's listeners:
        delta handlers, layout, display) join the propagation trace.
        Returns ``None`` when tracing is off or no refresh ran yet.
        """
        return self._refresh_contexts.get(table)

    def _note_frame_context(
        self, table: str, seq_no: int, message: dict[str, Any]
    ) -> None:
        """Remember the newest frame-carried trace context for ``table``.

        Called from the socket read loop on every NOTIFY/NOTIFYB; a peer
        without the ``trace`` capability (or with tracing off) sends no
        ``ctx`` field and this is a no-op.
        """
        ctx = protocol.frame_trace_context(message)
        if ctx is None:
            return
        with self._dirty_lock:
            previous = self._frame_contexts.get(table)
            if previous is None or seq_no >= previous[0]:
                self._frame_contexts[table] = (seq_no, ctx)

    def _join_notify_trace(self, span: Any, table: str, newest: int) -> None:
        """Adopt the notify span that produced ``newest`` as our parent.

        The notification protocol shares no thread or call stack with
        the refresh, so the parent context must arrive out of band.
        Preferred bridge: the ``ctx`` field the server puts on
        NOTIFY/NOTIFYB frames (works across real sockets, no shared
        memory).  Fallback: the in-process link registry keyed
        ``(table, seq_no)`` -- polling mode, legacy servers, replayed
        notifications.  Either bridge's origin timestamp yields the
        NOTIFY -> mirror-applied latency.
        """
        with self._dirty_lock:
            stored = self._frame_contexts.get(table)
        if stored is not None and stored[0] >= newest:
            # A frame covering this refresh's horizon already arrived.
            seq, (trace_id, span_id, sent_ns) = stored
            span.set_parent(SpanContext(trace_id, span_id))
            span.set_tag("ctx_source", "frame")
            self._observe_notify_latency(table, sent_ns)
            return
        linked = OBS.tracer.lookup_link(("notify", table, newest))
        if linked is not None:
            context, registered_at_ns = linked
            span.set_parent(context)
            span.set_tag("ctx_source", "link")
            self._observe_notify_latency(table, registered_at_ns)
            return
        if stored is not None:
            # The refresh outran the socket (the write is visible in the
            # database but its frame is still in flight): the latest
            # received frame is the best-known origin.
            seq, (trace_id, span_id, sent_ns) = stored
            span.set_parent(SpanContext(trace_id, span_id))
            span.set_tag("ctx_source", "frame")
            self._observe_notify_latency(table, sent_ns)

    @staticmethod
    def _observe_notify_latency(table: str, origin_ns: int) -> None:
        OBS.metrics.histogram("sync.notify_to_applied_ms", table=table).observe(
            (time.perf_counter_ns() - origin_ns) / 1e6
        )

    def _refresh_impl(
        self, table: str, full: bool = False, span: Optional[Any] = None
    ) -> dict[str, int]:
        memtable = self.table(table)
        base = self.database.table(table)
        stats = {"upserts": 0, "deletes": 0}
        if full:
            # Take the current notification horizon first, so changes that
            # land during the scan are re-pulled on the next refresh.
            newest, _changes = self.center.changes_since(table, memtable.last_seq_no)
            rows = list(base.rows())
            memtable.apply_batch(rows, [])
            stats["upserts"] += len(rows)
            memtable.last_seq_no = newest
        else:
            newest, changes = self.center.changes_since(table, memtable.last_seq_no)
            # Resolve row images first, then fold the whole delta into the
            # mirror under ONE memtable lock acquisition (ops stay in seq
            # order, so repeated tids replay correctly).
            ops: list[tuple[str, Any]] = []
            for tid, op in changes:
                if op == "delete":
                    ops.append(("delete", tid))
                    stats["deletes"] += 1
                else:
                    row = base.get(tid)
                    if row is None:
                        ops.append(("delete", tid))
                        stats["deletes"] += 1
                    else:
                        ops.append(("upsert", row))
                        stats["upserts"] += 1
            memtable.apply_ops(ops)
            memtable.last_seq_no = newest
        if span is not None:
            self._join_notify_trace(span, table, newest)
        with self._dirty_lock:
            self._dirty.discard(table)
        self.server.update_client_seq(self._cu_ids[table], memtable.last_seq_no)
        return stats

    # ------------------------------------------------------------------
    def write_back(self, table: str, tid: int, column: str, value: Any) -> None:
        """Step 9: propagate a local R_M edit to R_D.

        The DBMS-side trigger will emit a NOTIFY for this change; the
        memtable remembers the pending write so the echo is processed
        "in a smart way to avoid redundant work".
        """
        memtable = self.table(table)
        memtable.stage_write(tid, column, value)
        self.database.update_by_tid(table, tid, {column: value})

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Step 10: disconnect and remove ConnectedUser entries."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            was_polling = self.status in (POLLING, DEGRADED)
            self.status = CLOSED
        self._monitor_stop.set()
        if was_polling:
            self.center.remove_listener(self._on_local_notify)
        for table, cu_id in self._cu_ids.items():
            self.server.unregister_client(cu_id)
        self._cu_ids.clear()
        self._tables.clear()
        if self._stream is not None:
            self._stream.close()
        if self._listener is not None:
            self._listener.close()
