"""The Notification table and its feeding triggers.

"Whenever one such change happens, the corresponding trigger adds to the
Notification table stored in the database one tuple of the form
``(seq_no, ts, tn, op)``" (Section VI-C).  Alongside, a compact tombstone
table records the tids touched by each notification so clients can pull
exactly the changed rows later (the notification itself stays minimal;
tombstones are server-side state, never sent over the wire).

The center also fans each notification out to in-process listeners --
the :class:`~repro.sync.server.SyncServer` registers one to push NOTIFY
messages to remote clients.

Propagation policies (Section V's P1/P2/P3) are configured per table via
:meth:`NotificationCenter.set_policy`: under a non-immediate policy the
trigger path *buffers* change sets in a :class:`DeltaCoalescer` and a
flush records the net delta as one seq-no batch, fanned out to
batch-aware listeners in a single call.

Locking: the database fires triggers while holding its global lock, so
the write path enters here as ``db lock -> center lock``.  Every center
method that may run on another thread and touch both (flush, purge, the
replay readers) therefore acquires the *database* lock first -- one
consistent order, no deadlock, and replay scans see a stable snapshot
instead of racing a concurrent purge (the RefreshDriver/purge race).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from ..core import datamodel
from ..db.database import Database
from ..db.expression import col
from ..db.schema import TID, Column
from ..db.table import ChangeSet
from ..db.types import INTEGER, TEXT
from ..errors import SyncError
from ..obs.runtime import OBS
from .batching import IMMEDIATE, BatchBuffer, PropagationPolicy

T_CHANGED_ROWS = "ediflow_changed_rows"

#: Listener signature: (table_name, op, seq_no).
Listener = Callable[[str, str, int], None]

#: Batch listener signature: (table_name, [(op, seq_no), ...]) -- one call
#: per recorded event group (singletons included), in seq order.
BatchListener = Callable[[str, list[tuple[str, int]]], None]


class NotificationCenter:
    """Watches tables and appends to the Notification table."""

    def __init__(self, database: Database) -> None:
        self.database = database
        datamodel.install_core_schema(database)
        if not database.has_table(T_CHANGED_ROWS):
            database.create_table(
                T_CHANGED_ROWS,
                [
                    Column("seq_no", INTEGER, nullable=False),
                    Column("table_name", TEXT, nullable=False),
                    Column("tid", INTEGER, nullable=False),
                    Column("op", TEXT, nullable=False),
                ],
            )
        # Replay queries (changes_since / notifications_since) are range
        # scans on seq_no -- keep both tables sorted-indexed so a client
        # pulling a small tail never pays for the whole log.
        for name in (datamodel.T_NOTIFICATION, T_CHANGED_ROWS):
            table = database.table(name)
            if not table.has_index(f"ix_{name}_seq"):
                table.create_index(f"ix_{name}_seq", ("seq_no",), sorted=True)
        self._watched: set[str] = set()
        self._listeners: list[Listener] = []
        self._batch_listeners: list[BatchListener] = []
        self._lock = threading.RLock()
        self._next_seq = self._initial_seq()
        # Propagation policies (P1/P2/P3): table -> policy; absent means
        # immediate.  Buffered changes live in the batch buffer.
        self._policies: dict[str, PropagationPolicy] = {}
        self._buffer = BatchBuffer()
        self._flush_thread: Optional[threading.Thread] = None
        self._flush_stop = threading.Event()
        self._closed = False
        # Counters (tests and dashboards read these).
        self.flushes = 0
        self.coalesced_ops = 0

    def _initial_seq(self) -> int:
        table = self.database.table(datamodel.T_NOTIFICATION)
        index = table.find_sorted_index("seq_no")
        highest = index.max_key() if index is not None else None
        if highest is None:
            highest = 0
            for row in table.scan():
                if row["seq_no"] > highest:
                    highest = row["seq_no"]
        return highest + 1

    # ------------------------------------------------------------------
    def watch(self, table: str) -> None:
        """Install CREATE/UPDATE/DELETE monitoring on ``table``."""
        if table in (datamodel.T_NOTIFICATION, T_CHANGED_ROWS):
            raise SyncError(f"cannot watch the notification machinery table {table!r}")
        with self._lock:
            if table in self._watched:
                return
            self.database.table(table)  # must exist
            self.database.on(
                table,
                ("insert", "update", "delete"),
                self._on_change,
                name=f"notify_{table}",
            )
            self._watched.add(table)

    def unwatch(self, table: str) -> None:
        self.flush(table)
        with self._lock:
            if table not in self._watched:
                return
            self.database.drop_trigger(f"notify_{table}")
            self._watched.discard(table)

    def watched_tables(self) -> list[str]:
        return sorted(self._watched)

    def add_listener(self, listener: Listener) -> None:
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def add_batch_listener(self, listener: BatchListener) -> None:
        """Register a listener receiving one call per recorded batch."""
        with self._lock:
            self._batch_listeners.append(listener)

    def remove_batch_listener(self, listener: BatchListener) -> None:
        with self._lock:
            if listener in self._batch_listeners:
                self._batch_listeners.remove(listener)

    # ------------------------------------------------------------------
    # Propagation policies
    def set_policy(self, table: str, policy: PropagationPolicy) -> None:
        """Configure how changes of ``table`` propagate (P1/P2/P3).

        Switching policies never strands queued changes: anything pending
        under the old policy is flushed first.
        """
        self.flush(table)
        with self._lock:
            if policy.buffers:
                self._policies[table] = policy
            else:
                self._policies.pop(table, None)
        if policy.max_delay_ms is not None:
            self._ensure_flush_thread()

    def policy(self, table: str) -> PropagationPolicy:
        with self._lock:
            return self._policies.get(table, IMMEDIATE)

    def pending_ops(self, table: str) -> int:
        """Buffered (not yet flushed) raw operations for ``table``."""
        with self._lock:
            return self._buffer.pending_ops(table)

    # ------------------------------------------------------------------
    # Time-based flushing
    def _ensure_flush_thread(self) -> None:
        with self._lock:
            if self._flush_thread is not None or self._closed:
                return
            self._flush_thread = threading.Thread(
                target=self._flush_loop, daemon=True
            )
            self._flush_thread.start()

    def _flush_interval(self) -> float:
        delays = [
            p.max_delay_ms for p in self._policies.values() if p.max_delay_ms
        ]
        if not delays:
            return 0.05
        return min(0.05, max(0.001, min(delays) / 1000.0 / 4.0))

    def _flush_loop(self) -> None:
        while not self._flush_stop.wait(self._flush_interval()):
            for table in self.due_tables():
                self.flush(table)

    def due_tables(self) -> list[str]:
        """Tables whose buffered changes have exceeded their time bound."""
        with self._lock:
            due = []
            for table in self._buffer.keys():
                policy = self._policies.get(table)
                if policy is None:
                    due.append(table)  # policy dropped with changes queued
                elif policy.max_delay_ms is not None and (
                    self._buffer.age_ms(table) >= policy.max_delay_ms
                ):
                    due.append(table)
            return due

    def close(self) -> None:
        """Flush everything and stop the background flusher."""
        self._closed = True
        self._flush_stop.set()
        self.flush_all()
        thread = self._flush_thread
        if thread is not None:
            thread.join(timeout=2.0)
            self._flush_thread = None

    # ------------------------------------------------------------------
    def _on_change(self, change: ChangeSet) -> None:
        # Trigger context: the database lock is held here, so taking the
        # center lock respects the global db -> center order.
        with self._lock:
            policy = self._policies.get(change.table)
            if policy is not None:
                coalescer = self._buffer.add(change.table, change)
                due = policy.should_flush(
                    coalescer.raw_ops, self._buffer.age_ms(change.table)
                )
                if not due:
                    return
        if policy is not None:
            self.flush(change.table)
            return
        if OBS.enabled:
            with OBS.tracer.span(
                "sync.notify", tags={"table": change.table}
            ) as span:
                notified, listeners, batchers = self._record(change)
                span.set_tag("notifications", len(notified))
                self._register_links(notified, span)
                self._fan_out(change.table, notified, listeners, batchers)
            return
        notified, listeners, batchers = self._record(change)
        self._fan_out(change.table, notified, listeners, batchers)

    @staticmethod
    def _register_links(notified: list[tuple[str, str, int]], span: Any) -> None:
        # Register the notify context under (table, seq_no) so the
        # mirror refresh -- on another thread, reached only through
        # the protocol -- can join this trace, and so the
        # NOTIFY->applied latency has a start timestamp.
        context = span.context()
        for table, op, seq_no in notified:
            OBS.tracer.link(("notify", table, seq_no), context)
            OBS.metrics.counter("sync.notifications", op=op).inc()

    def flush(self, table: str) -> int:
        """Record and fan out the net delta buffered for ``table``.

        Returns the number of net operations shipped (0 when nothing was
        pending).  Safe to call from any thread and at any time,
        including under an immediate policy (no-op).
        """
        # Acquire the database lock first: the trigger path arrives with
        # it held, so a flusher thread must take the same order.
        with self.database.lock:
            with self._lock:
                coalescer = self._buffer.take(table)
            if coalescer is None:
                return 0
            away = coalescer.coalesced_away()
            if coalescer.is_empty():
                # The batch annihilated itself (e.g. insert+delete per
                # tid): nothing to record, but the savings still count.
                self.coalesced_ops += away
                if away and OBS.enabled:
                    OBS.metrics.counter(
                        "sync.coalesced_away", table=table
                    ).inc(away)
                return 0
            net = coalescer.net_changeset()
            net_ops = coalescer.net_ops()
            started = time.perf_counter()
            if OBS.enabled:
                with OBS.tracer.span(
                    "sync.flush", tags={"table": table, "ops": net_ops}
                ) as span:
                    notified, listeners, batchers = self._record(net)
                    self._register_links(notified, span)
                self._observe_flush(table, net_ops, away, started)
            else:
                notified, listeners, batchers = self._record(net)
            self.flushes += 1
            self.coalesced_ops += away
            self._fan_out(table, notified, listeners, batchers)
            return net_ops

    def _observe_flush(
        self, table: str, net_ops: int, away: int, started: float
    ) -> None:
        OBS.metrics.histogram("sync.batch_size", table=table).observe(net_ops)
        OBS.metrics.histogram("sync.flush_ms", table=table).observe(
            (time.perf_counter() - started) * 1000.0
        )
        if away:
            OBS.metrics.counter("sync.coalesced_away", table=table).inc(away)

    def flush_all(self) -> int:
        """Flush every table with buffered changes; returns total net ops."""
        with self._lock:
            tables = self._buffer.keys()
        return sum(self.flush(table) for table in tables)

    def _record(
        self, change: ChangeSet
    ) -> tuple[list[tuple[str, str, int]], list[Listener], list[BatchListener]]:
        events: list[tuple[str, list[int]]] = []
        if change.inserted:
            events.append((datamodel.OP_INSERT, [r[TID] for r in change.inserted]))
        if change.updated:
            events.append(
                (datamodel.OP_UPDATE, [after[TID] for _, after in change.updated])
            )
        if change.deleted:
            events.append((datamodel.OP_DELETE, [r[TID] for r in change.deleted]))
        notified: list[tuple[str, str, int]] = []
        with self.database.lock:
            with self._lock:
                for op, tids in events:
                    seq_no = self._next_seq
                    self._next_seq += 1
                    ts = self.database.now()
                    self.database.insert(
                        datamodel.T_NOTIFICATION,
                        {
                            "seq_no": seq_no,
                            "ts": ts,
                            "table_name": change.table,
                            "op": op,
                        },
                    )
                    self.database.insert_many(
                        T_CHANGED_ROWS,
                        [
                            {
                                "seq_no": seq_no,
                                "table_name": change.table,
                                "tid": tid,
                                "op": op,
                            }
                            for tid in tids
                        ],
                    )
                    notified.append((change.table, op, seq_no))
                listeners = list(self._listeners)
                batchers = list(self._batch_listeners)
        return notified, listeners, batchers

    @staticmethod
    def _fan_out(
        table: str,
        notified: list[tuple[str, str, int]],
        listeners: list[Listener],
        batchers: list[BatchListener],
    ) -> None:
        if not notified:
            return
        events = [(op, seq_no) for _table, op, seq_no in notified]
        for batcher in batchers:
            batcher(table, events)
        for _table, op, seq_no in notified:
            for listener in listeners:
                listener(table, op, seq_no)

    # ------------------------------------------------------------------
    # Client pull support
    def changes_since(
        self, table: str, last_seq_no: int
    ) -> tuple[int, list[tuple[int, str]]]:
        """All ``(tid, op)`` changes on ``table`` after ``last_seq_no``.

        Returns ``(newest_seq_no, changes)``; changes are ordered by
        sequence number so replaying them yields the current state.  The
        snapshot is taken under the database lock so a concurrent purge
        (which deletes log rows) can never shift the scan mid-iteration.
        """
        newest = last_seq_no
        entries: list[tuple[int, int, str]] = []
        with self.database.lock:
            with self._lock:
                for row in self._rows_after(T_CHANGED_ROWS, last_seq_no):
                    if row["table_name"] == table:
                        entries.append((row["seq_no"], row["tid"], row["op"]))
                        if row["seq_no"] > newest:
                            newest = row["seq_no"]
        entries.sort()
        return newest, [(tid, op) for _, tid, op in entries]

    def _rows_after(self, table_name: str, last_seq_no: int):
        """Rows of ``table_name`` with ``seq_no > last_seq_no``.

        Served by the sorted seq_no index when present (the common case:
        a reconnecting client pulls a short tail of a long log), falling
        back to a full scan.  Callers hold the database lock so the
        underlying index cannot shift while the generator runs.
        """
        table = self.database.table(table_name)
        index = table.find_sorted_index("seq_no")
        if index is None:
            for row in table.scan():
                if row["seq_no"] > last_seq_no:
                    yield row
            return
        for tid in index.range(last_seq_no, None, include_low=False):
            row = table.get(tid)
            if row is not None:
                yield row

    def notifications_since(self, table: str, last_seq_no: int) -> list[tuple[int, str]]:
        """All ``(seq_no, op)`` notifications on ``table`` after ``last_seq_no``.

        Used by reconnecting clients to *replay* what they missed while
        their transport was down: the purge horizon (step 11) keeps every
        notification above any connected client's ``last_seq_no``, so the
        replay is lossless.
        """
        entries: list[tuple[int, str]] = []
        with self.database.lock:
            with self._lock:
                for row in self._rows_after(datamodel.T_NOTIFICATION, last_seq_no):
                    if row["table_name"] == table:
                        entries.append((row["seq_no"], row["op"]))
        entries.sort()
        return entries

    def purge(self) -> int:
        """Drop notifications every connected client has already consumed.

        Step 11 of the protocol: the purge horizon is the lowest
        ``last_seq_no`` in the ConnectedUser table -- our ``last_seq_no``
        means "consumed up to and including", so entries at or below the
        horizon are safe to drop.  Returns the number of notification
        rows removed.

        Runs under the database lock (then the center lock) so it is
        serialized against in-flight ``changes_since`` scans -- a refresh
        taking its seq snapshot can never observe a half-purged log.
        """
        with self.database.lock:
            with self._lock:
                connected = self.database.table(datamodel.T_CONNECTED_USER)
                lowest: Optional[int] = None
                for row in connected.scan():
                    seq = row["last_seq_no"]
                    if lowest is None or seq < lowest:
                        lowest = seq
                if lowest is None:
                    # No clients: everything already consumed.
                    lowest = self._next_seq
                removed = self.database.delete(
                    datamodel.T_NOTIFICATION, col("seq_no") <= lowest
                )
                self.database.delete(T_CHANGED_ROWS, col("seq_no") <= lowest)
                return removed
