"""The Notification table and its feeding triggers.

"Whenever one such change happens, the corresponding trigger adds to the
Notification table stored in the database one tuple of the form
``(seq_no, ts, tn, op)``" (Section VI-C).  Alongside, a compact tombstone
table records the tids touched by each notification so clients can pull
exactly the changed rows later (the notification itself stays minimal;
tombstones are server-side state, never sent over the wire).

The center also fans each notification out to in-process listeners --
the :class:`~repro.sync.server.SyncServer` registers one to push NOTIFY
messages to remote clients.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from ..core import datamodel
from ..db.database import Database
from ..db.expression import col
from ..db.schema import TID, Column
from ..db.table import ChangeSet
from ..db.types import INTEGER, TEXT, TIMESTAMP
from ..errors import SyncError
from ..obs.runtime import OBS

T_CHANGED_ROWS = "ediflow_changed_rows"

#: Listener signature: (table_name, op, seq_no).
Listener = Callable[[str, str, int], None]


class NotificationCenter:
    """Watches tables and appends to the Notification table."""

    def __init__(self, database: Database) -> None:
        self.database = database
        datamodel.install_core_schema(database)
        if not database.has_table(T_CHANGED_ROWS):
            database.create_table(
                T_CHANGED_ROWS,
                [
                    Column("seq_no", INTEGER, nullable=False),
                    Column("table_name", TEXT, nullable=False),
                    Column("tid", INTEGER, nullable=False),
                    Column("op", TEXT, nullable=False),
                ],
            )
        # Replay queries (changes_since / notifications_since) are range
        # scans on seq_no -- keep both tables sorted-indexed so a client
        # pulling a small tail never pays for the whole log.
        for name in (datamodel.T_NOTIFICATION, T_CHANGED_ROWS):
            table = database.table(name)
            if not table.has_index(f"ix_{name}_seq"):
                table.create_index(f"ix_{name}_seq", ("seq_no",), sorted=True)
        self._watched: set[str] = set()
        self._listeners: list[Listener] = []
        self._lock = threading.RLock()
        self._next_seq = self._initial_seq()

    def _initial_seq(self) -> int:
        table = self.database.table(datamodel.T_NOTIFICATION)
        index = table.find_sorted_index("seq_no")
        highest = index.max_key() if index is not None else None
        if highest is None:
            highest = 0
            for row in table.scan():
                if row["seq_no"] > highest:
                    highest = row["seq_no"]
        return highest + 1

    # ------------------------------------------------------------------
    def watch(self, table: str) -> None:
        """Install CREATE/UPDATE/DELETE monitoring on ``table``."""
        if table in (datamodel.T_NOTIFICATION, T_CHANGED_ROWS):
            raise SyncError(f"cannot watch the notification machinery table {table!r}")
        with self._lock:
            if table in self._watched:
                return
            self.database.table(table)  # must exist
            self.database.on(
                table,
                ("insert", "update", "delete"),
                self._on_change,
                name=f"notify_{table}",
            )
            self._watched.add(table)

    def unwatch(self, table: str) -> None:
        with self._lock:
            if table not in self._watched:
                return
            self.database.drop_trigger(f"notify_{table}")
            self._watched.discard(table)

    def watched_tables(self) -> list[str]:
        return sorted(self._watched)

    def add_listener(self, listener: Listener) -> None:
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    # ------------------------------------------------------------------
    def _on_change(self, change: ChangeSet) -> None:
        if OBS.enabled:
            with OBS.tracer.span(
                "sync.notify", tags={"table": change.table}
            ) as span:
                notified, listeners = self._record(change)
                span.set_tag("notifications", len(notified))
                # Register the notify context under (table, seq_no) so the
                # mirror refresh -- on another thread, reached only through
                # the protocol -- can join this trace, and so the
                # NOTIFY->applied latency has a start timestamp.
                context = span.context()
                for table, op, seq_no in notified:
                    OBS.tracer.link(("notify", table, seq_no), context)
                    OBS.metrics.counter("sync.notifications", op=op).inc()
                self._fan_out(notified, listeners)
            return
        notified, listeners = self._record(change)
        self._fan_out(notified, listeners)

    def _record(
        self, change: ChangeSet
    ) -> tuple[list[tuple[str, str, int]], list[Listener]]:
        events: list[tuple[str, list[int]]] = []
        if change.inserted:
            events.append((datamodel.OP_INSERT, [r[TID] for r in change.inserted]))
        if change.updated:
            events.append(
                (datamodel.OP_UPDATE, [after[TID] for _, after in change.updated])
            )
        if change.deleted:
            events.append((datamodel.OP_DELETE, [r[TID] for r in change.deleted]))
        notified: list[tuple[str, str, int]] = []
        with self._lock:
            for op, tids in events:
                seq_no = self._next_seq
                self._next_seq += 1
                ts = self.database.now()
                self.database.insert(
                    datamodel.T_NOTIFICATION,
                    {
                        "seq_no": seq_no,
                        "ts": ts,
                        "table_name": change.table,
                        "op": op,
                    },
                )
                self.database.insert_many(
                    T_CHANGED_ROWS,
                    [
                        {
                            "seq_no": seq_no,
                            "table_name": change.table,
                            "tid": tid,
                            "op": op,
                        }
                        for tid in tids
                    ],
                )
                notified.append((change.table, op, seq_no))
            listeners = list(self._listeners)
        return notified, listeners

    @staticmethod
    def _fan_out(
        notified: list[tuple[str, str, int]], listeners: list[Listener]
    ) -> None:
        for table, op, seq_no in notified:
            for listener in listeners:
                listener(table, op, seq_no)

    # ------------------------------------------------------------------
    # Client pull support
    def changes_since(
        self, table: str, last_seq_no: int
    ) -> tuple[int, list[tuple[int, str]]]:
        """All ``(tid, op)`` changes on ``table`` after ``last_seq_no``.

        Returns ``(newest_seq_no, changes)``; changes are ordered by
        sequence number so replaying them yields the current state.
        """
        newest = last_seq_no
        entries: list[tuple[int, int, str]] = []
        for row in self._rows_after(T_CHANGED_ROWS, last_seq_no):
            if row["table_name"] == table:
                entries.append((row["seq_no"], row["tid"], row["op"]))
                if row["seq_no"] > newest:
                    newest = row["seq_no"]
        entries.sort()
        return newest, [(tid, op) for _, tid, op in entries]

    def _rows_after(self, table_name: str, last_seq_no: int):
        """Rows of ``table_name`` with ``seq_no > last_seq_no``.

        Served by the sorted seq_no index when present (the common case:
        a reconnecting client pulls a short tail of a long log), falling
        back to a full scan.
        """
        table = self.database.table(table_name)
        index = table.find_sorted_index("seq_no")
        if index is None:
            for row in table.scan():
                if row["seq_no"] > last_seq_no:
                    yield row
            return
        for tid in index.range(last_seq_no, None, include_low=False):
            row = table.get(tid)
            if row is not None:
                yield row

    def notifications_since(self, table: str, last_seq_no: int) -> list[tuple[int, str]]:
        """All ``(seq_no, op)`` notifications on ``table`` after ``last_seq_no``.

        Used by reconnecting clients to *replay* what they missed while
        their transport was down: the purge horizon (step 11) keeps every
        notification above any connected client's ``last_seq_no``, so the
        replay is lossless.
        """
        entries: list[tuple[int, str]] = []
        for row in self._rows_after(datamodel.T_NOTIFICATION, last_seq_no):
            if row["table_name"] == table:
                entries.append((row["seq_no"], row["op"]))
        entries.sort()
        return entries

    def purge(self) -> int:
        """Drop notifications every connected client has already consumed.

        Step 11 of the protocol: the purge horizon is the lowest
        ``last_seq_no`` in the ConnectedUser table -- our ``last_seq_no``
        means "consumed up to and including", so entries at or below the
        horizon are safe to drop.  Returns the number of notification
        rows removed.
        """
        connected = self.database.table(datamodel.T_CONNECTED_USER)
        lowest: Optional[int] = None
        for row in connected.scan():
            seq = row["last_seq_no"]
            if lowest is None or seq < lowest:
                lowest = seq
        if lowest is None:
            # No clients: everything already consumed.
            lowest = self._next_seq
        removed = self.database.delete(
            datamodel.T_NOTIFICATION, col("seq_no") <= lowest
        )
        self.database.delete(T_CHANGED_ROWS, col("seq_no") <= lowest)
        return removed
