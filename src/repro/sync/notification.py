"""The Notification table and its feeding triggers.

"Whenever one such change happens, the corresponding trigger adds to the
Notification table stored in the database one tuple of the form
``(seq_no, ts, tn, op)``" (Section VI-C).  Alongside, a compact tombstone
table records the tids touched by each notification so clients can pull
exactly the changed rows later (the notification itself stays minimal;
tombstones are server-side state, never sent over the wire).

The center also fans each notification out to in-process listeners --
the :class:`~repro.sync.server.SyncServer` registers one to push NOTIFY
messages to remote clients.

Propagation policies (Section V's P1/P2/P3) are configured per table via
:meth:`NotificationCenter.set_policy`: under a non-immediate policy the
trigger path *buffers* change sets in a :class:`DeltaCoalescer` and a
flush records the net delta as one seq-no batch, fanned out to
batch-aware listeners in a single call.

Locking: the database fires triggers while holding its global lock, so
the write path enters here as ``db lock -> center lock``.  Every center
method that may run on another thread and touch both (flush, purge, the
replay readers) therefore acquires the *database* lock first -- one
consistent order, no deadlock, and replay scans see a stable snapshot
instead of racing a concurrent purge (the RefreshDriver/purge race).

Sharding: the buffering plane is split into N independent shards
(table -> shard via a stable CRC32, so the mapping survives process
restarts and hash randomization).  Each shard owns its lock, its
:class:`BatchBuffer` and its flush timer thread, so concurrent flushes
of tables on different shards never serialize on a single center lock.
Sequence numbers stay globally monotonic: ``_record`` allocates them
under the database lock, which already serializes every write path.
The lock order becomes ``db lock -> shard lock`` (and, separately,
``db lock -> center lock`` for the listener/policy registry); a shard
lock is never held while acquiring the registry lock or another shard's.
"""

from __future__ import annotations

import threading
import time
import zlib
from typing import Any, Callable, Optional

from ..core import datamodel
from ..db.database import Database
from ..db.expression import col
from ..db.schema import TID, Column
from ..db.table import ChangeSet
from ..db.types import INTEGER, TEXT
from ..errors import SyncError
from ..obs.runtime import OBS
from .batching import IMMEDIATE, BatchBuffer, PropagationPolicy

T_CHANGED_ROWS = "ediflow_changed_rows"

#: Listener signature: (table_name, op, seq_no).
Listener = Callable[[str, str, int], None]

#: Batch listener signature: (table_name, [(op, seq_no), ...]) -- one call
#: per recorded event group (singletons included), in seq order.
BatchListener = Callable[[str, list[tuple[str, int]]], None]


DEFAULT_SHARDS = 8


class _Shard:
    """One slice of the notification plane: lock + buffer + timer.

    A shard serializes only the tables that hash to it; flushes on
    different shards proceed concurrently (each still takes the database
    lock for the record step, but buffering, coalescing and due-ness
    tracking never contend across shards).
    """

    __slots__ = (
        "index",
        "lock",
        "buffer",
        "flush_thread",
        "flushes",
        "timer_fires",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.lock = threading.RLock()
        self.buffer = BatchBuffer()
        self.flush_thread: Optional[threading.Thread] = None
        self.flushes = 0
        self.timer_fires = 0


class NotificationCenter:
    """Watches tables and appends to the Notification table."""

    def __init__(self, database: Database, shards: int = DEFAULT_SHARDS) -> None:
        self.database = database
        datamodel.install_core_schema(database)
        if not database.has_table(T_CHANGED_ROWS):
            database.create_table(
                T_CHANGED_ROWS,
                [
                    Column("seq_no", INTEGER, nullable=False),
                    Column("table_name", TEXT, nullable=False),
                    Column("tid", INTEGER, nullable=False),
                    Column("op", TEXT, nullable=False),
                ],
            )
        # Replay queries (changes_since / notifications_since) are range
        # scans on seq_no -- keep both tables sorted-indexed so a client
        # pulling a small tail never pays for the whole log.
        for name in (datamodel.T_NOTIFICATION, T_CHANGED_ROWS):
            table = database.table(name)
            if not table.has_index(f"ix_{name}_seq"):
                table.create_index(f"ix_{name}_seq", ("seq_no",), sorted=True)
        self._watched: set[str] = set()
        self._listeners: list[Listener] = []
        self._batch_listeners: list[BatchListener] = []
        self._lock = threading.RLock()
        self._next_seq = self._initial_seq()
        # Propagation policies (P1/P2/P3): table -> policy; absent means
        # immediate.  Buffered changes live in the owning shard's buffer.
        self._policies: dict[str, PropagationPolicy] = {}
        self._shards = [_Shard(i) for i in range(max(1, int(shards)))]
        self._flush_stop = threading.Event()
        self._closed = False
        # Counters (tests and dashboards read these).
        self.flushes = 0
        self.coalesced_ops = 0

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_of(self, table: str) -> int:
        """Stable shard index for ``table`` (CRC32, not randomized hash)."""
        return zlib.crc32(table.encode("utf-8")) % len(self._shards)

    def _shard_for(self, table: str) -> _Shard:
        return self._shards[self.shard_of(table)]

    def _initial_seq(self) -> int:
        table = self.database.table(datamodel.T_NOTIFICATION)
        index = table.find_sorted_index("seq_no")
        highest = index.max_key() if index is not None else None
        if highest is None:
            highest = 0
            for row in table.scan():
                if row["seq_no"] > highest:
                    highest = row["seq_no"]
        return highest + 1

    # ------------------------------------------------------------------
    def watch(self, table: str) -> None:
        """Install CREATE/UPDATE/DELETE monitoring on ``table``."""
        if table in (datamodel.T_NOTIFICATION, T_CHANGED_ROWS):
            raise SyncError(f"cannot watch the notification machinery table {table!r}")
        with self._lock:
            if table in self._watched:
                return
            self.database.table(table)  # must exist
            self.database.on(
                table,
                ("insert", "update", "delete"),
                self._on_change,
                name=f"notify_{table}",
            )
            self._watched.add(table)

    def unwatch(self, table: str) -> None:
        self.flush(table)
        with self._lock:
            if table not in self._watched:
                return
            self.database.drop_trigger(f"notify_{table}")
            self._watched.discard(table)

    def watched_tables(self) -> list[str]:
        return sorted(self._watched)

    def add_listener(self, listener: Listener) -> None:
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def add_batch_listener(self, listener: BatchListener) -> None:
        """Register a listener receiving one call per recorded batch."""
        with self._lock:
            self._batch_listeners.append(listener)

    def remove_batch_listener(self, listener: BatchListener) -> None:
        with self._lock:
            if listener in self._batch_listeners:
                self._batch_listeners.remove(listener)

    # ------------------------------------------------------------------
    # Propagation policies
    def set_policy(self, table: str, policy: PropagationPolicy) -> None:
        """Configure how changes of ``table`` propagate (P1/P2/P3).

        Switching policies never strands queued changes: anything pending
        under the old policy is flushed first.
        """
        self.flush(table)
        with self._lock:
            if policy.buffers:
                self._policies[table] = policy
            else:
                self._policies.pop(table, None)
        if policy.max_delay_ms is not None:
            self._ensure_flush_thread(self._shard_for(table))

    def policy(self, table: str) -> PropagationPolicy:
        with self._lock:
            return self._policies.get(table, IMMEDIATE)

    def pending_ops(self, table: str) -> int:
        """Buffered (not yet flushed) raw operations for ``table``."""
        shard = self._shard_for(table)
        with shard.lock:
            return shard.buffer.pending_ops(table)

    # ------------------------------------------------------------------
    # Time-based flushing (one timer thread per shard, started lazily
    # when a timed policy lands on a table owned by that shard).
    def _ensure_flush_thread(self, shard: _Shard) -> None:
        with self._lock:
            if shard.flush_thread is not None or self._closed:
                return
            shard.flush_thread = threading.Thread(
                target=self._shard_flush_loop, args=(shard,), daemon=True
            )
            shard.flush_thread.start()

    def _flush_interval(self, shard: _Shard) -> float:
        with self._lock:
            delays = [
                p.max_delay_ms
                for table, p in self._policies.items()
                if p.max_delay_ms and self.shard_of(table) == shard.index
            ]
        if not delays:
            return 0.05
        return min(0.05, max(0.001, min(delays) / 1000.0 / 4.0))

    def _shard_flush_loop(self, shard: _Shard) -> None:
        while not self._flush_stop.wait(self._flush_interval(shard)):
            due = self._due_tables_in(shard)
            if due:
                shard.timer_fires += 1
            for table in due:
                self.flush(table)

    def _due_tables_in(self, shard: _Shard) -> list[str]:
        with shard.lock:
            pending = shard.buffer.keys()
            ages = {table: shard.buffer.age_ms(table) for table in pending}
        with self._lock:
            due = []
            for table in pending:
                policy = self._policies.get(table)
                if policy is None:
                    due.append(table)  # policy dropped with changes queued
                elif policy.max_delay_ms is not None and (
                    ages[table] >= policy.max_delay_ms
                ):
                    due.append(table)
            return due

    def due_tables(self) -> list[str]:
        """Tables whose buffered changes have exceeded their time bound."""
        due: list[str] = []
        for shard in self._shards:
            due.extend(self._due_tables_in(shard))
        return sorted(due)

    def close(self) -> None:
        """Flush everything and stop the background flushers."""
        self._closed = True
        self._flush_stop.set()
        self.flush_all()
        for shard in self._shards:
            thread = shard.flush_thread
            if thread is not None:
                thread.join(timeout=2.0)
                shard.flush_thread = None

    # ------------------------------------------------------------------
    def _on_change(self, change: ChangeSet) -> None:
        # Trigger context: the database lock is held here, so taking the
        # registry/shard locks respects the global db -> center order.
        with self._lock:
            policy = self._policies.get(change.table)
        if policy is not None:
            shard = self._shard_for(change.table)
            with shard.lock:
                coalescer = shard.buffer.add(change.table, change)
                due = policy.should_flush(
                    coalescer.raw_ops, shard.buffer.age_ms(change.table)
                )
            if due:
                self.flush(change.table)
            return
        if OBS.enabled:
            with OBS.tracer.span(
                "sync.notify", tags={"table": change.table}
            ) as span:
                notified, listeners, batchers = self._record(change)
                span.set_tag("notifications", len(notified))
                self._register_links(notified, span)
                self._fan_out(change.table, notified, listeners, batchers)
            return
        notified, listeners, batchers = self._record(change)
        self._fan_out(change.table, notified, listeners, batchers)

    @staticmethod
    def _register_links(notified: list[tuple[str, str, int]], span: Any) -> None:
        # Register the notify context under (table, seq_no) so the
        # mirror refresh -- on another thread, reached only through
        # the protocol -- can join this trace, and so the
        # NOTIFY->applied latency has a start timestamp.
        context = span.context()
        for table, op, seq_no in notified:
            OBS.tracer.link(("notify", table, seq_no), context)
            OBS.metrics.counter("sync.notifications", op=op).inc()

    def flush(self, table: str) -> int:
        """Record and fan out the net delta buffered for ``table``.

        Returns the number of net operations shipped (0 when nothing was
        pending).  Safe to call from any thread and at any time,
        including under an immediate policy (no-op).
        """
        # Acquire the database lock first: the trigger path arrives with
        # it held, so a flusher thread must take the same order.
        shard = self._shard_for(table)
        with self.database.lock:
            with shard.lock:
                coalescer = shard.buffer.take(table)
                # Only on a real take: an empty probe must not mint gauge
                # series (the telemetry sink flushes its own tables, and
                # self-instrumentation noise would feed back into it).
                if coalescer is not None and OBS.enabled:
                    self._observe_shard_depth(shard)
            if coalescer is None:
                return 0
            away = coalescer.coalesced_away()
            if coalescer.is_empty():
                # The batch annihilated itself (e.g. insert+delete per
                # tid): nothing to record, but the savings still count.
                self.coalesced_ops += away
                if away and OBS.enabled:
                    OBS.metrics.counter(
                        "sync.coalesced_away", table=table
                    ).inc(away)
                return 0
            net = coalescer.net_changeset()
            net_ops = coalescer.net_ops()
            started = time.perf_counter()
            if OBS.enabled:
                with OBS.tracer.span(
                    "sync.flush", tags={"table": table, "ops": net_ops}
                ) as span:
                    notified, listeners, batchers = self._record(net)
                    self._register_links(notified, span)
                self._observe_flush(table, net_ops, away, started)
            else:
                notified, listeners, batchers = self._record(net)
            self.flushes += 1
            shard.flushes += 1
            self.coalesced_ops += away
            self._fan_out(table, notified, listeners, batchers)
            return net_ops

    def _observe_shard_depth(self, shard: _Shard) -> None:
        # Caller holds shard.lock.  One gauge per shard: buffered raw ops
        # not yet flushed -- the backpressure signal for the fan-out plane.
        depth = sum(shard.buffer.pending_ops(t) for t in shard.buffer.keys())
        OBS.metrics.gauge("sync.shard.pending_ops", shard=str(shard.index)).set(depth)

    def shard_stats(self) -> list[dict[str, int]]:
        """Per-shard snapshot: buffered tables/ops and completed flushes."""
        stats = []
        for shard in self._shards:
            with shard.lock:
                tables = shard.buffer.keys()
                stats.append(
                    {
                        "shard": shard.index,
                        "tables": len(tables),
                        "pending_ops": sum(
                            shard.buffer.pending_ops(t) for t in tables
                        ),
                        "flushes": shard.flushes,
                        "timer_fires": shard.timer_fires,
                    }
                )
        return stats

    def _observe_flush(
        self, table: str, net_ops: int, away: int, started: float
    ) -> None:
        OBS.metrics.histogram("sync.batch_size", table=table).observe(net_ops)
        OBS.metrics.histogram("sync.flush_ms", table=table).observe(
            (time.perf_counter() - started) * 1000.0
        )
        if away:
            OBS.metrics.counter("sync.coalesced_away", table=table).inc(away)

    def flush_all(self) -> int:
        """Flush every table with buffered changes; returns total net ops."""
        tables: list[str] = []
        for shard in self._shards:
            with shard.lock:
                tables.extend(shard.buffer.keys())
        return sum(self.flush(table) for table in tables)

    def _record(
        self, change: ChangeSet
    ) -> tuple[list[tuple[str, str, int]], list[Listener], list[BatchListener]]:
        events: list[tuple[str, list[int]]] = []
        if change.inserted:
            events.append((datamodel.OP_INSERT, [r[TID] for r in change.inserted]))
        if change.updated:
            events.append(
                (datamodel.OP_UPDATE, [after[TID] for _, after in change.updated])
            )
        if change.deleted:
            events.append((datamodel.OP_DELETE, [r[TID] for r in change.deleted]))
        notified: list[tuple[str, str, int]] = []
        with self.database.lock:
            with self._lock:
                for op, tids in events:
                    seq_no = self._next_seq
                    self._next_seq += 1
                    ts = self.database.now()
                    self.database.insert(
                        datamodel.T_NOTIFICATION,
                        {
                            "seq_no": seq_no,
                            "ts": ts,
                            "table_name": change.table,
                            "op": op,
                        },
                    )
                    self.database.insert_many(
                        T_CHANGED_ROWS,
                        [
                            {
                                "seq_no": seq_no,
                                "table_name": change.table,
                                "tid": tid,
                                "op": op,
                            }
                            for tid in tids
                        ],
                    )
                    notified.append((change.table, op, seq_no))
                listeners = list(self._listeners)
                batchers = list(self._batch_listeners)
        return notified, listeners, batchers

    @staticmethod
    def _fan_out(
        table: str,
        notified: list[tuple[str, str, int]],
        listeners: list[Listener],
        batchers: list[BatchListener],
    ) -> None:
        if not notified:
            return
        events = [(op, seq_no) for _table, op, seq_no in notified]
        for batcher in batchers:
            batcher(table, events)
        for _table, op, seq_no in notified:
            for listener in listeners:
                listener(table, op, seq_no)

    # ------------------------------------------------------------------
    # Client pull support
    def changes_since(
        self, table: str, last_seq_no: int
    ) -> tuple[int, list[tuple[int, str]]]:
        """All ``(tid, op)`` changes on ``table`` after ``last_seq_no``.

        Returns ``(newest_seq_no, changes)``; changes are ordered by
        sequence number so replaying them yields the current state.  The
        snapshot is taken under the database lock so a concurrent purge
        (which deletes log rows) can never shift the scan mid-iteration.
        """
        newest = last_seq_no
        entries: list[tuple[int, int, str]] = []
        with self.database.lock:
            with self._lock:
                for row in self._rows_after(T_CHANGED_ROWS, last_seq_no):
                    if row["table_name"] == table:
                        entries.append((row["seq_no"], row["tid"], row["op"]))
                        if row["seq_no"] > newest:
                            newest = row["seq_no"]
        entries.sort()
        return newest, [(tid, op) for _, tid, op in entries]

    def _rows_after(self, table_name: str, last_seq_no: int):
        """Rows of ``table_name`` with ``seq_no > last_seq_no``.

        Served by the sorted seq_no index when present (the common case:
        a reconnecting client pulls a short tail of a long log), falling
        back to a full scan.  Callers hold the database lock so the
        underlying index cannot shift while the generator runs.
        """
        table = self.database.table(table_name)
        index = table.find_sorted_index("seq_no")
        if index is None:
            for row in table.scan():
                if row["seq_no"] > last_seq_no:
                    yield row
            return
        for tid in index.range(last_seq_no, None, include_low=False):
            row = table.get(tid)
            if row is not None:
                yield row

    def notifications_since(self, table: str, last_seq_no: int) -> list[tuple[int, str]]:
        """All ``(seq_no, op)`` notifications on ``table`` after ``last_seq_no``.

        Used by reconnecting clients to *replay* what they missed while
        their transport was down: the purge horizon (step 11) keeps every
        notification above any connected client's ``last_seq_no``, so the
        replay is lossless.
        """
        entries: list[tuple[int, str]] = []
        with self.database.lock:
            with self._lock:
                for row in self._rows_after(datamodel.T_NOTIFICATION, last_seq_no):
                    if row["table_name"] == table:
                        entries.append((row["seq_no"], row["op"]))
        entries.sort()
        return entries

    def purge(self) -> int:
        """Drop notifications every connected client has already consumed.

        Step 11 of the protocol: the purge horizon is the lowest
        ``last_seq_no`` in the ConnectedUser table -- our ``last_seq_no``
        means "consumed up to and including", so entries at or below the
        horizon are safe to drop.  Returns the number of notification
        rows removed.

        Runs under the database lock (then the center lock) so it is
        serialized against in-flight ``changes_since`` scans -- a refresh
        taking its seq snapshot can never observe a half-purged log.
        """
        with self.database.lock:
            with self._lock:
                connected = self.database.table(datamodel.T_CONNECTED_USER)
                lowest: Optional[int] = None
                for row in connected.scan():
                    seq = row["last_seq_no"]
                    if lowest is None or seq < lowest:
                        lowest = seq
                if lowest is None:
                    # No clients: everything already consumed.
                    lowest = self._next_seq
                removed = self.database.delete(
                    datamodel.T_NOTIFICATION, col("seq_no") <= lowest
                )
                self.database.delete(T_CHANGED_ROWS, col("seq_no") <= lowest)
                return removed
