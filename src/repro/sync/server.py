"""DBMS-side connection manager and NOTIFY dispatcher.

Implements steps 4, 5, 7 and 11 of the Section VI-C protocol: clients
register a ``(db, R_D, ip, port)`` quadruplet in the ConnectedUser table;
the DBMS connects back to each client's listening socket, handshakes, and
thereafter pushes one compact NOTIFY message per statement-level change
to a watched table.

Fault tolerance (beyond the paper, which assumes a reliable LAN): each
callback connection is a *detachable endpoint*.  The server pings it
every ``heartbeat_interval`` seconds and consumes the client's PONGs; a
send failure, read EOF, or prolonged PONG silence **detaches** the
endpoint -- the ConnectedUser rows and their ``last_seq_no`` survive, so
notifications keep accumulating on the server and the purge horizon
(step 11) protects everything the client has not consumed.  A detached
client later calls :meth:`reconnect_client` to attach a fresh stream and
replays what it missed from ``NotificationCenter.changes_since``.  Links
are dropped permanently only by explicit :meth:`unregister_client` /
:meth:`close` (or an operator calling :meth:`evict_detached`).

Two delivery engines share that bookkeeping, selected by ``mode``:

- ``"async"`` (the default, overridable via the ``EDIFLOW_SYNC_MODE``
  environment variable): a single-threaded :mod:`selectors` event loop
  owns every callback socket in non-blocking mode.  A flush encodes each
  NOTIFY/NOTIFYB frame **once** and hands the same bytes to every
  subscriber's bounded per-connection send queue; the notifying thread
  opportunistically writes inline when the queue is empty (so accounting
  stays synchronous on healthy links) and the loop finishes partial
  writes when the kernel pushes back.  A queue that exceeds its frame or
  byte bound means the client reads slower than the system writes: the
  connection is **evicted** (counted in :attr:`SyncServer.evictions`) and
  the client falls back to the ordinary reconnect/replay machinery.
  PINGs, PONGs and DISCONNECTs ride the same loop -- no reader or
  heartbeat threads exist in this mode.

- ``"threaded"``: the original thread-per-client engine (one reader
  thread per endpoint, blocking sends on the notify path), kept
  selectable for the fan-out ablation benchmark.
"""

from __future__ import annotations

import itertools
import os
import selectors
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..core import datamodel
from ..db.database import Database
from ..db.expression import col
from ..errors import ProtocolError, SyncError
from ..obs.metrics import Histogram
from ..obs.runtime import OBS
from . import protocol
from .notification import NotificationCenter

#: Optional wrapper applied to every callback stream the server opens --
#: the fault-injection hook (see :mod:`repro.sync.faults`).
TransportFactory = Callable[[protocol.MessageStream], Any]

MODE_ASYNC = "async"
MODE_THREADED = "threaded"

#: Per-subscriber cost estimate of an inline fan-out write.  Broadcasts
#: arriving faster than ``links * BURST_COST_PER_LINK_S`` since the
#: previous one ride the event loop instead of being written inline by
#: the notifying thread: the queues build for a moment and the pump
#: flushes many frames per ``send()`` syscall.  At one or two mirrors
#: the window is tens of microseconds (every realistic write path stays
#: inline, accounting stays synchronous); at 1k mirrors a burst switches
#: to queued coalescing after the first flush.
BURST_COST_PER_LINK_S = 50e-6
#: Upper bound on one coalesced write (matches the protocol's frame cap;
#: large enough to merge hundreds of NOTIFYs, small enough to keep a
#: single ``send()`` from monopolizing the loop).
COALESCE_BYTES = protocol.MAX_MESSAGE_BYTES


def default_mode() -> str:
    """The engine used when ``SyncServer(mode=None)``: the
    ``EDIFLOW_SYNC_MODE`` environment variable, or ``"async"``."""
    return os.environ.get("EDIFLOW_SYNC_MODE", MODE_ASYNC)


@dataclass
class _Endpoint:
    """One callback connection to a client process (possibly shared by
    several table registrations of that process)."""

    host: str
    port: int
    #: Live transport, or ``None`` while detached.
    stream: Optional[Any]
    #: Serializes writes (NOTIFY vs PING race on the same socket).
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: ``time.monotonic()`` of the last inbound message (PONG).
    last_rx: float = 0.0
    ping_seq: int = 0
    #: ``time.monotonic()`` of the last PING sent (for PONG RTT).
    last_ping_at: float = 0.0
    #: When the endpoint detached (for :meth:`SyncServer.evict_detached`).
    detached_at: Optional[float] = None
    #: Capabilities the client advertised in its HELLO; a peer without
    #: ``batch`` receives per-event NOTIFYs even for flushed batches.
    caps: frozenset[str] = frozenset()
    #: Async engine only: the event-loop connection state.
    conn: Optional["_AsyncConn"] = None


@dataclass
class _ClientLink:
    """One registered (client, table) pair."""

    connected_user_id: int
    table: str
    host: str
    port: int
    endpoint: Optional[_Endpoint]
    #: NOTIFYs successfully delivered (in-process: dispatched).
    notify_count: int = 0
    #: NOTIFYs that could not be pushed because the endpoint was down;
    #: the client recovers them from ``changes_since`` on reconnect.
    missed_count: int = 0


class _OutFrame:
    """One queued write: a byte chunk, its progress, and who to credit.

    ``data`` is shared across every subscriber of a broadcast (encoded
    once); ``offset`` tracks partial writes.  When the chunk finishes,
    ``link.notify_count += events`` -- attribution rides the *last* chunk
    of a delivery so multi-frame deliveries stay all-or-nothing, exactly
    like the threaded engine's accounting.  ``kill_after`` severs the
    connection once the chunk is flushed (fault-injected truncation);
    ``not_before`` delays the write (fault-injected latency).
    """

    __slots__ = ("data", "offset", "link", "events", "kill_after", "not_before")

    def __init__(
        self,
        data: bytes,
        link: Optional[_ClientLink] = None,
        events: int = 0,
        kill_after: bool = False,
        not_before: float = 0.0,
    ) -> None:
        self.data = data
        self.offset = 0
        self.link = link
        self.events = events
        self.kill_after = kill_after
        self.not_before = not_before


class _AsyncConn:
    """Event-loop state for one callback socket.

    ``lock`` guards the send queue; it is taken by notifying threads
    (opportunistic inline writes) and by the loop (draining), never while
    holding the server registry lock.
    """

    __slots__ = (
        "sock",
        "endpoint",
        "transport",
        "faults",
        "lock",
        "outq",
        "queued_bytes",
        "rbuf",
        "closing",
        "want_write",
        "events",
        "hiwat_frames",
        "hiwat_bytes",
    )

    def __init__(
        self,
        sock: Any,
        endpoint: _Endpoint,
        transport: Any,
        faults: Optional[Any] = None,
        rbuf: bytes = b"",
    ) -> None:
        self.sock = sock
        self.endpoint = endpoint
        self.transport = transport
        #: A ``perturb``-capable transport wrapper (fault injection), or None.
        self.faults = faults
        self.lock = threading.Lock()
        self.outq: deque[_OutFrame] = deque()
        self.queued_bytes = 0
        #: Bytes received but not yet framed into a message.
        self.rbuf = rbuf
        #: Set once the queue is aborted; no further frames are accepted.
        self.closing = False
        #: True while the loop has been asked to drain this queue.
        self.want_write = False
        #: Selector interest mask currently registered for this socket
        #: (loop thread only; lets no-op interest changes skip epoll_ctl).
        self.events = 0
        #: Send-queue high watermarks (saturation telemetry): the
        #: deepest this queue has ever been, in frames and bytes.
        self.hiwat_frames = 0
        self.hiwat_bytes = 0


class _EventLoop:
    """The single thread that owns every async callback socket.

    Readiness-driven: readable sockets feed PONG/DISCONNECT frames back
    to the server, writable sockets drain their bounded send queues.  A
    non-blocking socketpair doubles as the wake-up pipe for the
    thread-safe command queue (attach/detach/interest changes all hop
    onto the loop so selector state has a single owner).
    """

    def __init__(self, server: "SyncServer") -> None:
        self._server = server
        self._selector = selectors.DefaultSelector()
        self._rwake, self._wwake = socket.socketpair()
        self._rwake.setblocking(False)
        self._wwake.setblocking(False)
        self._selector.register(self._rwake, selectors.EVENT_READ, None)
        #: ``(fn, enqueued_at_ns)`` pairs; the enqueue timestamp feeds
        #: the scheduled-wake-to-serviced lag histogram below.
        self._commands: deque[tuple[Callable[[], None], int]] = deque()
        self._stop = threading.Event()
        self._conns: set[_AsyncConn] = set()
        #: Connections whose head frame carries a fault-injected delay.
        self._delayed: set[_AsyncConn] = set()
        self._thread = threading.Thread(
            target=self._run, name="ediflow-sync-loop", daemon=True
        )
        # Saturation accounting -- always on.  The cost is a few clock
        # reads and integer adds per loop *iteration* (not per event or
        # per delivered frame), so it is invisible next to the selector
        # syscall each iteration already pays.
        #: Loop iterations completed.
        self.iterations = 0
        #: Commands executed off the submit queue.
        self.commands_run = 0
        #: ns spent blocked in ``select()`` (the loop's idle headroom).
        self._poll_ns = 0
        #: ns spent doing work between selects.
        self._busy_ns = 0
        #: submit() -> executed delta: how long a cross-thread request
        #: waited for the loop.  This is the single best saturation
        #: signal -- an overloaded loop services its wake pipe late.
        self.lag_hist = Histogram("sync.loop.lag_ms")
        #: Per-iteration working time (select excluded).
        self.iter_hist = Histogram("sync.loop.iteration_ms")
        #: Heartbeat timer fires serviced by this loop.
        self.timer_fires = 0

    def start(self) -> None:
        self._thread.start()

    def submit(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the loop thread at the next iteration."""
        self._commands.append((fn, time.perf_counter_ns()))
        self.wake()

    def wake(self) -> None:
        try:
            self._wwake.send(b"\x00")
        except OSError:
            pass

    def stop(self, join: bool = True) -> None:
        self._stop.set()
        self.wake()
        if join and self._thread.is_alive():
            self._thread.join(timeout=2.0)

    # -- loop thread ----------------------------------------------------
    def _run(self) -> None:
        interval = self._server.heartbeat_interval
        tick = 0.05 if interval is None else min(0.05, interval / 2.0)
        last_beat = time.monotonic()
        try:
            while not self._stop.is_set():
                try:
                    select_at = time.perf_counter_ns()
                    events = self._selector.select(timeout=tick)
                    woke_at = time.perf_counter_ns()
                    self._poll_ns += woke_at - select_at
                    for key, mask in events:
                        if key.data is None:
                            self._drain_wake()
                            continue
                        conn = key.data
                        if mask & selectors.EVENT_READ:
                            self._handle_read(conn)
                        if mask & selectors.EVENT_WRITE:
                            self.service_conn(conn)
                    while self._commands:
                        fn, enqueued_ns = self._commands.popleft()
                        self.lag_hist.observe(
                            (time.perf_counter_ns() - enqueued_ns) / 1e6
                        )
                        fn()
                        self.commands_run += 1
                    if self._delayed:
                        now = time.monotonic()
                        for conn in list(self._delayed):
                            head = conn.outq[0] if conn.outq else None
                            if head is None or head.not_before <= now:
                                self._delayed.discard(conn)
                                self.service_conn(conn)
                    if interval is not None:
                        now = time.monotonic()
                        if now - last_beat >= interval:
                            last_beat = now
                            self.timer_fires += 1
                            self._server._heartbeat_tick()
                    done_at = time.perf_counter_ns()
                    self._busy_ns += done_at - woke_at
                    self.iter_hist.observe((done_at - woke_at) / 1e6)
                    self.iterations += 1
                except Exception:
                    if self._stop.is_set():
                        break
                    # A loop crash would silently freeze every client;
                    # count it and keep serving (the offending conn, if
                    # any, dies on its next readiness event).
                    self._server.loop_errors += 1
                    OBS.metrics.counter("sync.server.loop_errors").inc()
        finally:
            try:
                self._selector.close()
            except OSError:
                pass
            for sock in (self._rwake, self._wwake):
                try:
                    sock.close()
                except OSError:
                    pass

    def _drain_wake(self) -> None:
        try:
            while self._rwake.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            pass

    def add_conn(self, conn: _AsyncConn) -> None:
        """Register a fresh connection (loop thread only)."""
        if self._stop.is_set():
            return
        try:
            fd = conn.sock.fileno()
        except OSError:
            fd = -1
        if fd < 0:
            self._server._conn_dead(conn)
            return
        stale = self._selector.get_map().get(fd)
        if stale is not None:
            # The previous owner of this fd was closed behind our back
            # (tests kill sockets directly); evict the stale entry so the
            # kernel-reused fd maps to the right connection.
            try:
                self._selector.unregister(stale.fileobj)
            except (KeyError, ValueError, OSError):
                pass
            if stale.data is not None:
                self._conns.discard(stale.data)
                self._delayed.discard(stale.data)
        try:
            self._selector.register(conn.sock, selectors.EVENT_READ, conn)
            conn.events = selectors.EVENT_READ
        except (ValueError, OSError):
            self._server._conn_dead(conn)
            return
        self._conns.add(conn)
        if conn.outq or conn.want_write:
            self.service_conn(conn)

    def drop(self, conn: _AsyncConn) -> None:
        """Forget a connection (loop thread only); socket closing is the
        transport's job."""
        self._conns.discard(conn)
        self._delayed.discard(conn)
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass

    def _set_events(self, conn: _AsyncConn, events: int) -> None:
        if conn.events == events:
            return
        try:
            self._selector.modify(conn.sock, events, conn)
            conn.events = events
        except (KeyError, ValueError, OSError):
            pass

    def _handle_read(self, conn: _AsyncConn) -> None:
        try:
            data = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._server._conn_dead(conn)
            return
        if not data:
            self._server._conn_dead(conn)
            return
        conn.rbuf += data
        while True:
            newline = conn.rbuf.find(b"\n")
            if newline < 0:
                break
            line = conn.rbuf[:newline]
            conn.rbuf = conn.rbuf[newline + 1 :]
            try:
                message = protocol.decode(line)
            except ProtocolError:
                continue
            self._server._on_frame(conn, message)
        if len(conn.rbuf) > protocol.MAX_MESSAGE_BYTES:
            self._server._conn_dead(conn)

    def service_conn(self, conn: _AsyncConn) -> None:
        """Drain what the kernel will take and update selector interest
        (loop thread only)."""
        with conn.lock:
            status = self._server._pump_locked(conn)
            if status == "alive":
                conn.want_write = False
        if status == "dead":
            self._server._conn_dead(conn)
        elif status == "blocked":
            self._delayed.discard(conn)
            self._set_events(conn, selectors.EVENT_READ | selectors.EVENT_WRITE)
        elif status == "delayed":
            self._delayed.add(conn)
            self._set_events(conn, selectors.EVENT_READ)
        else:
            self._delayed.discard(conn)
            self._set_events(conn, selectors.EVENT_READ)

    def service_conns(self, conns: list[_AsyncConn]) -> None:
        """Batched :meth:`service_conn` -- one submitted command (one
        wake syscall) covers a whole broadcast's worth of queues."""
        for conn in conns:
            if conn in self._conns:
                self.service_conn(conn)

    # -- saturation telemetry (any thread) ------------------------------
    def stats(self) -> dict[str, Any]:
        """Loop-health snapshot: lag, iteration time, idle headroom.

        ``poll_idle_ratio`` near 1.0 means the loop mostly waits (cold);
        near 0.0 means every iteration returns with work already pending
        -- the single core is the bottleneck and the ROADMAP's multi-loop
        sharding is due.  ``lag_ms`` quantiles are the submit-to-serviced
        delay cross-thread work experienced.
        """
        poll_ns = self._poll_ns
        busy_ns = self._busy_ns
        total_ns = poll_ns + busy_ns
        lag = self.lag_hist
        iteration = self.iter_hist
        return {
            "iterations": self.iterations,
            "commands_run": self.commands_run,
            "commands_pending": len(self._commands),
            "timer_fires": self.timer_fires,
            "conns": len(self._conns),
            "poll_idle_ratio": poll_ns / total_ns if total_ns else 1.0,
            "busy_ratio": busy_ns / total_ns if total_ns else 0.0,
            "lag_ms": {
                "count": lag.count,
                "p50": lag.quantile(0.5),
                "p99": lag.quantile(0.99),
                "max": lag.max,
            },
            "iteration_ms": {
                "count": iteration.count,
                "p50": iteration.quantile(0.5),
                "p99": iteration.quantile(0.99),
                "max": iteration.max,
            },
        }


def _unwrap_transport(transport: Any) -> tuple[Any, Optional[Any], bytes]:
    """Extract ``(raw socket, fault wrapper, buffered bytes)`` from a
    handshake-complete transport so the event loop can own the socket."""
    faults = transport if hasattr(transport, "perturb") else None
    stream = transport._stream if faults is not None else transport
    sock = getattr(stream, "_sock", None)
    if sock is None:
        raise SyncError(
            "async mode requires MessageStream-based transports; "
            f"got {type(transport).__name__}"
        )
    rbuf = getattr(stream, "_buffer", b"")
    stream._buffer = b""
    return sock, faults, rbuf


class SyncServer:
    """Pushes change notifications to registered clients.

    ``use_sockets=False`` runs the identical bookkeeping without opening
    TCP connections -- clients then poll :class:`NotificationCenter`
    directly.  Benchmarks use real sockets (loopback); most unit tests use
    the in-process mode.

    ``mode`` selects the socket delivery engine (``"async"`` event loop
    or ``"threaded"``); ``None`` resolves via :func:`default_mode`.  The
    in-process mode is engine-independent.

    ``heartbeat_interval=None`` disables the liveness machinery (no ping
    tick, no reader threads); dead links are then only detected on the
    next failed NOTIFY send (async mode still notices read EOFs, since
    the event loop always watches readability).

    ``max_queue_frames`` / ``max_queue_bytes`` bound each async client's
    send queue: exceeding either evicts the client (slow-consumer
    protection; see :attr:`evictions`).
    """

    def __init__(
        self,
        database: Database,
        center: Optional[NotificationCenter] = None,
        use_sockets: bool = True,
        heartbeat_interval: Optional[float] = 0.5,
        heartbeat_timeout: Optional[float] = None,
        transport_factory: Optional[TransportFactory] = None,
        mode: Optional[str] = None,
        max_queue_frames: int = 1024,
        max_queue_bytes: int = 4 << 20,
        drain_timeout: float = 2.0,
    ) -> None:
        self.database = database
        self.center = center or NotificationCenter(database)
        self.use_sockets = use_sockets
        self.mode = mode or default_mode()
        if self.mode not in (MODE_ASYNC, MODE_THREADED):
            raise SyncError(f"unknown sync server mode {self.mode!r}")
        self.heartbeat_interval = heartbeat_interval
        if heartbeat_timeout is None and heartbeat_interval is not None:
            heartbeat_timeout = heartbeat_interval * 6
        self.heartbeat_timeout = heartbeat_timeout
        self.transport_factory = transport_factory
        self.max_queue_frames = max_queue_frames
        self.max_queue_bytes = max_queue_bytes
        self.drain_timeout = drain_timeout
        self._links: dict[int, _ClientLink] = {}
        #: (host, port) -> shared callback endpoint; one per client
        #: process even when it mirrors several tables.
        self._endpoints: dict[tuple[str, int], _Endpoint] = {}
        self._lock = threading.RLock()
        self._allocator = datamodel.IdAllocator(database)
        # Re-arm watch triggers for tables that durable ConnectedUser rows
        # say clients still mirror: triggers are runtime objects, so a
        # server restarted on a recovered database would otherwise stop
        # logging the very changes those clients reconnect to replay.
        tables = set(database.table_names())
        for row in database.table(datamodel.T_CONNECTED_USER).scan():
            if row["table_name"] in tables:
                self.center.watch(row["table_name"])
        self.center.add_batch_listener(self._on_notifications)
        self._closed = False
        self._stop = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._loop: Optional[_EventLoop] = None
        #: monotonic time of the last async broadcast; back-to-back
        #: broadcasts (relative to the fan-out's inline-write cost) skip
        #: the inline write so the loop can coalesce queued frames into
        #: few syscalls.
        self._last_broadcast = 0.0
        # Counters (tests and dashboards read these).
        self.detaches = 0
        self.reattaches = 0
        self.pings_sent = 0
        self.pongs_received = 0
        self.evictions = 0
        self.loop_errors = 0

    @property
    def _async_sockets(self) -> bool:
        return self.use_sockets and self.mode == MODE_ASYNC

    # ------------------------------------------------------------------
    # Connection plumbing
    def _open_callback(self, host: str, port: int) -> tuple[Any, frozenset[str]]:
        """Connect back to a client listener and handshake (steps 5-6).

        Returns ``(transport, caps)`` where ``caps`` is what the client
        advertised in its HELLO (empty for pre-capability peers).
        """
        transport: Optional[Any] = None
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            transport = protocol.MessageStream(sock)
            if self.transport_factory is not None:
                transport = self.transport_factory(transport)
            # Step 5/6: the DBMS expects HELLO and answers REPLY.
            caps = protocol.server_handshake(transport, timeout=5.0)
        except (OSError, SyncError) as exc:
            if transport is not None:
                transport.close()
            raise SyncError(
                f"cannot connect back to client at {host}:{port}: {exc}"
            ) from None
        return transport, caps

    def _ensure_loop(self) -> _EventLoop:
        with self._lock:
            if self._loop is None:
                self._loop = _EventLoop(self)
                self._loop.start()
            return self._loop

    def _attach(self, endpoint: _Endpoint, transport: Any) -> None:
        """Install a live transport on an endpoint and start servicing it."""
        endpoint.stream = transport
        endpoint.last_rx = time.monotonic()
        endpoint.detached_at = None
        if self._async_sockets:
            sock, faults, rbuf = _unwrap_transport(transport)
            sock.setblocking(False)
            conn = _AsyncConn(sock, endpoint, transport, faults, rbuf)
            endpoint.conn = conn
            loop = self._ensure_loop()
            loop.submit(lambda: loop.add_conn(conn))
            return
        if self.heartbeat_interval is not None:
            reader = threading.Thread(
                target=self._reader_loop, args=(endpoint, transport), daemon=True
            )
            reader.start()
            self._ensure_heartbeat_thread()

    def _ensure_heartbeat_thread(self) -> None:
        with self._lock:
            if self._heartbeat_thread is not None or self._closed:
                return
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop, daemon=True
            )
            self._heartbeat_thread.start()

    def _detach_endpoint(
        self, endpoint: _Endpoint, expected: Optional[_AsyncConn] = None
    ) -> bool:
        """Idempotently take a (suspected dead) transport out of service.

        The registration -- ConnectedUser rows, ``last_seq_no`` horizon,
        link bookkeeping -- survives; only the socket goes away.  When
        ``expected`` is given, the detach only proceeds if the endpoint
        still carries that connection (a concurrent reconnect must not be
        torn down by the failure notice of its predecessor).
        """
        with self._lock:
            conn = endpoint.conn
            transport = endpoint.stream
            if expected is not None and conn is not expected:
                return False
            if transport is None and conn is None:
                return False
            endpoint.stream = None
            endpoint.conn = None
            endpoint.detached_at = time.monotonic()
            self.detaches += 1
        # Rare event: always counted, enabled or not.
        OBS.metrics.counter("sync.server.detaches").inc()
        if conn is not None:
            self._abort_conn(conn)
            loop = self._loop
            if loop is not None:
                loop.submit(lambda: loop.drop(conn))
        if transport is not None:
            transport.close()
        return True

    def _abort_conn(self, conn: _AsyncConn) -> None:
        """Stop accepting frames and convert queued deliveries to misses."""
        with conn.lock:
            if conn.closing:
                return
            conn.closing = True
            for frame in conn.outq:
                if frame.link is not None:
                    frame.link.missed_count += frame.events
            conn.outq.clear()
            conn.queued_bytes = 0

    def _conn_dead(self, conn: _AsyncConn) -> None:
        """A connection's socket failed, EOF'd, or was evicted."""
        self._abort_conn(conn)
        if not self._detach_endpoint(conn.endpoint, expected=conn):
            # The endpoint moved on (reconnect won the race); just tear
            # down this superseded connection.
            loop = self._loop
            if loop is not None:
                loop.submit(lambda: loop.drop(conn))
            try:
                conn.transport.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Async engine: write pump and frame intake
    def _pump_locked(self, conn: _AsyncConn) -> str:
        """Write queued frames until the kernel pushes back.

        Caller holds ``conn.lock``.  Returns ``"alive"`` (queue empty),
        ``"blocked"`` (kernel full), ``"delayed"`` (head frame not yet
        due), or ``"dead"`` (socket failed / kill_after fired).

        A contiguous run of due frames is coalesced into one ``send()``
        (up to ``COALESCE_BYTES``): a burst of broadcasts costs a handful
        of syscalls per client instead of one per notification.  A
        ``kill_after`` frame ends its run (the cut must land exactly at
        that frame's boundary) and a not-yet-due frame is never merged.
        """
        while conn.outq:
            frame = conn.outq[0]
            now = time.monotonic()
            if frame.not_before and frame.not_before > now:
                return "delayed"
            run = [frame]
            size = len(frame.data) - frame.offset
            if not frame.kill_after and size < COALESCE_BYTES:
                for nxt in itertools.islice(conn.outq, 1, None):
                    if nxt.not_before and nxt.not_before > now:
                        break
                    run.append(nxt)
                    size += len(nxt.data)
                    if nxt.kill_after or size >= COALESCE_BYTES:
                        break
            if len(run) == 1:
                buf: Any = frame.data
                if frame.offset:
                    buf = memoryview(frame.data)[frame.offset :]
            else:
                head = frame.data[frame.offset :] if frame.offset else frame.data
                buf = head + b"".join(f.data for f in run[1:])
            try:
                sent = conn.sock.send(buf)
            except (BlockingIOError, InterruptedError):
                return "blocked"
            except OSError:
                return "dead"
            conn.queued_bytes -= sent
            for done in run:
                take = min(sent, len(done.data) - done.offset)
                done.offset += take
                sent -= take
                if done.offset < len(done.data):
                    return "blocked"
                conn.outq.popleft()
                if done.link is not None:
                    done.link.notify_count += done.events
                if done.kill_after:
                    return "dead"
                if not sent:
                    break
        return "alive"

    def _submit_frames(
        self,
        conn: _AsyncConn,
        frames: list[_OutFrame],
        inline: bool = True,
        pending: Optional[list[_AsyncConn]] = None,
    ) -> str:
        """Queue frames for one connection, writing inline when possible.

        Returns ``"ok"`` (sent or queued; delivery accounting happens as
        chunks complete), ``"dead"`` (socket failed mid-submit; every
        queued delivery was converted to a miss), ``"evicted"`` (queue
        bound exceeded, ditto), or ``"closed"`` (connection was already
        aborted; nothing queued, caller owns accounting).

        ``inline=False`` skips the opportunistic write even on an idle
        queue (burst broadcasts: leave the frames for the loop's
        coalescing pump instead of paying one syscall per frame here).
        With ``pending``, a connection that needs loop service is
        appended there instead of submitted individually -- the caller
        batches one submit (one wake syscall) for the whole fan-out.
        """
        need_service = False
        with conn.lock:
            if conn.closing:
                return "closed"
            was_idle = inline and not conn.outq and not conn.want_write
            for frame in frames:
                conn.outq.append(frame)
                conn.queued_bytes += len(frame.data) - frame.offset
            if len(conn.outq) > conn.hiwat_frames:
                conn.hiwat_frames = len(conn.outq)
            if conn.queued_bytes > conn.hiwat_bytes:
                conn.hiwat_bytes = conn.queued_bytes
            if was_idle:
                status = self._pump_locked(conn)
                if status == "dead":
                    self._abort_queue_locked(conn)
                    return "dead"
            if conn.outq:
                if (
                    len(conn.outq) > self.max_queue_frames
                    or conn.queued_bytes > self.max_queue_bytes
                ):
                    self._abort_queue_locked(conn)
                    return "evicted"
                if not conn.want_write:
                    conn.want_write = True
                    need_service = True
        if need_service:
            if pending is not None:
                pending.append(conn)
            else:
                loop = self._loop
                if loop is not None:
                    loop.submit(lambda: loop.service_conn(conn))
        return "ok"

    def _abort_queue_locked(self, conn: _AsyncConn) -> None:
        # Caller holds conn.lock; mirror of _abort_conn for in-lock paths.
        conn.closing = True
        for frame in conn.outq:
            if frame.link is not None:
                frame.link.missed_count += frame.events
        conn.outq.clear()
        conn.queued_bytes = 0

    def _frames_for_conn(
        self, conn: _AsyncConn, messages: list[dict[str, Any]], encoded: list[bytes]
    ) -> tuple[list[_OutFrame], bool]:
        """Byte chunks for one delivery, fault-perturbed when applicable.

        Returns ``(frames, kill_now)``; ``kill_now`` means the connection
        must die without flushing anything (fault-injected disconnect).
        A fault-injected truncation instead marks the last chunk
        ``kill_after`` so the partial bytes reach the wire first.
        """
        if conn.faults is None:
            return [_OutFrame(data) for data in encoded], False
        frames: list[_OutFrame] = []
        for message in messages:
            chunks, kill, delay = conn.faults.perturb(message)
            not_before = time.monotonic() + delay if delay else 0.0
            for chunk in chunks:
                frames.append(_OutFrame(chunk, not_before=not_before))
            if kill:
                if frames:
                    frames[-1].kill_after = True
                    return frames, False
                return [], True
        return frames, False

    def _on_frame(self, conn: _AsyncConn, message: dict[str, Any]) -> None:
        """One inbound client frame, delivered by the event loop."""
        endpoint = conn.endpoint
        endpoint.last_rx = time.monotonic()
        kind = message.get("type")
        if kind == protocol.PONG:
            self.pongs_received += 1
            if OBS.enabled and endpoint.last_ping_at:
                OBS.metrics.gauge(
                    "sync.heartbeat_rtt_ms",
                    client=f"{endpoint.host}:{endpoint.port}",
                ).set((endpoint.last_rx - endpoint.last_ping_at) * 1e3)
        elif kind == protocol.DISCONNECT:
            self._conn_dead(conn)

    def _heartbeat_tick(self) -> None:
        """Async-mode liveness pass, run by the event loop every
        ``heartbeat_interval`` seconds."""
        if self.heartbeat_interval is None:
            return
        now = time.monotonic()
        with self._lock:
            endpoints = list(self._endpoints.values())
        for endpoint in endpoints:
            conn = endpoint.conn
            if conn is None:
                continue
            if (
                self.heartbeat_timeout is not None
                and now - endpoint.last_rx > self.heartbeat_timeout
            ):
                self._conn_dead(conn)
                continue
            endpoint.ping_seq += 1
            endpoint.last_ping_at = time.monotonic()
            message = protocol.ping(endpoint.ping_seq)
            frames, kill_now = self._frames_for_conn(
                conn, [message], [protocol.encode(message)]
            )
            if kill_now:
                self._conn_dead(conn)
                continue
            if not frames:
                continue  # fault plan dropped/held the ping
            status = self._submit_frames(conn, frames)
            if status == "ok":
                self.pings_sent += 1
            elif status in ("dead", "evicted", "closed"):
                if status == "evicted":
                    self._note_eviction(endpoint)
                self._conn_dead(conn)

    def _note_eviction(self, endpoint: _Endpoint) -> None:
        self.evictions += 1
        OBS.metrics.counter("sync.server.evictions").inc()
        if OBS.enabled:
            OBS.metrics.counter(
                "sync.server.evicted_clients",
                client=f"{endpoint.host}:{endpoint.port}",
            ).inc()

    # ------------------------------------------------------------------
    # Liveness (threaded engine): reader threads + heartbeat thread
    def _reader_loop(self, endpoint: _Endpoint, transport: Any) -> None:
        while True:
            try:
                message = transport.receive(timeout=None)
            except (OSError, ProtocolError, SyncError):
                break
            endpoint.last_rx = time.monotonic()
            kind = message.get("type")
            if kind == protocol.PONG:
                self.pongs_received += 1
                if OBS.enabled and endpoint.last_ping_at:
                    OBS.metrics.gauge(
                        "sync.heartbeat_rtt_ms",
                        client=f"{endpoint.host}:{endpoint.port}",
                    ).set((endpoint.last_rx - endpoint.last_ping_at) * 1e3)
            elif kind == protocol.DISCONNECT:
                break
        if not self._closed and endpoint.stream is transport:
            self._detach_endpoint(endpoint)

    def _heartbeat_loop(self) -> None:
        assert self.heartbeat_interval is not None
        while not self._stop.wait(self.heartbeat_interval):
            now = time.monotonic()
            with self._lock:
                endpoints = list(self._endpoints.values())
            for endpoint in endpoints:
                transport = endpoint.stream
                if transport is None:
                    continue
                if (
                    self.heartbeat_timeout is not None
                    and now - endpoint.last_rx > self.heartbeat_timeout
                ):
                    self._detach_endpoint(endpoint)
                    continue
                endpoint.ping_seq += 1
                try:
                    endpoint.last_ping_at = time.monotonic()
                    with endpoint.lock:
                        transport.send(protocol.ping(endpoint.ping_seq))
                    self.pings_sent += 1
                except (OSError, ProtocolError):
                    self._detach_endpoint(endpoint)

    # ------------------------------------------------------------------
    def register_client(
        self,
        table: str,
        host: str,
        port: int,
        user_id: Optional[int] = None,
    ) -> int:
        """Protocol steps 4-6: record the quadruplet, connect back,
        handshake.  Returns the ConnectedUser id."""
        if self._closed:
            raise SyncError("server is closed")
        self.center.watch(table)
        cu_id = self._allocator.next_id(datamodel.T_CONNECTED_USER)
        self.database.insert(
            datamodel.T_CONNECTED_USER,
            {
                "id": cu_id,
                "user_id": user_id,
                "host": host,
                "port": port,
                "table_name": table,
                "last_seq_no": 0,
            },
        )
        endpoint: Optional[_Endpoint] = None
        if self.use_sockets:
            with self._lock:
                endpoint = self._endpoints.get((host, port))
            if endpoint is None:
                try:
                    transport, caps = self._open_callback(host, port)
                except SyncError:
                    # Failed connection or handshake: no trace left behind.
                    self.database.delete(
                        datamodel.T_CONNECTED_USER, col("id") == cu_id
                    )
                    raise
                endpoint = _Endpoint(host, port, None, caps=caps)
                self._attach(endpoint, transport)
                with self._lock:
                    self._endpoints[(host, port)] = endpoint
        with self._lock:
            self._links[cu_id] = _ClientLink(cu_id, table, host, port, endpoint)
        return cu_id

    def reconnect_client(self, host: str, port: int) -> bool:
        """Re-attach a fresh callback connection to a detached client.

        The client keeps its ConnectedUser rows (and thus its
        ``last_seq_no`` purge protection) across the outage; this call
        only restores the push path.  Raises :class:`SyncError` when no
        registration exists for ``(host, port)`` or the connect-back
        fails; the client's retry policy decides what happens next.
        """
        if self._closed:
            raise SyncError("server is closed")
        if not self.use_sockets:
            raise SyncError("reconnect_client requires socket mode")
        with self._lock:
            endpoint = self._endpoints.get((host, port))
        if endpoint is None:
            raise SyncError(f"no registered client at {host}:{port}")
        transport, caps = self._open_callback(host, port)
        with self._lock:
            stale = endpoint.stream
            stale_conn = endpoint.conn
            endpoint.stream = None
            endpoint.conn = None
            endpoint.caps = caps
        if stale_conn is not None:
            self._abort_conn(stale_conn)
            loop = self._loop
            if loop is not None:
                loop.submit(lambda: loop.drop(stale_conn))
        if stale is not None:
            stale.close()
        self._attach(endpoint, transport)
        self.reattaches += 1
        OBS.metrics.counter("sync.server.reattaches").inc()
        return True

    def unregister_client(self, connected_user_id: int) -> bool:
        """Protocol step 10: drop the link and the ConnectedUser row.

        Idempotent: concurrent callers (e.g. two notification threads
        observing the same dead client) race benignly -- exactly one
        performs the teardown, the rest return ``False``.
        """
        with self._lock:
            link = self._links.pop(connected_user_id, None)
            if link is None:
                return False
            endpoint = link.endpoint
            drop_endpoint = endpoint is not None and not any(
                other.endpoint is endpoint for other in self._links.values()
            )
            if drop_endpoint:
                self._endpoints.pop((link.host, link.port), None)
        if drop_endpoint and endpoint is not None:
            self._detach_endpoint(endpoint)
        self.database.delete(
            datamodel.T_CONNECTED_USER, col("id") == connected_user_id
        )
        return True

    def evict_detached(self, max_age: float) -> int:
        """Permanently unregister clients detached longer than ``max_age``
        seconds.  Returns the number of links dropped.  This is the
        operator-facing escape hatch that re-enables notification purging
        when a client is never coming back."""
        now = time.monotonic()
        with self._lock:
            stale = [
                link.connected_user_id
                for link in self._links.values()
                if link.endpoint is not None
                and link.endpoint.stream is None
                and link.endpoint.detached_at is not None
                and now - link.endpoint.detached_at >= max_age
            ]
        return sum(1 for cu_id in stale if self.unregister_client(cu_id))

    def update_client_seq(self, connected_user_id: int, seq_no: int) -> None:
        """Record how far a client has consumed (enables purging)."""
        self.database.update(
            datamodel.T_CONNECTED_USER,
            {"last_seq_no": seq_no},
            col("id") == connected_user_id,
        )

    def client_count(self) -> int:
        with self._lock:
            return len(self._links)

    def connected_count(self) -> int:
        """Links whose callback connection is currently live."""
        with self._lock:
            return sum(
                1
                for link in self._links.values()
                if link.endpoint is not None and link.endpoint.stream is not None
            )

    def detached_count(self) -> int:
        """Links registered but currently without a live callback."""
        with self._lock:
            return sum(
                1
                for link in self._links.values()
                if link.endpoint is not None and link.endpoint.stream is None
            )

    def queued_frames(self) -> int:
        """Frames sitting in async send queues (backpressure snapshot)."""
        with self._lock:
            endpoints = list(self._endpoints.values())
        total = 0
        for endpoint in endpoints:
            conn = endpoint.conn
            if conn is not None:
                with conn.lock:
                    total += len(conn.outq)
        return total

    def queue_depths(self) -> dict[str, Any]:
        """Send-queue saturation across every live async connection.

        Current depths say how far behind clients are *right now*; the
        high watermarks say how close the worst burst came to the
        eviction bounds (``max_queue_frames`` / ``max_queue_bytes``) --
        a ``hiwat_frames`` near the limit means the next burst evicts.
        """
        with self._lock:
            endpoints = list(self._endpoints.values())
        depth_frames = depth_bytes = 0
        max_depth = hiwat_frames = hiwat_bytes = 0
        connections = 0
        for endpoint in endpoints:
            conn = endpoint.conn
            if conn is None:
                continue
            connections += 1
            with conn.lock:
                depth = len(conn.outq)
                depth_frames += depth
                depth_bytes += conn.queued_bytes
                max_depth = max(max_depth, depth)
                hiwat_frames = max(hiwat_frames, conn.hiwat_frames)
                hiwat_bytes = max(hiwat_bytes, conn.hiwat_bytes)
        return {
            "connections": connections,
            "depth_frames": depth_frames,
            "depth_bytes": depth_bytes,
            "max_depth_frames": max_depth,
            "hiwat_frames": hiwat_frames,
            "hiwat_bytes": hiwat_bytes,
            "limit_frames": self.max_queue_frames,
            "limit_bytes": self.max_queue_bytes,
        }

    def health(self) -> dict[str, Any]:
        """One saturation snapshot of the whole notification plane.

        Combines loop health (:meth:`_EventLoop.stats`), send-queue
        depths/watermarks (:meth:`queue_depths`), per-shard
        NotificationCenter occupancy, and the server's lifetime
        counters.  Each call also publishes the headline numbers as
        ``sync.health.*`` gauges, so a running telemetry sink lands them
        in ``sys_metrics`` and dashboards chart saturation over time the
        same way they chart everything else.
        """
        loop = self._loop
        loop_stats = loop.stats() if loop is not None else None
        queues = self.queue_depths()
        shards = self.center.shard_stats()
        snapshot: dict[str, Any] = {
            "mode": self.mode,
            "use_sockets": self.use_sockets,
            "clients": self.client_count(),
            "connected": self.connected_count(),
            "detached": self.detached_count(),
            "detaches": self.detaches,
            "reattaches": self.reattaches,
            "evictions": self.evictions,
            "loop_errors": self.loop_errors,
            "pings_sent": self.pings_sent,
            "pongs_received": self.pongs_received,
            "loop": loop_stats,
            "queues": queues,
            "shards": shards,
        }
        gauge = OBS.metrics.gauge
        if loop_stats is not None:
            lag = loop_stats["lag_ms"]
            gauge("sync.health.loop_lag_p50_ms").set(lag["p50"] or 0.0)
            gauge("sync.health.loop_lag_p99_ms").set(lag["p99"] or 0.0)
            gauge("sync.health.loop_poll_idle_ratio").set(
                loop_stats["poll_idle_ratio"]
            )
            gauge("sync.health.loop_iterations").set(loop_stats["iterations"])
        gauge("sync.health.queue_depth_frames").set(queues["depth_frames"])
        gauge("sync.health.queue_hiwat_frames").set(queues["hiwat_frames"])
        gauge("sync.health.queue_hiwat_bytes").set(queues["hiwat_bytes"])
        gauge("sync.health.connected").set(snapshot["connected"])
        gauge("sync.health.evictions").set(self.evictions)
        for shard in shards:
            gauge(
                "sync.health.shard_pending_ops", shard=str(shard["shard"])
            ).set(shard["pending_ops"])
        return snapshot

    # ------------------------------------------------------------------
    @staticmethod
    def _trace_ctx(table: str, seq_no: int) -> Optional[dict[str, int]]:
        """The ``ctx`` frame field for one notification, if a span
        context was linked under ``(table, seq_no)`` on this side."""
        linked = OBS.tracer.lookup_link(("notify", table, seq_no))
        if linked is None:
            return None
        context, registered_ns = linked
        return protocol.trace_context(
            context.trace_id, context.span_id, registered_ns
        )

    def _on_notification(self, table: str, op: str, seq_no: int) -> None:
        """Single-event convenience wrapper over :meth:`_on_notifications`."""
        self._on_notifications(table, [(op, seq_no)])

    def broadcast(self, table: str, events: list[tuple[str, int]]) -> None:
        """Push ``[(op, seq_no), ...]`` to every subscriber of ``table``.

        This is the notification plane's entry point -- the center's
        batch listener lands here after every flush.  Exposed publicly so
        fan-out benchmarks can drive the plane directly, without paying
        the storage engine's per-row cost in the measured loop.
        """
        self._on_notifications(table, events)

    def _on_notifications(self, table: str, events: list[tuple[str, int]]) -> None:
        """Step 7: push the recorded events to every client on ``table``.

        One center flush arrives here as one call.  Batch-capable peers
        get a single NOTIFYB frame covering all events; legacy peers get
        one NOTIFY per event -- same information, more messages.  A send
        failure detaches the endpoint (keeping the registration) instead
        of unregistering the client; ``notify_count`` counts only
        *successful* deliveries (per event), ``missed_count`` the ones
        the client will replay from ``changes_since`` after reconnecting.
        """
        if not events:
            return
        with self._lock:
            links = [link for link in self._links.values() if link.table == table]
        if self._async_sockets:
            self._broadcast_async(table, events, links)
            return
        failed: list[_Endpoint] = []
        for link in links:
            endpoint = link.endpoint
            if endpoint is None:
                # In-process mode: delivery happens via the center's own
                # listener fan-out; count the dispatches.
                link.notify_count += len(events)
                continue
            transport = endpoint.stream
            if transport is None:
                link.missed_count += len(events)
                continue
            # Trace-capable peers get the notify/flush span context on
            # the frame itself, so their refresh spans join the
            # server-side trace across the socket (no shared memory).
            want_trace = OBS.enabled and protocol.CAP_TRACE in endpoint.caps
            if protocol.CAP_BATCH in endpoint.caps and len(events) > 1:
                ctx = self._trace_ctx(table, events[-1][1]) if want_trace else None
                frames = [protocol.notify_batch(table, events, ctx=ctx)]
            else:
                frames = [
                    protocol.notify(
                        table,
                        s,
                        op,
                        ctx=self._trace_ctx(table, s) if want_trace else None,
                    )
                    for op, s in events
                ]
            try:
                with endpoint.lock:
                    for frame in frames:
                        transport.send(frame)
            except (OSError, ProtocolError):
                link.missed_count += len(events)
                if endpoint not in failed:
                    failed.append(endpoint)
                continue
            link.notify_count += len(events)
        for endpoint in failed:
            self._detach_endpoint(endpoint)

    def _broadcast_async(
        self, table: str, events: list[tuple[str, int]], links: list[_ClientLink]
    ) -> None:
        """Encode-once fan-out through the per-connection send queues.

        The frame bytes for each capability variant are built exactly
        once per flush and shared by every subscriber's queue entries; a
        healthy client on an idle queue gets its bytes written inline on
        this thread (so accounting stays synchronous), everyone else is
        drained by the event loop.

        Back-to-back broadcasts (arriving faster than the fan-out can be
        written inline) skip the inline write entirely: this thread only
        appends to the queues (sub-microsecond per client) while the
        loop drains them with coalesced sends -- the burst costs a few
        syscalls per client instead of one per notification, and the
        notifying thread never stalls on 1k sockets.
        """
        cache: dict[
            tuple[bool, bool], tuple[list[dict[str, Any]], list[bytes]]
        ] = {}
        now = time.monotonic()
        window = len(links) * BURST_COST_PER_LINK_S
        inline = (now - self._last_broadcast) >= window
        self._last_broadcast = now
        n = len(events)
        dead: list[tuple[_AsyncConn, _Endpoint]] = []
        evicted: list[tuple[_AsyncConn, _Endpoint]] = []
        pending: list[_AsyncConn] = []
        for link in links:
            endpoint = link.endpoint
            if endpoint is None:
                link.notify_count += n
                continue
            conn = endpoint.conn
            if conn is None:
                link.missed_count += n
                continue
            want_trace = OBS.enabled and protocol.CAP_TRACE in endpoint.caps
            use_batch = protocol.CAP_BATCH in endpoint.caps and n > 1
            key = (use_batch, want_trace)
            cached = cache.get(key)
            if cached is None:
                if use_batch:
                    ctx = (
                        self._trace_ctx(table, events[-1][1]) if want_trace else None
                    )
                    messages = [protocol.notify_batch(table, events, ctx=ctx)]
                else:
                    messages = [
                        protocol.notify(
                            table,
                            s,
                            op,
                            ctx=self._trace_ctx(table, s) if want_trace else None,
                        )
                        for op, s in events
                    ]
                cached = (messages, [protocol.encode(m) for m in messages])
                cache[key] = cached
            messages, encoded = cached
            if not inline and conn.faults is None:
                # Burst fast path (no fault wrapper): append the shared
                # bytes under the conn lock without the general-purpose
                # call stack -- at 1k clients per broadcast, per-client
                # call overhead is the fan-out cost.
                with conn.lock:
                    if conn.closing:
                        link.missed_count += n
                        dead.append((conn, endpoint))
                        continue
                    frame = None
                    for data in encoded:
                        frame = _OutFrame(data)
                        conn.outq.append(frame)
                        conn.queued_bytes += len(data)
                    frame.link = link
                    frame.events = n
                    if (
                        len(conn.outq) > self.max_queue_frames
                        or conn.queued_bytes > self.max_queue_bytes
                    ):
                        self._abort_queue_locked(conn)
                        evicted.append((conn, endpoint))
                        continue
                    if not conn.want_write:
                        conn.want_write = True
                        pending.append(conn)
                continue
            frames, kill_now = self._frames_for_conn(conn, messages, encoded)
            delivery_fails = kill_now or bool(frames and frames[-1].kill_after)
            if delivery_fails:
                link.missed_count += n
            elif frames:
                frames[-1].link = link
                frames[-1].events = n
            else:
                # The fault plan dropped or held every chunk: the
                # threaded engine's send() returns normally here.
                link.notify_count += n
                continue
            if not frames:
                dead.append((conn, endpoint))
                continue
            status = self._submit_frames(conn, frames, inline=inline, pending=pending)
            if status == "closed":
                if not delivery_fails:
                    link.missed_count += n
                dead.append((conn, endpoint))
            elif status == "evicted":
                evicted.append((conn, endpoint))
            elif status == "dead":
                dead.append((conn, endpoint))
        if pending:
            loop = self._loop
            if loop is not None:
                loop.submit(lambda: loop.service_conns(pending))
        for conn, _endpoint in dead:
            self._conn_dead(conn)
        for conn, endpoint in evicted:
            self._note_eviction(endpoint)
            self._conn_dead(conn)

    # ------------------------------------------------------------------
    def purge_notifications(self) -> int:
        """Step 11: purge fully-consumed notifications."""
        return self.center.purge()

    def close(self) -> None:
        self._closed = True
        self._stop.set()
        with self._lock:
            links = list(self._links.values())
            endpoints = list(self._endpoints.values())
            self._links.clear()
            self._endpoints.clear()
        if self._async_sockets:
            self._drain_and_stop(endpoints)
        else:
            for endpoint in endpoints:
                transport = endpoint.stream
                endpoint.stream = None
                if transport is not None:
                    try:
                        with endpoint.lock:
                            transport.send(protocol.disconnect())
                    except (OSError, ProtocolError):
                        pass
                    transport.close()
        for link in links:
            self.database.delete(
                datamodel.T_CONNECTED_USER, col("id") == link.connected_user_id
            )
        self.center.remove_batch_listener(self._on_notifications)
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=2.0)
            self._heartbeat_thread = None

    def _drain_and_stop(self, endpoints: list[_Endpoint]) -> None:
        """Graceful async shutdown: say goodbye, flush queues, stop loop."""
        goodbye = protocol.disconnect()
        goodbye_bytes = protocol.encode(goodbye)
        live: list[tuple[_AsyncConn, Any]] = []
        for endpoint in endpoints:
            conn = endpoint.conn
            transport = endpoint.stream
            endpoint.conn = None
            endpoint.stream = None
            if conn is None:
                if transport is not None:
                    transport.close()
                continue
            frames, kill_now = self._frames_for_conn(
                conn, [goodbye], [goodbye_bytes]
            )
            if not kill_now and frames:
                self._submit_frames(conn, frames)
            live.append((conn, transport))
        deadline = time.monotonic() + self.drain_timeout
        while time.monotonic() < deadline:
            pending = 0
            for conn, _transport in live:
                with conn.lock:
                    pending += len(conn.outq)
            if not pending:
                break
            time.sleep(0.005)
        loop = self._loop
        if loop is not None:
            loop.stop()
            self._loop = None
        for conn, transport in live:
            if transport is not None:
                transport.close()
