"""DBMS-side connection manager and NOTIFY dispatcher.

Implements steps 4, 5, 7 and 11 of the Section VI-C protocol: clients
register a ``(db, R_D, ip, port)`` quadruplet in the ConnectedUser table;
the DBMS connects back to each client's listening socket, handshakes, and
thereafter pushes one compact NOTIFY message per statement-level change
to a watched table.
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core import datamodel
from ..db.database import Database
from ..db.expression import col
from ..errors import SyncError
from . import protocol
from .notification import NotificationCenter


@dataclass
class _ClientLink:
    """One registered client connection."""

    connected_user_id: int
    table: str
    host: str
    port: int
    stream: Optional[protocol.MessageStream]
    lock: threading.Lock = field(default_factory=threading.Lock)
    notify_count: int = 0


class SyncServer:
    """Pushes change notifications to registered clients.

    ``use_sockets=False`` runs the identical bookkeeping without opening
    TCP connections -- clients then poll :class:`NotificationCenter`
    directly.  Benchmarks use real sockets (loopback); most unit tests use
    the in-process mode.
    """

    def __init__(
        self,
        database: Database,
        center: Optional[NotificationCenter] = None,
        use_sockets: bool = True,
    ) -> None:
        self.database = database
        self.center = center or NotificationCenter(database)
        self.use_sockets = use_sockets
        self._links: dict[int, _ClientLink] = {}
        #: (host, port) -> shared call-back connection; one per client
        #: process even when it mirrors several tables.
        self._streams: dict[tuple[str, int], protocol.MessageStream] = {}
        self._lock = threading.RLock()
        self._allocator = datamodel.IdAllocator(database)
        self.center.add_listener(self._on_notification)
        self._closed = False

    # ------------------------------------------------------------------
    def register_client(
        self,
        table: str,
        host: str,
        port: int,
        user_id: Optional[int] = None,
    ) -> int:
        """Protocol steps 4-6: record the quadruplet, connect back,
        handshake.  Returns the ConnectedUser id."""
        if self._closed:
            raise SyncError("server is closed")
        self.center.watch(table)
        cu_id = self._allocator.next_id(datamodel.T_CONNECTED_USER)
        self.database.insert(
            datamodel.T_CONNECTED_USER,
            {
                "id": cu_id,
                "user_id": user_id,
                "host": host,
                "port": port,
                "table_name": table,
                "last_seq_no": 0,
            },
        )
        stream: Optional[protocol.MessageStream] = None
        if self.use_sockets:
            with self._lock:
                stream = self._streams.get((host, port))
            if stream is None:
                stream = None
                try:
                    sock = socket.create_connection((host, port), timeout=5.0)
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                    stream = protocol.MessageStream(sock)
                    # Step 5/6: the DBMS expects HELLO and answers REPLY.
                    protocol.server_handshake(stream, timeout=5.0)
                except (OSError, SyncError) as exc:
                    # Failed connection or handshake: no trace left behind.
                    if stream is not None:
                        stream.close()
                    self.database.delete(
                        datamodel.T_CONNECTED_USER, col("id") == cu_id
                    )
                    raise SyncError(
                        f"cannot connect back to client at {host}:{port}: {exc}"
                    ) from None
                with self._lock:
                    self._streams[(host, port)] = stream
        with self._lock:
            self._links[cu_id] = _ClientLink(cu_id, table, host, port, stream)
        return cu_id

    def unregister_client(self, connected_user_id: int) -> None:
        """Protocol step 10: drop the link and the ConnectedUser row."""
        with self._lock:
            link = self._links.pop(connected_user_id, None)
            close_stream = False
            if link is not None and link.stream is not None:
                still_used = any(
                    other.stream is link.stream for other in self._links.values()
                )
                if not still_used:
                    self._streams.pop((link.host, link.port), None)
                    close_stream = True
        if link is not None and close_stream and link.stream is not None:
            link.stream.close()
        self.database.delete(
            datamodel.T_CONNECTED_USER, col("id") == connected_user_id
        )

    def update_client_seq(self, connected_user_id: int, seq_no: int) -> None:
        """Record how far a client has consumed (enables purging)."""
        self.database.update(
            datamodel.T_CONNECTED_USER,
            {"last_seq_no": seq_no},
            col("id") == connected_user_id,
        )

    def client_count(self) -> int:
        with self._lock:
            return len(self._links)

    # ------------------------------------------------------------------
    def _on_notification(self, table: str, op: str, seq_no: int) -> None:
        """Step 7: push NOTIFY to every client registered on ``table``."""
        with self._lock:
            links = [link for link in self._links.values() if link.table == table]
        dead: list[int] = []
        for link in links:
            link.notify_count += 1
            if link.stream is None:
                continue
            with link.lock:
                try:
                    link.stream.send(protocol.notify(table, seq_no, op))
                except OSError:
                    dead.append(link.connected_user_id)
        for cu_id in dead:
            self.unregister_client(cu_id)

    # ------------------------------------------------------------------
    def purge_notifications(self) -> int:
        """Step 11: purge fully-consumed notifications."""
        return self.center.purge()

    def close(self) -> None:
        self._closed = True
        with self._lock:
            links = list(self._links.values())
            self._links.clear()
        for link in links:
            if link.stream is not None:
                try:
                    link.stream.send(protocol.disconnect())
                except OSError:
                    pass
                link.stream.close()
            self.database.delete(
                datamodel.T_CONNECTED_USER, col("id") == link.connected_user_id
            )
        self.center.remove_listener(self._on_notification)
