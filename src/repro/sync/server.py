"""DBMS-side connection manager and NOTIFY dispatcher.

Implements steps 4, 5, 7 and 11 of the Section VI-C protocol: clients
register a ``(db, R_D, ip, port)`` quadruplet in the ConnectedUser table;
the DBMS connects back to each client's listening socket, handshakes, and
thereafter pushes one compact NOTIFY message per statement-level change
to a watched table.

Fault tolerance (beyond the paper, which assumes a reliable LAN): each
callback connection is a *detachable endpoint*.  The server pings it
every ``heartbeat_interval`` seconds and runs a reader thread consuming
the client's PONGs; a send failure, read EOF, or prolonged PONG silence
**detaches** the endpoint -- the ConnectedUser rows and their
``last_seq_no`` survive, so notifications keep accumulating on the
server and the purge horizon (step 11) protects everything the client
has not consumed.  A detached client later calls
:meth:`reconnect_client` to attach a fresh stream and replays what it
missed from ``NotificationCenter.changes_since(last_seq_no)``.  Links
are dropped permanently only by explicit :meth:`unregister_client` /
:meth:`close` (or an operator calling :meth:`evict_detached`).
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..core import datamodel
from ..db.database import Database
from ..db.expression import col
from ..errors import ProtocolError, SyncError
from ..obs.runtime import OBS
from . import protocol
from .notification import NotificationCenter

#: Optional wrapper applied to every callback stream the server opens --
#: the fault-injection hook (see :mod:`repro.sync.faults`).
TransportFactory = Callable[[protocol.MessageStream], Any]


@dataclass
class _Endpoint:
    """One callback connection to a client process (possibly shared by
    several table registrations of that process)."""

    host: str
    port: int
    #: Live transport, or ``None`` while detached.
    stream: Optional[Any]
    #: Serializes writes (NOTIFY vs PING race on the same socket).
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: ``time.monotonic()`` of the last inbound message (PONG).
    last_rx: float = 0.0
    ping_seq: int = 0
    #: ``time.monotonic()`` of the last PING sent (for PONG RTT).
    last_ping_at: float = 0.0
    #: When the endpoint detached (for :meth:`SyncServer.evict_detached`).
    detached_at: Optional[float] = None
    #: Capabilities the client advertised in its HELLO; a peer without
    #: ``batch`` receives per-event NOTIFYs even for flushed batches.
    caps: frozenset[str] = frozenset()


@dataclass
class _ClientLink:
    """One registered (client, table) pair."""

    connected_user_id: int
    table: str
    host: str
    port: int
    endpoint: Optional[_Endpoint]
    #: NOTIFYs successfully delivered (in-process: dispatched).
    notify_count: int = 0
    #: NOTIFYs that could not be pushed because the endpoint was down;
    #: the client recovers them from ``changes_since`` on reconnect.
    missed_count: int = 0


class SyncServer:
    """Pushes change notifications to registered clients.

    ``use_sockets=False`` runs the identical bookkeeping without opening
    TCP connections -- clients then poll :class:`NotificationCenter`
    directly.  Benchmarks use real sockets (loopback); most unit tests use
    the in-process mode.

    ``heartbeat_interval=None`` disables the liveness machinery (no ping
    thread, no reader threads); dead links are then only detected on the
    next failed NOTIFY send.
    """

    def __init__(
        self,
        database: Database,
        center: Optional[NotificationCenter] = None,
        use_sockets: bool = True,
        heartbeat_interval: Optional[float] = 0.5,
        heartbeat_timeout: Optional[float] = None,
        transport_factory: Optional[TransportFactory] = None,
    ) -> None:
        self.database = database
        self.center = center or NotificationCenter(database)
        self.use_sockets = use_sockets
        self.heartbeat_interval = heartbeat_interval
        if heartbeat_timeout is None and heartbeat_interval is not None:
            heartbeat_timeout = heartbeat_interval * 6
        self.heartbeat_timeout = heartbeat_timeout
        self.transport_factory = transport_factory
        self._links: dict[int, _ClientLink] = {}
        #: (host, port) -> shared callback endpoint; one per client
        #: process even when it mirrors several tables.
        self._endpoints: dict[tuple[str, int], _Endpoint] = {}
        self._lock = threading.RLock()
        self._allocator = datamodel.IdAllocator(database)
        # Re-arm watch triggers for tables that durable ConnectedUser rows
        # say clients still mirror: triggers are runtime objects, so a
        # server restarted on a recovered database would otherwise stop
        # logging the very changes those clients reconnect to replay.
        tables = set(database.table_names())
        for row in database.table(datamodel.T_CONNECTED_USER).scan():
            if row["table_name"] in tables:
                self.center.watch(row["table_name"])
        self.center.add_batch_listener(self._on_notifications)
        self._closed = False
        self._stop = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None
        # Counters (tests and dashboards read these).
        self.detaches = 0
        self.reattaches = 0
        self.pings_sent = 0
        self.pongs_received = 0

    # ------------------------------------------------------------------
    # Connection plumbing
    def _open_callback(self, host: str, port: int) -> tuple[Any, frozenset[str]]:
        """Connect back to a client listener and handshake (steps 5-6).

        Returns ``(transport, caps)`` where ``caps`` is what the client
        advertised in its HELLO (empty for pre-capability peers).
        """
        transport: Optional[Any] = None
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            transport = protocol.MessageStream(sock)
            if self.transport_factory is not None:
                transport = self.transport_factory(transport)
            # Step 5/6: the DBMS expects HELLO and answers REPLY.
            caps = protocol.server_handshake(transport, timeout=5.0)
        except (OSError, SyncError) as exc:
            if transport is not None:
                transport.close()
            raise SyncError(
                f"cannot connect back to client at {host}:{port}: {exc}"
            ) from None
        return transport, caps

    def _attach(self, endpoint: _Endpoint, transport: Any) -> None:
        """Install a live transport on an endpoint and start its reader."""
        endpoint.stream = transport
        endpoint.last_rx = time.monotonic()
        endpoint.detached_at = None
        if self.heartbeat_interval is not None:
            reader = threading.Thread(
                target=self._reader_loop, args=(endpoint, transport), daemon=True
            )
            reader.start()
            self._ensure_heartbeat_thread()

    def _ensure_heartbeat_thread(self) -> None:
        with self._lock:
            if self._heartbeat_thread is not None or self._closed:
                return
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop, daemon=True
            )
            self._heartbeat_thread.start()

    def _detach_endpoint(self, endpoint: _Endpoint) -> None:
        """Idempotently take a (suspected dead) transport out of service.

        The registration -- ConnectedUser rows, ``last_seq_no`` horizon,
        link bookkeeping -- survives; only the socket goes away.
        """
        with self._lock:
            transport = endpoint.stream
            if transport is None:
                return
            endpoint.stream = None
            endpoint.detached_at = time.monotonic()
            self.detaches += 1
        # Rare event: always counted, enabled or not.
        OBS.metrics.counter("sync.server.detaches").inc()
        transport.close()

    # ------------------------------------------------------------------
    # Liveness: reader (consumes PONGs) + heartbeat (sends PINGs)
    def _reader_loop(self, endpoint: _Endpoint, transport: Any) -> None:
        while True:
            try:
                message = transport.receive(timeout=None)
            except (OSError, ProtocolError, SyncError):
                break
            endpoint.last_rx = time.monotonic()
            kind = message.get("type")
            if kind == protocol.PONG:
                self.pongs_received += 1
                if OBS.enabled and endpoint.last_ping_at:
                    OBS.metrics.gauge(
                        "sync.heartbeat_rtt_ms",
                        client=f"{endpoint.host}:{endpoint.port}",
                    ).set((endpoint.last_rx - endpoint.last_ping_at) * 1e3)
            elif kind == protocol.DISCONNECT:
                break
        if not self._closed and endpoint.stream is transport:
            self._detach_endpoint(endpoint)

    def _heartbeat_loop(self) -> None:
        assert self.heartbeat_interval is not None
        while not self._stop.wait(self.heartbeat_interval):
            now = time.monotonic()
            with self._lock:
                endpoints = list(self._endpoints.values())
            for endpoint in endpoints:
                transport = endpoint.stream
                if transport is None:
                    continue
                if (
                    self.heartbeat_timeout is not None
                    and now - endpoint.last_rx > self.heartbeat_timeout
                ):
                    self._detach_endpoint(endpoint)
                    continue
                endpoint.ping_seq += 1
                try:
                    endpoint.last_ping_at = time.monotonic()
                    with endpoint.lock:
                        transport.send(protocol.ping(endpoint.ping_seq))
                    self.pings_sent += 1
                except (OSError, ProtocolError):
                    self._detach_endpoint(endpoint)

    # ------------------------------------------------------------------
    def register_client(
        self,
        table: str,
        host: str,
        port: int,
        user_id: Optional[int] = None,
    ) -> int:
        """Protocol steps 4-6: record the quadruplet, connect back,
        handshake.  Returns the ConnectedUser id."""
        if self._closed:
            raise SyncError("server is closed")
        self.center.watch(table)
        cu_id = self._allocator.next_id(datamodel.T_CONNECTED_USER)
        self.database.insert(
            datamodel.T_CONNECTED_USER,
            {
                "id": cu_id,
                "user_id": user_id,
                "host": host,
                "port": port,
                "table_name": table,
                "last_seq_no": 0,
            },
        )
        endpoint: Optional[_Endpoint] = None
        if self.use_sockets:
            with self._lock:
                endpoint = self._endpoints.get((host, port))
            if endpoint is None:
                try:
                    transport, caps = self._open_callback(host, port)
                except SyncError:
                    # Failed connection or handshake: no trace left behind.
                    self.database.delete(
                        datamodel.T_CONNECTED_USER, col("id") == cu_id
                    )
                    raise
                endpoint = _Endpoint(host, port, None, caps=caps)
                self._attach(endpoint, transport)
                with self._lock:
                    self._endpoints[(host, port)] = endpoint
        with self._lock:
            self._links[cu_id] = _ClientLink(cu_id, table, host, port, endpoint)
        return cu_id

    def reconnect_client(self, host: str, port: int) -> bool:
        """Re-attach a fresh callback connection to a detached client.

        The client keeps its ConnectedUser rows (and thus its
        ``last_seq_no`` purge protection) across the outage; this call
        only restores the push path.  Raises :class:`SyncError` when no
        registration exists for ``(host, port)`` or the connect-back
        fails; the client's retry policy decides what happens next.
        """
        if self._closed:
            raise SyncError("server is closed")
        if not self.use_sockets:
            raise SyncError("reconnect_client requires socket mode")
        with self._lock:
            endpoint = self._endpoints.get((host, port))
        if endpoint is None:
            raise SyncError(f"no registered client at {host}:{port}")
        transport, caps = self._open_callback(host, port)
        with self._lock:
            stale = endpoint.stream
            endpoint.stream = None
            endpoint.caps = caps
        if stale is not None:
            stale.close()
        self._attach(endpoint, transport)
        self.reattaches += 1
        OBS.metrics.counter("sync.server.reattaches").inc()
        return True

    def unregister_client(self, connected_user_id: int) -> bool:
        """Protocol step 10: drop the link and the ConnectedUser row.

        Idempotent: concurrent callers (e.g. two notification threads
        observing the same dead client) race benignly -- exactly one
        performs the teardown, the rest return ``False``.
        """
        with self._lock:
            link = self._links.pop(connected_user_id, None)
            if link is None:
                return False
            endpoint = link.endpoint
            drop_endpoint = endpoint is not None and not any(
                other.endpoint is endpoint for other in self._links.values()
            )
            if drop_endpoint:
                self._endpoints.pop((link.host, link.port), None)
        if drop_endpoint and endpoint is not None:
            self._detach_endpoint(endpoint)
        self.database.delete(
            datamodel.T_CONNECTED_USER, col("id") == connected_user_id
        )
        return True

    def evict_detached(self, max_age: float) -> int:
        """Permanently unregister clients detached longer than ``max_age``
        seconds.  Returns the number of links dropped.  This is the
        operator-facing escape hatch that re-enables notification purging
        when a client is never coming back."""
        now = time.monotonic()
        with self._lock:
            stale = [
                link.connected_user_id
                for link in self._links.values()
                if link.endpoint is not None
                and link.endpoint.stream is None
                and link.endpoint.detached_at is not None
                and now - link.endpoint.detached_at >= max_age
            ]
        return sum(1 for cu_id in stale if self.unregister_client(cu_id))

    def update_client_seq(self, connected_user_id: int, seq_no: int) -> None:
        """Record how far a client has consumed (enables purging)."""
        self.database.update(
            datamodel.T_CONNECTED_USER,
            {"last_seq_no": seq_no},
            col("id") == connected_user_id,
        )

    def client_count(self) -> int:
        with self._lock:
            return len(self._links)

    def connected_count(self) -> int:
        """Links whose callback connection is currently live."""
        with self._lock:
            return sum(
                1
                for link in self._links.values()
                if link.endpoint is not None and link.endpoint.stream is not None
            )

    def detached_count(self) -> int:
        """Links registered but currently without a live callback."""
        with self._lock:
            return sum(
                1
                for link in self._links.values()
                if link.endpoint is not None and link.endpoint.stream is None
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _trace_ctx(table: str, seq_no: int) -> Optional[dict[str, int]]:
        """The ``ctx`` frame field for one notification, if a span
        context was linked under ``(table, seq_no)`` on this side."""
        linked = OBS.tracer.lookup_link(("notify", table, seq_no))
        if linked is None:
            return None
        context, registered_ns = linked
        return protocol.trace_context(
            context.trace_id, context.span_id, registered_ns
        )

    def _on_notification(self, table: str, op: str, seq_no: int) -> None:
        """Single-event convenience wrapper over :meth:`_on_notifications`."""
        self._on_notifications(table, [(op, seq_no)])

    def _on_notifications(self, table: str, events: list[tuple[str, int]]) -> None:
        """Step 7: push the recorded events to every client on ``table``.

        One center flush arrives here as one call.  Batch-capable peers
        get a single NOTIFYB frame covering all events; legacy peers get
        one NOTIFY per event -- same information, more messages.  A send
        failure detaches the endpoint (keeping the registration) instead
        of unregistering the client; ``notify_count`` counts only
        *successful* deliveries (per event), ``missed_count`` the ones
        the client will replay from ``changes_since`` after reconnecting.
        """
        if not events:
            return
        with self._lock:
            links = [link for link in self._links.values() if link.table == table]
        failed: list[_Endpoint] = []
        for link in links:
            endpoint = link.endpoint
            if endpoint is None:
                # In-process mode: delivery happens via the center's own
                # listener fan-out; count the dispatches.
                link.notify_count += len(events)
                continue
            transport = endpoint.stream
            if transport is None:
                link.missed_count += len(events)
                continue
            # Trace-capable peers get the notify/flush span context on
            # the frame itself, so their refresh spans join the
            # server-side trace across the socket (no shared memory).
            want_trace = OBS.enabled and protocol.CAP_TRACE in endpoint.caps
            if protocol.CAP_BATCH in endpoint.caps and len(events) > 1:
                ctx = self._trace_ctx(table, events[-1][1]) if want_trace else None
                frames = [protocol.notify_batch(table, events, ctx=ctx)]
            else:
                frames = [
                    protocol.notify(
                        table,
                        s,
                        op,
                        ctx=self._trace_ctx(table, s) if want_trace else None,
                    )
                    for op, s in events
                ]
            try:
                with endpoint.lock:
                    for frame in frames:
                        transport.send(frame)
            except (OSError, ProtocolError):
                link.missed_count += len(events)
                if endpoint not in failed:
                    failed.append(endpoint)
                continue
            link.notify_count += len(events)
        for endpoint in failed:
            self._detach_endpoint(endpoint)

    # ------------------------------------------------------------------
    def purge_notifications(self) -> int:
        """Step 11: purge fully-consumed notifications."""
        return self.center.purge()

    def close(self) -> None:
        self._closed = True
        self._stop.set()
        with self._lock:
            links = list(self._links.values())
            endpoints = list(self._endpoints.values())
            self._links.clear()
            self._endpoints.clear()
        for endpoint in endpoints:
            transport = endpoint.stream
            endpoint.stream = None
            if transport is not None:
                try:
                    with endpoint.lock:
                        transport.send(protocol.disconnect())
                except (OSError, ProtocolError):
                    pass
                transport.close()
        for link in links:
            self.database.delete(
                datamodel.T_CONNECTED_USER, col("id") == link.connected_user_id
            )
        self.center.remove_batch_listener(self._on_notifications)
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=2.0)
            self._heartbeat_thread = None
