"""Deterministic fault injection for the synchronization transport.

Real deployments of the Section VI-C protocol cross real networks, and
real networks drop, delay, duplicate, truncate and sever connections.
This module makes those failures *reproducible*: a :class:`FaultyTransport`
wraps a :class:`~repro.sync.protocol.MessageStream` and perturbs its
message flow according to a :class:`FaultPlan` -- either at exact message
indices (``drop={3}``, ``disconnect_at=7``) or probabilistically from a
seeded RNG (``drop_rate=0.05, seed=42``), so every test and benchmark
run sees the identical failure schedule.

Injection point: :class:`~repro.sync.server.SyncServer` accepts a
``transport_factory`` callable applied to every callback stream it opens,
so the full register -> NOTIFY -> refresh cycle can run over a faulty
wire without touching any production code path::

    plan = FaultPlan(disconnect_at=5)
    server = SyncServer(db, center, use_sockets=True,
                        transport_factory=lambda s: FaultyTransport(s, plan))

Message indices are 0-based and count *sent* messages on this transport,
including the handshake REPLY -- the first NOTIFY on a fresh callback
connection is index 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..faults import FaultSchedule, as_index_set
from .protocol import MessageStream, encode


@dataclass
class FaultPlan:
    """Declarative schedule of transport faults.

    Indexed rules fire at exact 0-based send indices; rate rules fire
    with the given probability per message, drawn from the transport's
    seeded :class:`~repro.faults.FaultSchedule`.  Multiple rules may hit
    the same message; they apply in the order: disconnect, truncate,
    drop, delay, duplicate, hold.
    """

    #: Send indices whose message is silently discarded.
    drop: frozenset = field(default_factory=frozenset)
    #: Send indices whose message is sent twice back-to-back.
    duplicate: frozenset = field(default_factory=frozenset)
    #: index -> seconds: sleep before sending this message.
    delay: dict = field(default_factory=dict)
    #: index -> release_after_index: buffer this message and emit it only
    #: after the later index has been sent (deterministic reordering).
    hold: dict = field(default_factory=dict)
    #: Send half the bytes of this message, then kill the socket.
    truncate_at: Optional[int] = None
    #: Kill the socket instead of sending this message.
    disconnect_at: Optional[int] = None
    #: Probability [0, 1] of dropping any given message.
    drop_rate: float = 0.0
    #: Probability [0, 1] of duplicating any given message.
    duplicate_rate: float = 0.0

    def __post_init__(self) -> None:
        self.drop = as_index_set(self.drop)
        self.duplicate = as_index_set(self.duplicate)


class FaultyTransport:
    """A :class:`MessageStream` wrapper that misbehaves on schedule.

    Only the *send* side is perturbed -- in the sync stack the server
    owns the sending end of every callback connection, so wrapping its
    streams covers lost/duplicated/reordered NOTIFYs, dead connections
    and truncated frames as seen by a client.  ``receive``/``close``
    delegate unchanged (so handshakes and PONG consumption still work).

    All randomness and event counting comes from a private
    :class:`~repro.faults.FaultSchedule`; identical (plan, seed) pairs
    yield identical fault schedules.
    """

    def __init__(
        self,
        stream: MessageStream,
        plan: Optional[FaultPlan] = None,
        seed: int = 0,
        clock: Callable[[float], None] = time.sleep,
    ) -> None:
        self._stream = stream
        self.plan = plan or FaultPlan()
        self._schedule = FaultSchedule(seed)
        self._clock = clock
        self._held: list[tuple[int, bytes]] = []
        # Counters (tests and benchmarks read these).
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.reordered = 0
        self.truncated = 0
        self.disconnected = 0

    @property
    def sent(self) -> int:
        """Messages offered to this transport (including perturbed ones)."""
        return self._schedule.count

    # ------------------------------------------------------------------
    def _kill_socket(self) -> None:
        self._stream.close()

    def _emit(self, data: bytes) -> None:
        self._stream._sock.sendall(data)

    def _take_held(self, just_sent: int) -> list[bytes]:
        due = [(i, d) for i, d in self._held if self.plan.hold[i] <= just_sent]
        if not due:
            return []
        self._held = [(i, d) for i, d in self._held if self.plan.hold[i] > just_sent]
        released = []
        for _index, data in sorted(due):
            released.append(data)
            self.reordered += 1
        return released

    def _release_held(self, just_sent: int) -> None:
        for data in self._take_held(just_sent):
            self._emit(data)

    def send(self, message: dict[str, Any]) -> None:
        plan = self.plan
        index = self._schedule.next_index()
        data = encode(message)
        if plan.disconnect_at is not None and index >= plan.disconnect_at:
            self.disconnected += 1
            self._kill_socket()
            raise BrokenPipeError(f"fault injection: disconnected at message {index}")
        if plan.truncate_at is not None and index == plan.truncate_at:
            self.truncated += 1
            self._emit(data[: max(1, len(data) // 2)])
            self._kill_socket()
            raise BrokenPipeError(f"fault injection: truncated at message {index}")
        if index in plan.drop or self._schedule.chance(plan.drop_rate):
            self.dropped += 1
            self._release_held(index)
            return
        if index in plan.delay:
            self.delayed += 1
            self._clock(plan.delay[index])
        if index in plan.hold:
            self._held.append((index, data))
            return
        self._emit(data)
        if index in plan.duplicate or self._schedule.chance(plan.duplicate_rate):
            self.duplicated += 1
            self._emit(data)
        self._release_held(index)

    def perturb(self, message: dict[str, Any]) -> tuple[list[bytes], bool, float]:
        """Plan the byte-level effect of sending *message*, without I/O.

        Returns ``(chunks, kill, delay)``: the byte chunks to put on the
        wire in order, whether the connection must be severed once they
        are flushed, and a pre-send delay in seconds.  This consumes the
        same seeded :class:`~repro.faults.FaultSchedule` (and bumps the
        same counters) as :meth:`send`, so a given ``(plan, seed)`` pair
        produces the identical fault schedule whether the transport is
        driven by the threaded blocking path or by the async event
        loop's per-client send queues.
        """
        plan = self.plan
        index = self._schedule.next_index()
        data = encode(message)
        if plan.disconnect_at is not None and index >= plan.disconnect_at:
            self.disconnected += 1
            return [], True, 0.0
        if plan.truncate_at is not None and index == plan.truncate_at:
            self.truncated += 1
            return [data[: max(1, len(data) // 2)]], True, 0.0
        if index in plan.drop or self._schedule.chance(plan.drop_rate):
            self.dropped += 1
            return self._take_held(index), False, 0.0
        delay = 0.0
        if index in plan.delay:
            self.delayed += 1
            delay = plan.delay[index]
        if index in plan.hold:
            self._held.append((index, data))
            return [], False, 0.0
        chunks = [data]
        if index in plan.duplicate or self._schedule.chance(plan.duplicate_rate):
            self.duplicated += 1
            chunks.append(data)
        chunks.extend(self._take_held(index))
        return chunks, False, delay

    # ------------------------------------------------------------------
    def receive(self, timeout: Optional[float] = None) -> dict[str, Any]:
        return self._stream.receive(timeout)

    def close(self) -> None:
        self._stream.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultyTransport(sent={self.sent}, dropped={self.dropped}, "
            f"duplicated={self.duplicated}, reordered={self.reordered}, "
            f"disconnected={self.disconnected})"
        )
