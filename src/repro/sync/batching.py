"""Declarative update-propagation policies and delta coalescing.

Section V of the paper defines three propagation behaviors for pushing
changes of R_D toward their consumers:

P1 (*immediate*)
    every statement-level change propagates as it happens -- the
    default, and the only behavior the repro had before this module.
P2 (*deferred to completion*)
    changes accumulate and propagate when an activity (or the caller)
    says the unit of work is done -- :class:`Manual`.
P3 (*periodic*)
    changes accumulate and propagate every T milliseconds or every N
    changes, whichever comes first -- :class:`Threshold`.

A policy object is pure decision logic: the queues live in the layer
applying it (:class:`~repro.sync.notification.NotificationCenter`,
:class:`~repro.ivm.registry.ViewRegistry`,
:class:`~repro.workflow.propagation.PropagationManager`), all of which
buffer raw :class:`~repro.db.table.ChangeSet` objects in a
:class:`DeltaCoalescer` and ship the *net* delta on flush.

Coalescing is per primary key (the tuple identifier) with
last-writer-wins semantics::

    insert + update  -> insert(after)
    insert + delete  -> (nothing)
    update + update  -> update(first before, last after)
    update + delete  -> delete(first before)
    delete + insert  -> update(before, after)     # tid reuse, defensive

so a burst of 10k inserts followed by 10k deletes flushes as zero work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..db.schema import TID
from ..db.table import ChangeSet
from ..errors import SyncError

#: State tags inside :class:`DeltaCoalescer`.
_INS = "insert"
_UPD = "update"
_DEL = "delete"


class PropagationPolicy:
    """Base class: when should buffered changes flush?

    ``should_flush`` is consulted after every enqueued change;
    ``max_delay_ms`` (when not ``None``) lets a timer flush batches that
    would otherwise sit forever on an idle table.
    """

    kind: str = "abstract"
    max_delay_ms: Optional[float] = None

    def should_flush(self, pending_ops: int, age_ms: float) -> bool:
        raise NotImplementedError

    @property
    def buffers(self) -> bool:
        """True when changes are queued rather than propagated inline."""
        return self.kind != "immediate"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


@dataclass(frozen=True, repr=False)
class Immediate(PropagationPolicy):
    """P1: propagate every change as it happens (the default)."""

    kind = "immediate"

    def should_flush(self, pending_ops: int, age_ms: float) -> bool:
        return True


@dataclass(frozen=True, repr=False)
class Threshold(PropagationPolicy):
    """P3 (periodic): flush after ``max_changes`` ops or ``max_delay_ms``
    milliseconds, whichever comes first.

    ``max_delay_ms=None`` disables the time bound (pure count batching).
    """

    max_changes: int = 64
    max_delay_ms: Optional[float] = 50.0

    kind = "threshold"

    def __post_init__(self) -> None:
        if self.max_changes < 1:
            raise SyncError(f"max_changes must be >= 1, got {self.max_changes}")
        if self.max_delay_ms is not None and self.max_delay_ms <= 0:
            raise SyncError(f"max_delay_ms must be positive, got {self.max_delay_ms}")

    def should_flush(self, pending_ops: int, age_ms: float) -> bool:
        if pending_ops >= self.max_changes:
            return True
        return self.max_delay_ms is not None and age_ms >= self.max_delay_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Threshold(max_changes={self.max_changes}, "
            f"max_delay_ms={self.max_delay_ms})"
        )


@dataclass(frozen=True, repr=False)
class Manual(PropagationPolicy):
    """P2 (deferred to completion): flush only when the owner says so.

    The workflow engine flushes manual-policy relations whenever an
    activity completes; any caller can flush explicitly at any time.
    """

    kind = "manual"

    def should_flush(self, pending_ops: int, age_ms: float) -> bool:
        return False


#: Shared singletons for the zero-argument policies.
IMMEDIATE = Immediate()
MANUAL = Manual()


class DeltaCoalescer:
    """Merges queued :class:`ChangeSet` objects into one net change.

    Keyed on the tuple identifier; not thread-safe on its own -- owners
    guard it with their own lock.  ``raw_ops`` counts operations as they
    arrived; the difference to the net size is what coalescing saved.
    """

    __slots__ = ("table", "raw_ops", "_state")

    def __init__(self, table: str) -> None:
        self.table = table
        self.raw_ops = 0
        # tid -> ("insert", after) | ("update", before, after) | ("delete", before)
        self._state: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    def add(self, change: ChangeSet) -> int:
        """Fold one change set in; returns the number of raw ops added."""
        if change.table != self.table:
            raise SyncError(
                f"cannot coalesce changes of {change.table!r} into {self.table!r}"
            )
        ops = 0
        for row in change.inserted:
            self._add_insert(row[TID], row)
            ops += 1
        for before, after in change.updated:
            self._add_update(after[TID], before, after)
            ops += 1
        for row in change.deleted:
            self._add_delete(row[TID], row)
            ops += 1
        self.raw_ops += ops
        return ops

    def _add_insert(self, tid: int, after: dict) -> None:
        prev = self._state.get(tid)
        if prev is None or prev[0] == _INS:
            self._state[tid] = (_INS, after)
        elif prev[0] == _DEL:
            # delete + insert: the row came back -- net effect is an update.
            self._state[tid] = (_UPD, prev[1], after)
        else:  # update + insert (defensive): keep the original before image
            self._state[tid] = (_UPD, prev[1], after)

    def _add_update(self, tid: int, before: dict, after: dict) -> None:
        prev = self._state.get(tid)
        if prev is None:
            self._state[tid] = (_UPD, before, after)
        elif prev[0] == _INS:
            # insert + update: the consumer never saw the intermediate image.
            self._state[tid] = (_INS, after)
        elif prev[0] == _UPD:
            self._state[tid] = (_UPD, prev[1], after)
        else:  # delete + update (defensive): treat like delete + insert
            self._state[tid] = (_UPD, prev[1], after)

    def _add_delete(self, tid: int, before: dict) -> None:
        prev = self._state.get(tid)
        if prev is None:
            self._state[tid] = (_DEL, before)
        elif prev[0] == _INS:
            # insert + delete: the row never existed for the consumer.
            del self._state[tid]
        elif prev[0] == _UPD:
            self._state[tid] = (_DEL, prev[1])
        # delete + delete: keep the first tombstone.

    # ------------------------------------------------------------------
    def net_changeset(self) -> ChangeSet:
        """The coalesced change set (insertion order preserved)."""
        net = ChangeSet(self.table)
        for state in self._state.values():
            if state[0] == _INS:
                net.inserted.append(state[1])
            elif state[0] == _UPD:
                net.updated.append((state[1], state[2]))
            else:
                net.deleted.append(state[1])
        return net

    def net_ops(self) -> int:
        return len(self._state)

    def coalesced_away(self) -> int:
        """Operations eliminated by coalescing (raw minus net)."""
        return self.raw_ops - len(self._state)

    def is_empty(self) -> bool:
        return not self._state

    def __len__(self) -> int:
        return len(self._state)

    def clear(self) -> None:
        self._state.clear()
        self.raw_ops = 0


class BatchBuffer:
    """One keyed set of coalescers plus first-buffered timestamps.

    The shared bookkeeping of every batching layer: per-key pending
    changes, the age of the oldest one, and net extraction.  Owners
    provide the lock.
    """

    def __init__(self) -> None:
        self._pending: dict[str, DeltaCoalescer] = {}
        self._since: dict[str, float] = {}

    def add(self, key: str, change: ChangeSet) -> DeltaCoalescer:
        coalescer = self._pending.get(key)
        if coalescer is None:
            coalescer = self._pending[key] = DeltaCoalescer(change.table)
            self._since[key] = time.monotonic()
        coalescer.add(change)
        return coalescer

    def age_ms(self, key: str) -> float:
        since = self._since.get(key)
        if since is None:
            return 0.0
        return (time.monotonic() - since) * 1000.0

    def take(self, key: str) -> Optional[DeltaCoalescer]:
        """Remove and return the pending coalescer for ``key`` (or None)."""
        self._since.pop(key, None)
        return self._pending.pop(key, None)

    def pending_ops(self, key: str) -> int:
        coalescer = self._pending.get(key)
        return coalescer.raw_ops if coalescer is not None else 0

    def keys(self) -> list[str]:
        return list(self._pending)

    def is_empty(self) -> bool:
        return not self._pending
