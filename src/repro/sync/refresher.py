"""Rate-limited automatic refresh driver.

"Smooth visual interaction requires redisplaying the manipulated data
10 times per second" (Section I) and "the visualization software may
decide what are the appropriate moments to refresh the display"
(Section VI-C, step 8).  A :class:`RefreshDriver` is that decision,
packaged: it watches a client's dirty flags from a background thread and
pulls at most ``max_rate`` times per second per table -- NOTIFY bursts
coalesce into single refreshes, idle tables cost nothing.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ..errors import SyncError
from ..obs.runtime import OBS
from .client import SyncClient

#: Called after each automatic refresh: (table, stats-dict).
RefreshListener = Callable[[str, dict[str, int]], None]


class RefreshDriver:
    """Background auto-refresher for one :class:`SyncClient`."""

    def __init__(
        self,
        client: SyncClient,
        max_rate: float = 10.0,
        poll_interval: float = 0.005,
    ) -> None:
        if max_rate <= 0:
            raise SyncError(f"max_rate must be positive, got {max_rate}")
        self.client = client
        self.min_period = 1.0 / max_rate
        self.poll_interval = poll_interval
        self._listeners: list[RefreshListener] = []
        self._last_refresh: dict[str, float] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        # Counters (tests and dashboards read these).
        self.refreshes = 0
        self.coalesced_rows = 0

    # ------------------------------------------------------------------
    def on_refresh(self, listener: RefreshListener) -> None:
        self._listeners.append(listener)

    def start(self) -> None:
        """Start the background driver (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        """Stop the driver and wait for the thread to exit."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "RefreshDriver":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            now = time.monotonic()
            refreshed_any = False
            for table in self.client.dirty_tables():
                last = self._last_refresh.get(table, 0.0)
                if now - last < self.min_period:
                    continue  # rate limit: let further NOTIFYs coalesce
                try:
                    stats = self.client.refresh(table)
                except Exception:
                    # The client may be closing; stop quietly.
                    self._stop.set()
                    return
                self._last_refresh[table] = time.monotonic()
                self.refreshes += 1
                self.coalesced_rows += stats.get("upserts", 0) + stats.get(
                    "deletes", 0
                )
                refreshed_any = True
                self._notify_listeners(table, stats)
            if not refreshed_any:
                self._stop.wait(self.poll_interval)

    def _notify_listeners(self, table: str, stats: dict[str, int]) -> None:
        """Fan stats out to listeners, inside the refresh's trace.

        When tracing is on, the just-completed refresh span becomes the
        parent for whatever the listeners do (delta application, layout,
        display updates), so the whole reaction shows up as one trace.
        """
        if not self._listeners:
            return
        if not OBS.enabled:
            for listener in list(self._listeners):
                listener(table, stats)
            return
        with OBS.tracer.activate(self.client.last_refresh_context(table)):
            for listener in list(self._listeners):
                listener(table, stats)

    # ------------------------------------------------------------------
    def flush(self, table: str) -> dict[str, int]:
        """Refresh ``table`` immediately, bypassing the rate limit."""
        stats = self.client.refresh(table)
        self._last_refresh[table] = time.monotonic()
        self.refreshes += 1
        return stats
