"""In-memory mirrors of disk-resident tables (R_M for R_D).

"The visualisation software running within an instance of a visualisation
activity needs to maintain portions of a table in memory, to refresh the
visualisation fast" (Section VI-C).  A :class:`MemoryTable` is such a
portion: a client-side dict of rows keyed by tid, refreshed by *pulling*
changed rows after a NOTIFY, and *pushing* local edits back to R_D.

The mirror may be partial: a ``fraction`` or a ``predicate`` restricts
which rows it keeps, supporting the paper's multi-device scenario ("an
iphone showing 10% of the data, a laptop 30%, the WILD wall all of it").
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator, Optional

from ..db.schema import TID
from ..errors import SyncError

Row = dict[str, Any]

#: Row filter deciding membership in a partial mirror.
RowPredicate = Callable[[Row], bool]


class MemoryTable:
    """Client-side mirror of one DBMS table.

    The mirror does not talk to the database directly: a
    :class:`~repro.sync.client.SyncClient` feeds it pulled rows and
    carries its write-backs, so the same class also works in the
    in-process (no socket) configuration used by unit tests.
    """

    def __init__(
        self,
        table: str,
        fraction: float = 1.0,
        predicate: Optional[RowPredicate] = None,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise SyncError(f"fraction must be in (0, 1], got {fraction}")
        self.table = table
        self.fraction = fraction
        self.predicate = predicate
        self.rows: dict[int, Row] = {}
        self.last_seq_no = 0
        self._lock = threading.RLock()
        #: (tid, column) -> value written locally and not yet re-observed;
        #: lets refresh skip redundant reapplication of our own edits
        #: (protocol step 9's "smart" processing).
        self._pending_writes: dict[tuple[int, str], Any] = {}
        # Counters for tests/benchmarks.
        self.applied_inserts = 0
        self.applied_updates = 0
        self.applied_deletes = 0
        self.skipped_self_updates = 0

    # ------------------------------------------------------------------
    def accepts(self, row: Row) -> bool:
        """Partial-mirror membership test."""
        if self.predicate is not None and not self.predicate(row):
            return False
        if self.fraction < 1.0:
            # Deterministic sampling on tid: stable across refreshes.
            return (row[TID] * 2654435761 % 1000) < self.fraction * 1000
        return True

    # ------------------------------------------------------------------
    # Applying pulled changes (called by the sync client)
    def apply_upsert(self, row: Row) -> None:
        with self._lock:
            self._upsert_locked(row)

    def _upsert_locked(self, row: Row) -> None:
        tid = row[TID]
        if not self.accepts(row):
            self.rows.pop(tid, None)
            return
        image = dict(row)
        existing = self.rows.get(tid)
        if existing is not None:
            if self._is_own_echo(tid, image):
                self.skipped_self_updates += 1
                self.rows[tid] = image
                return
            self.applied_updates += 1
        else:
            self.applied_inserts += 1
        self.rows[tid] = image

    def _is_own_echo(self, tid: int, image: Row) -> bool:
        """True when the pulled image only confirms our own pending writes."""
        pending = {
            (ptid, column): value
            for (ptid, column), value in self._pending_writes.items()
            if ptid == tid
        }
        if not pending:
            return False
        for (ptid, column), value in pending.items():
            if image.get(column) != value:
                return False  # a concurrent remote change won; apply normally
        current = self.rows.get(tid, {})
        for key, value in image.items():
            if key.startswith("__") or (tid, key) in pending:
                continue
            if current.get(key) != value:
                return False  # something else changed alongside our write
        for key in pending:
            del self._pending_writes[key]
        return True

    def apply_delete(self, tid: int) -> None:
        with self._lock:
            self._delete_locked(tid)

    def _delete_locked(self, tid: int) -> None:
        if self.rows.pop(tid, None) is not None:
            self.applied_deletes += 1

    def apply_batch(self, upserts: list[Row], deletes: list[int]) -> None:
        """Fold a whole pulled delta in under ONE lock acquisition.

        Semantically identical to calling :meth:`apply_upsert` /
        :meth:`apply_delete` per row, but a 4096-row flush pays one lock
        round trip instead of 4096 -- and readers never observe a
        half-applied batch.
        """
        with self._lock:
            for row in upserts:
                self._upsert_locked(row)
            for tid in deletes:
                self._delete_locked(tid)

    def apply_ops(self, ops: list[tuple[str, Any]]) -> None:
        """Order-preserving batch apply: ``[("upsert", row) | ("delete", tid)]``.

        Used when a pulled change log interleaves kinds (insert, delete,
        re-insert of one tid) and replay order matters.
        """
        with self._lock:
            for kind, payload in ops:
                if kind == "delete":
                    self._delete_locked(payload)
                else:
                    self._upsert_locked(payload)

    # ------------------------------------------------------------------
    # Local edits (to be pushed back by the client)
    def stage_write(self, tid: int, column: str, value: Any) -> None:
        with self._lock:
            if tid not in self.rows:
                raise SyncError(f"R_M for {self.table!r} holds no row with tid {tid}")
            self.rows[tid][column] = value
            self._pending_writes[(tid, column)] = value

    # ------------------------------------------------------------------
    # Reads
    def get(self, tid: int) -> Optional[Row]:
        with self._lock:
            row = self.rows.get(tid)
            return dict(row) if row is not None else None

    def all_rows(self) -> list[Row]:
        with self._lock:
            return [dict(row) for row in self.rows.values()]

    def tids(self) -> list[int]:
        with self._lock:
            return sorted(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.all_rows())
