"""Wire protocol for DBMS <-> visualization synchronization.

Section VI-C's protocol, verbatim:

5. The DBMS connects back to the client at ``ip:port`` and expects a
   HELLO message to check that it is the right protocol.
6. The connection manager accepts the connection, sends the HELLO
   message and expects a REPLY message.
7. When R_D is modified, the DBMS trigger sends a NOTIFY message with
   the table name as parameter.
10. When R_M is deleted, it sends a DISCONNECT message.

Messages are newline-delimited JSON objects: ``{"type": ..., ...}``.
"Smooth interaction with a visualization component requires that
notifications be processed very fast, therefore we keep them very
compact and transmit no more information than the above" -- a NOTIFY
carries only the table name and sequence number.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Optional

from ..errors import ProtocolError

# Message types.
HELLO = "HELLO"
REPLY = "REPLY"
NOTIFY = "NOTIFY"
# Batched-notification extension: one frame carrying every (op, seq_no)
# of a flush for one table, so a 4096-row burst costs one message
# instead of thousands.  Only sent to peers that advertised the "batch"
# capability in their HELLO; everyone else gets per-event NOTIFYs.
NOTIFY_BATCH = "NOTIFYB"
DISCONNECT = "DISCONNECT"
# Liveness extension (not in the paper): the DBMS pings each callback
# connection; the client answers.  Either side treats prolonged silence
# as a dead transport and starts recovery.
PING = "PING"
PONG = "PONG"

#: Protocol magic exchanged during the handshake (steps 5-6).
MAGIC = "ediflow-sync-1"

#: Optional capabilities a peer may advertise in its HELLO.
CAP_BATCH = "batch"
#: Trace-context propagation: a peer advertising "trace" receives a
#: ``ctx`` field on NOTIFY/NOTIFYB frames -- ``{"t": trace_id,
#: "s": span_id, "n": sent_ns}`` -- so its refresh spans join the
#: server-side propagation trace across the socket (no shared link
#: registry required).  Legacy peers never see the field.
CAP_TRACE = "trace"
SUPPORTED_CAPS = frozenset({CAP_BATCH, CAP_TRACE})

#: Generous bound on one serialized message; protects against garbage peers.
MAX_MESSAGE_BYTES = 1 << 16


def encode(message: dict[str, Any]) -> bytes:
    """Serialize one message to its wire form."""
    data = json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"
    if len(data) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message too large ({len(data)} bytes)")
    return data


def decode(line: bytes) -> dict[str, Any]:
    """Parse one wire line into a message dict."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"malformed message: {message!r}")
    return message


def hello(caps: Optional[list[str]] = None) -> dict[str, Any]:
    message: dict[str, Any] = {"type": HELLO, "magic": MAGIC}
    if caps:
        message["caps"] = sorted(caps)
    return message


def reply(caps: Optional[list[str]] = None) -> dict[str, Any]:
    message: dict[str, Any] = {"type": REPLY, "magic": MAGIC}
    if caps:
        message["caps"] = sorted(caps)
    return message


def peer_caps(message: dict[str, Any]) -> frozenset[str]:
    """Capabilities a HELLO/REPLY advertises, restricted to known ones.

    Pre-capability peers send no ``caps`` key at all; a malformed value
    degrades to the empty set rather than failing the handshake --
    capabilities only ever *add* behavior.
    """
    raw = message.get("caps")
    if not isinstance(raw, list):
        return frozenset()
    return frozenset(c for c in raw if isinstance(c, str)) & SUPPORTED_CAPS


def trace_context(
    trace_id: int, span_id: int, sent_ns: int
) -> dict[str, int]:
    """The compact ``ctx`` frame field carrying a span identity."""
    return {"t": trace_id, "s": span_id, "n": sent_ns}


def frame_trace_context(
    message: dict[str, Any]
) -> Optional[tuple[int, int, int]]:
    """Decode a frame's ``ctx`` field into ``(trace_id, span_id, sent_ns)``.

    Returns ``None`` when absent or malformed -- trace context is
    best-effort metadata and must never fail a notification.
    """
    raw = message.get("ctx")
    if not isinstance(raw, dict):
        return None
    trace_id, span_id, sent_ns = raw.get("t"), raw.get("s"), raw.get("n")
    if (
        isinstance(trace_id, int)
        and isinstance(span_id, int)
        and isinstance(sent_ns, int)
        and not isinstance(trace_id, bool)
        and not isinstance(span_id, bool)
        and not isinstance(sent_ns, bool)
    ):
        return trace_id, span_id, sent_ns
    return None


def notify(
    table: str, seq_no: int, op: str, ctx: Optional[dict[str, int]] = None
) -> dict[str, Any]:
    message: dict[str, Any] = {
        "type": NOTIFY,
        "table": table,
        "seq_no": seq_no,
        "op": op,
    }
    if ctx is not None:
        message["ctx"] = ctx
    return message


def notify_batch(
    table: str,
    events: list[tuple[str, int]],
    ctx: Optional[dict[str, int]] = None,
) -> dict[str, Any]:
    """One frame for a whole flush: ``events`` is ``[(op, seq_no), ...]``.

    ``lo``/``hi`` carry the covered seq-no range so a receiver can
    advance its cursor and detect gaps without unpacking every event.
    ``ctx`` (trace-capable peers only) carries the flush span's context.
    """
    if not events:
        raise ProtocolError("a NOTIFYB frame needs at least one event")
    seqs = [seq_no for _op, seq_no in events]
    message: dict[str, Any] = {
        "type": NOTIFY_BATCH,
        "table": table,
        "lo": min(seqs),
        "hi": max(seqs),
        "events": [[op, seq_no] for op, seq_no in events],
    }
    if ctx is not None:
        message["ctx"] = ctx
    return message


def batch_events(message: dict[str, Any]) -> list[tuple[str, int]]:
    """Decode a NOTIFYB frame back into ``[(op, seq_no), ...]``."""
    raw = message.get("events")
    if not isinstance(raw, list) or not raw:
        raise ProtocolError(f"malformed NOTIFYB events: {message!r}")
    events: list[tuple[str, int]] = []
    for item in raw:
        if (
            not isinstance(item, list)
            or len(item) != 2
            or not isinstance(item[0], str)
            or not isinstance(item[1], int)
        ):
            raise ProtocolError(f"malformed NOTIFYB event: {item!r}")
        events.append((item[0], item[1]))
    return events


def disconnect() -> dict[str, Any]:
    return {"type": DISCONNECT}


def ping(seq: int) -> dict[str, Any]:
    return {"type": PING, "seq": seq}


def pong(seq: int) -> dict[str, Any]:
    return {"type": PONG, "seq": seq}


class MessageStream:
    """Line-framed message I/O over a connected socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = b""

    def send(self, message: dict[str, Any]) -> None:
        self._sock.sendall(encode(message))

    def receive(self, timeout: Optional[float] = None) -> dict[str, Any]:
        """Block until one full message arrives (or raise on EOF/timeout)."""
        self._sock.settimeout(timeout)
        while b"\n" not in self._buffer:
            try:
                chunk = self._sock.recv(4096)
            except socket.timeout:
                raise ProtocolError("timed out waiting for a message") from None
            if not chunk:
                raise ProtocolError("connection closed by peer")
            self._buffer += chunk
            # Bound check *after* appending: a single oversized chunk must
            # not slip past the guard just because the buffer was short
            # before the recv.
            if b"\n" not in self._buffer and len(self._buffer) > MAX_MESSAGE_BYTES:
                raise ProtocolError("peer sent an over-long unterminated line")
        line, self._buffer = self._buffer.split(b"\n", 1)
        if len(line) > MAX_MESSAGE_BYTES:
            raise ProtocolError(f"peer sent an over-long message ({len(line)} bytes)")
        return decode(line)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def client_handshake(
    stream: MessageStream,
    timeout: float = 5.0,
    caps: Optional[list[str]] = None,
) -> frozenset[str]:
    """Client side of steps 5-6: send HELLO, await REPLY.

    Returns the capabilities the server echoed back (the negotiated
    set); an old server that ignores ``caps`` yields the empty set.
    """
    stream.send(hello(caps))
    message = stream.receive(timeout)
    if message.get("type") != REPLY or message.get("magic") != MAGIC:
        raise ProtocolError(f"bad handshake reply: {message!r}")
    return peer_caps(message)


def server_handshake(stream: MessageStream, timeout: float = 5.0) -> frozenset[str]:
    """Server side of steps 5-6: await HELLO, send REPLY.

    Returns the client's advertised capabilities; the REPLY echoes the
    intersection with our own so both sides agree on the negotiated set.
    """
    message = stream.receive(timeout)
    if message.get("type") != HELLO or message.get("magic") != MAGIC:
        raise ProtocolError(f"bad handshake hello: {message!r}")
    caps = peer_caps(message)
    stream.send(reply(sorted(caps)))
    return caps
