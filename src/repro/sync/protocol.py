"""Wire protocol for DBMS <-> visualization synchronization.

Section VI-C's protocol, verbatim:

5. The DBMS connects back to the client at ``ip:port`` and expects a
   HELLO message to check that it is the right protocol.
6. The connection manager accepts the connection, sends the HELLO
   message and expects a REPLY message.
7. When R_D is modified, the DBMS trigger sends a NOTIFY message with
   the table name as parameter.
10. When R_M is deleted, it sends a DISCONNECT message.

Messages are newline-delimited JSON objects: ``{"type": ..., ...}``.
"Smooth interaction with a visualization component requires that
notifications be processed very fast, therefore we keep them very
compact and transmit no more information than the above" -- a NOTIFY
carries only the table name and sequence number.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Optional

from ..errors import ProtocolError

# Message types.
HELLO = "HELLO"
REPLY = "REPLY"
NOTIFY = "NOTIFY"
DISCONNECT = "DISCONNECT"
# Liveness extension (not in the paper): the DBMS pings each callback
# connection; the client answers.  Either side treats prolonged silence
# as a dead transport and starts recovery.
PING = "PING"
PONG = "PONG"

#: Protocol magic exchanged during the handshake (steps 5-6).
MAGIC = "ediflow-sync-1"

#: Generous bound on one serialized message; protects against garbage peers.
MAX_MESSAGE_BYTES = 1 << 16


def encode(message: dict[str, Any]) -> bytes:
    """Serialize one message to its wire form."""
    data = json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"
    if len(data) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message too large ({len(data)} bytes)")
    return data


def decode(line: bytes) -> dict[str, Any]:
    """Parse one wire line into a message dict."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"malformed message: {message!r}")
    return message


def hello() -> dict[str, Any]:
    return {"type": HELLO, "magic": MAGIC}


def reply() -> dict[str, Any]:
    return {"type": REPLY, "magic": MAGIC}


def notify(table: str, seq_no: int, op: str) -> dict[str, Any]:
    return {"type": NOTIFY, "table": table, "seq_no": seq_no, "op": op}


def disconnect() -> dict[str, Any]:
    return {"type": DISCONNECT}


def ping(seq: int) -> dict[str, Any]:
    return {"type": PING, "seq": seq}


def pong(seq: int) -> dict[str, Any]:
    return {"type": PONG, "seq": seq}


class MessageStream:
    """Line-framed message I/O over a connected socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = b""

    def send(self, message: dict[str, Any]) -> None:
        self._sock.sendall(encode(message))

    def receive(self, timeout: Optional[float] = None) -> dict[str, Any]:
        """Block until one full message arrives (or raise on EOF/timeout)."""
        self._sock.settimeout(timeout)
        while b"\n" not in self._buffer:
            try:
                chunk = self._sock.recv(4096)
            except socket.timeout:
                raise ProtocolError("timed out waiting for a message") from None
            if not chunk:
                raise ProtocolError("connection closed by peer")
            self._buffer += chunk
            # Bound check *after* appending: a single oversized chunk must
            # not slip past the guard just because the buffer was short
            # before the recv.
            if b"\n" not in self._buffer and len(self._buffer) > MAX_MESSAGE_BYTES:
                raise ProtocolError("peer sent an over-long unterminated line")
        line, self._buffer = self._buffer.split(b"\n", 1)
        if len(line) > MAX_MESSAGE_BYTES:
            raise ProtocolError(f"peer sent an over-long message ({len(line)} bytes)")
        return decode(line)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def client_handshake(stream: MessageStream, timeout: float = 5.0) -> None:
    """Client side of steps 5-6: send HELLO, await REPLY."""
    stream.send(hello())
    message = stream.receive(timeout)
    if message.get("type") != REPLY or message.get("magic") != MAGIC:
        raise ProtocolError(f"bad handshake reply: {message!r}")


def server_handshake(stream: MessageStream, timeout: float = 5.0) -> None:
    """Server side of steps 5-6: await HELLO, send REPLY."""
    message = stream.receive(timeout)
    if message.get("type") != HELLO or message.get("magic") != MAGIC:
        raise ProtocolError(f"bad handshake hello: {message!r}")
    stream.send(reply())
