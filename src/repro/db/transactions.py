"""Transactions: atomic batches of statements with rollback.

The engine keeps an undo log per transaction.  On rollback, inverse
operations are replayed in reverse order directly against the tables
(bypassing triggers -- a rolled-back statement must leave no trace, so
its trigger effects are suppressed by deferring trigger dispatch until
commit, matching statement-level AFTER-trigger semantics).

Nested ``transaction()`` blocks join the outer transaction (savepoints
are not needed by any EdiFlow mechanism and are left out deliberately).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..errors import TransactionError
from .schema import TID
from .table import ChangeSet

if TYPE_CHECKING:  # pragma: no cover
    from .database import Database


@dataclass
class _UndoRecord:
    """One inverse operation: kind is 'insert' | 'update' | 'delete'."""

    kind: str
    table: str
    row: dict[str, Any]  # for insert: the inserted row; for delete: the image
    before: dict[str, Any] | None = None  # for update: prior image


class Transaction:
    """State of one open transaction."""

    def __init__(self, database: "Database") -> None:
        self._database = database
        self._undo: list[_UndoRecord] = []
        self._pending_changes: list[ChangeSet] = []
        self.active = True

    # -- recording (called by Database mutation paths) -------------------
    def record_insert(self, table: str, row: dict[str, Any]) -> None:
        self._undo.append(_UndoRecord("insert", table, row))

    def record_update(
        self, table: str, before: dict[str, Any], after: dict[str, Any]
    ) -> None:
        self._undo.append(_UndoRecord("update", table, after, before=before))

    def record_delete(self, table: str, row: dict[str, Any]) -> None:
        self._undo.append(_UndoRecord("delete", table, row))

    def defer_triggers(self, change: ChangeSet) -> None:
        """Queue a change set for trigger dispatch at commit time."""
        self._pending_changes.append(change)

    # -- lifecycle --------------------------------------------------------
    def commit(self) -> None:
        if not self.active:
            raise TransactionError("transaction is no longer active")
        self.active = False
        pending = self._pending_changes
        self._pending_changes = []
        self._undo.clear()
        # Durability first: the write-ahead log must hold the full
        # transaction before any trigger makes its effects observable.
        # A rolled-back transaction never reaches this point, so the log
        # only ever frames committed work.
        if self._database._commit_hooks and pending:
            self._database._notify_commit(pending)
        # Fire triggers only after the transaction's effects are final.
        for change in pending:
            self._database._triggers.fire(change)

    def rollback(self) -> None:
        if not self.active:
            raise TransactionError("transaction is no longer active")
        self.active = False
        self._pending_changes.clear()
        for record in reversed(self._undo):
            table = self._database.table(record.table)
            if record.kind == "insert":
                table.delete_row(record.row[TID])
            elif record.kind == "delete":
                table.restore_row(record.row)
            else:  # update
                assert record.before is not None
                # Replace the row wholesale so indexes are rebuilt for it.
                if table.get(record.row[TID]) is not None:
                    table.delete_row(record.row[TID])
                table.restore_row(record.before)
        self._undo.clear()


class TransactionContext:
    """``with db.transaction():`` -- commit on success, rollback on error."""

    def __init__(self, database: "Database") -> None:
        self._database = database
        self._owns = False

    def __enter__(self) -> Transaction:
        current = self._database._current_transaction
        if current is None:
            current = Transaction(self._database)
            self._database._current_transaction = current
            self._owns = True
        return current

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if not self._owns:
            # Inner block: the outermost context decides the outcome.
            return False
        transaction = self._database._current_transaction
        self._database._current_transaction = None
        assert transaction is not None
        if exc_type is None:
            transaction.commit()
        else:
            transaction.rollback()
        return False
