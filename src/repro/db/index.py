"""Secondary indexes for the embedded engine.

Two kinds are provided:

* :class:`HashIndex` -- equality lookups (used for primary keys, unique
  constraints, and hash joins on foreign keys).
* :class:`SortedIndex` -- range lookups over an ordered key (used for the
  time-based isolation predicates of Section VI-A, which filter rows by
  creation timestamp, and for Notification ``seq_no`` scans in VI-C).

Indexes map key values to sets of tuple identifiers (tids); the owning
table resolves tids to rows.  NULL keys are indexed under a sentinel so
uniqueness checks can skip them (SQL semantics: NULLs never collide).
"""

from __future__ import annotations

import bisect
from typing import Any, Hashable, Iterable, Iterator

from ..errors import ConstraintViolation

_NULL = object()  # sentinel bucket for NULL keys


def _key_of(value: Any) -> Hashable:
    return _NULL if value is None else value


class HashIndex:
    """Equality index: key value -> set of tids."""

    def __init__(self, table_name: str, columns: tuple[str, ...], unique: bool = False) -> None:
        self.table_name = table_name
        self.columns = columns
        self.unique = unique
        self._buckets: dict[Hashable, set[int]] = {}

    # ------------------------------------------------------------------
    def _key(self, row: dict[str, Any]) -> Hashable:
        if len(self.columns) == 1:
            return _key_of(row[self.columns[0]])
        return tuple(_key_of(row[c]) for c in self.columns)

    def _is_null_key(self, key: Hashable) -> bool:
        if key is _NULL:
            return True
        if isinstance(key, tuple):
            return any(part is _NULL for part in key)
        return False

    # ------------------------------------------------------------------
    def add(self, tid: int, row: dict[str, Any]) -> None:
        key = self._key(row)
        # Check uniqueness BEFORE creating the bucket: a violation must not
        # leave an empty bucket behind (retry loops would accumulate garbage
        # keys otherwise).
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = {tid}
            return
        if self.unique and bucket and not self._is_null_key(key):
            cols = ",".join(self.columns)
            raise ConstraintViolation(
                f"unique constraint on {self.table_name}({cols}) violated by key {key!r}"
            )
        bucket.add(tid)

    def remove(self, tid: int, row: dict[str, Any]) -> None:
        key = self._key(row)
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(tid)
            if not bucket:
                del self._buckets[key]

    def check_insert(self, row: dict[str, Any]) -> None:
        """Raise if adding ``row`` would violate uniqueness (without adding)."""
        if not self.unique:
            return
        key = self._key(row)
        if self._is_null_key(key):
            return
        if self._buckets.get(key):
            cols = ",".join(self.columns)
            raise ConstraintViolation(
                f"unique constraint on {self.table_name}({cols}) violated by key {key!r}"
            )

    # ------------------------------------------------------------------
    def lookup(self, value: Any) -> frozenset[int]:
        """Tids whose indexed key equals ``value`` (single-column form)."""
        if len(self.columns) != 1:
            raise ValueError("use lookup_tuple for composite indexes")
        return frozenset(self._buckets.get(_key_of(value), ()))

    def lookup_tuple(self, values: Iterable[Any]) -> frozenset[int]:
        key = tuple(_key_of(v) for v in values)
        return frozenset(self._buckets.get(key, ()))

    def bucket_size(self, values: Iterable[Any]) -> int:
        """Exact number of tids stored under the key (cheap cost estimate)."""
        if len(self.columns) == 1:
            (value,) = tuple(values)
            key: Hashable = _key_of(value)
        else:
            key = tuple(_key_of(v) for v in values)
        bucket = self._buckets.get(key)
        return len(bucket) if bucket else 0

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())


class SortedIndex:
    """Ordered index over a single column supporting range scans.

    Maintained as a sorted list of ``(key, tid)`` pairs.  NULL keys are not
    indexed (range predicates never match NULL).
    """

    def __init__(self, table_name: str, column: str) -> None:
        self.table_name = table_name
        self.column = column
        self._entries: list[tuple[Any, int]] = []

    def add(self, tid: int, row: dict[str, Any]) -> None:
        key = row[self.column]
        if key is None:
            return
        bisect.insort(self._entries, (key, tid))

    def remove(self, tid: int, row: dict[str, Any]) -> None:
        key = row[self.column]
        if key is None:
            return
        i = bisect.bisect_left(self._entries, (key, tid))
        if i < len(self._entries) and self._entries[i] == (key, tid):
            del self._entries[i]

    def check_insert(self, row: dict[str, Any]) -> None:
        """Sorted indexes are never unique; nothing to check."""

    # ------------------------------------------------------------------
    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[int]:
        """Yield tids with ``low <= key <= high`` (bounds optional)."""
        entries = self._entries
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(entries, (low,))
        else:
            # First entry strictly greater than every (low, tid).
            start = bisect.bisect_right(entries, (low, float("inf")))
        i = start
        n = len(entries)
        while i < n:
            key, tid = entries[i]
            if high is not None:
                if include_high:
                    if key > high:
                        break
                elif key >= high:
                    break
            yield tid
            i += 1

    def count_range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> int:
        """Exact number of entries in the range, in O(log n) (cost estimate)."""
        entries = self._entries
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(entries, (low,))
        else:
            start = bisect.bisect_right(entries, (low, float("inf")))
        if high is None:
            end = len(entries)
        elif include_high:
            end = bisect.bisect_right(entries, (high, float("inf")))
        else:
            end = bisect.bisect_left(entries, (high,))
        return max(0, end - start)

    def min_key(self) -> Any:
        return self._entries[0][0] if self._entries else None

    def max_key(self) -> Any:
        return self._entries[-1][0] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)
