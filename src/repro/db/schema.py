"""Table schemas: columns, keys, and row validation.

A schema is the concrete enactment of one entity of the conceptual data
model (Section IV-B of the paper): "a relation is created for each entity
endowed with a primary key".  Relationships become foreign-key columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from ..errors import ConstraintViolation, SchemaError, TypeMismatchError
from .types import ColumnType, type_from_name

#: Hidden per-row fields maintained by the engine itself.  ``tid`` is the
#: tuple identifier used by deletion tables (Section VI-A), the timestamps
#: implement time-based isolation.
TID = "__tid__"
CREATED_AT = "__created__"
UPDATED_AT = "__updated__"
HIDDEN_FIELDS = (TID, CREATED_AT, UPDATED_AT)


@dataclass(frozen=True)
class Column:
    """One typed column of a relation."""

    name: str
    type: ColumnType
    nullable: bool = True
    default: Any = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")
        if self.name.startswith("__"):
            raise SchemaError(
                f"column name {self.name!r} collides with hidden engine fields"
            )
        if self.default is not None:
            # Validate the default eagerly so bad schemas fail at definition.
            object.__setattr__(self, "default", self.type.validate(self.default))


@dataclass(frozen=True)
class ForeignKey:
    """Declarative foreign key: ``column`` references ``ref_table.ref_column``.

    The engine records foreign keys in the catalog and (optionally) checks
    them on insert; the EdiFlow data model uses them to tie application
    entities to activity instances (``createdBy`` relationships, Fig. 3).
    """

    column: str
    ref_table: str
    ref_column: str


class TableSchema:
    """Schema of a relation: ordered columns plus key constraints."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: str | None = None,
        unique: Iterable[Sequence[str] | str] = (),
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> None:
        if not name or not name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid table name {name!r}")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self._by_name: dict[str, Column] = {}
        for col in self.columns:
            if col.name in self._by_name:
                raise SchemaError(f"duplicate column {col.name!r} in {name!r}")
            self._by_name[col.name] = col
        if primary_key is not None and primary_key not in self._by_name:
            raise SchemaError(
                f"primary key {primary_key!r} is not a column of {name!r}"
            )
        self.primary_key = primary_key
        norm_unique: list[tuple[str, ...]] = []
        for spec in unique:
            cols = (spec,) if isinstance(spec, str) else tuple(spec)
            for c in cols:
                if c not in self._by_name:
                    raise SchemaError(f"unique constraint on unknown column {c!r}")
            norm_unique.append(cols)
        self.unique: tuple[tuple[str, ...], ...] = tuple(norm_unique)
        fks = tuple(foreign_keys)
        for fk in fks:
            if fk.column not in self._by_name:
                raise SchemaError(f"foreign key on unknown column {fk.column!r}")
        self.foreign_keys: tuple[ForeignKey, ...] = fks

    # ------------------------------------------------------------------
    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    # ------------------------------------------------------------------
    def validate_row(self, values: Mapping[str, Any]) -> dict[str, Any]:
        """Validate and complete a row for insertion.

        Unknown keys raise; missing columns take their default (or NULL).
        Returns a fresh dict with every schema column present, coerced to
        canonical Python representations.
        """
        for key in values:
            if key not in self._by_name and key not in HIDDEN_FIELDS:
                raise SchemaError(
                    f"table {self.name!r} has no column {key!r}"
                )
        row: dict[str, Any] = {}
        for col in self.columns:
            if col.name in values:
                value = values[col.name]
            else:
                value = col.default
            try:
                value = col.type.validate(value)
            except TypeMismatchError as exc:
                raise TypeMismatchError(
                    f"{self.name}.{col.name}: {exc}"
                ) from None
            if value is None and not col.nullable:
                raise ConstraintViolation(
                    f"{self.name}.{col.name} is NOT NULL but no value was given"
                )
            row[col.name] = value
        return row

    def validate_update(self, values: Mapping[str, Any]) -> dict[str, Any]:
        """Validate a partial row used by UPDATE: only the given columns."""
        out: dict[str, Any] = {}
        for key, value in values.items():
            col = self.column(key)
            try:
                value = col.type.validate(value)
            except TypeMismatchError as exc:
                raise TypeMismatchError(f"{self.name}.{key}: {exc}") from None
            if value is None and not col.nullable:
                raise ConstraintViolation(
                    f"{self.name}.{key} is NOT NULL; cannot set to NULL"
                )
            out[key] = value
        return out

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Serializable description, used by the catalog and persistence."""
        return {
            "name": self.name,
            "columns": [
                {
                    "name": c.name,
                    "type": c.type.name,
                    "nullable": c.nullable,
                    "default": c.default,
                }
                for c in self.columns
            ],
            "primary_key": self.primary_key,
            "unique": [list(u) for u in self.unique],
            "foreign_keys": [
                {"column": fk.column, "ref_table": fk.ref_table, "ref_column": fk.ref_column}
                for fk in self.foreign_keys
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TableSchema":
        """Inverse of :meth:`to_dict`."""
        columns = [
            Column(
                name=c["name"],
                type=type_from_name(c["type"]),
                nullable=c.get("nullable", True),
                default=c.get("default"),
            )
            for c in data["columns"]
        ]
        fks = [
            ForeignKey(f["column"], f["ref_table"], f["ref_column"])
            for f in data.get("foreign_keys", ())
        ]
        return cls(
            name=data["name"],
            columns=columns,
            primary_key=data.get("primary_key"),
            unique=[tuple(u) for u in data.get("unique", ())],
            foreign_keys=fks,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.type.name}" for c in self.columns)
        return f"<TableSchema {self.name}({cols})>"
