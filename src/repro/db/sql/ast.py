"""Abstract syntax trees produced by the SQL parser.

These are syntax-only: names are unresolved, expressions untyped.  The
planner (:mod:`repro.db.sql.planner`) binds them against the catalog and
lowers them to algebra plans / mutation commands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union


# ---------------------------------------------------------------------------
# Expressions
@dataclass(frozen=True)
class SqlLiteral:
    value: Any


@dataclass(frozen=True)
class SqlParam:
    """A ``?`` placeholder; ``index`` is its 0-based position in the statement."""

    index: int


@dataclass(frozen=True)
class SqlColumn:
    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class SqlUnary:
    op: str  # '-' | 'NOT'
    operand: "SqlExpr"


@dataclass(frozen=True)
class SqlBinary:
    op: str  # comparison, arithmetic, AND, OR
    left: "SqlExpr"
    right: "SqlExpr"


@dataclass(frozen=True)
class SqlIsNull:
    operand: "SqlExpr"
    negate: bool


@dataclass(frozen=True)
class SqlIn:
    operand: "SqlExpr"
    values: Optional[tuple["SqlExpr", ...]]  # literal list form
    subquery: Optional["SelectStmt"]  # subquery form
    negate: bool


@dataclass(frozen=True)
class SqlBetween:
    operand: "SqlExpr"
    low: "SqlExpr"
    high: "SqlExpr"
    negate: bool


@dataclass(frozen=True)
class SqlLike:
    operand: "SqlExpr"
    pattern: "SqlExpr"
    negate: bool


@dataclass(frozen=True)
class SqlCall:
    """Scalar or aggregate function call.

    ``star`` marks ``COUNT(*)``; ``distinct`` marks ``COUNT(DISTINCT x)``
    (and the other aggregates' DISTINCT forms).
    """

    name: str
    args: tuple["SqlExpr", ...]
    star: bool = False
    distinct: bool = False


SqlExpr = Union[
    SqlLiteral, SqlParam, SqlColumn, SqlUnary, SqlBinary,
    SqlIsNull, SqlIn, SqlBetween, SqlLike, SqlCall,
]

AGGREGATE_FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


def contains_aggregate(expr: SqlExpr) -> bool:
    """True if any aggregate call appears in ``expr``."""
    if isinstance(expr, SqlCall):
        if expr.name in AGGREGATE_FUNCS:
            return True
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, SqlUnary):
        return contains_aggregate(expr.operand)
    if isinstance(expr, SqlBinary):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, SqlIsNull):
        return contains_aggregate(expr.operand)
    if isinstance(expr, (SqlIn, SqlBetween, SqlLike)):
        return contains_aggregate(expr.operand)
    return False


# ---------------------------------------------------------------------------
# Statements
@dataclass(frozen=True)
class SelectItem:
    """One output column: expression plus optional alias; ``star`` = ``*``."""

    expr: Optional[SqlExpr]
    alias: Optional[str]
    star: bool = False
    star_table: Optional[str] = None  # for ``t.*``


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None


@dataclass(frozen=True)
class JoinClause:
    table: TableRef
    kind: str  # 'inner' | 'left'
    left: SqlColumn
    right: SqlColumn


@dataclass(frozen=True)
class OrderItem:
    expr: SqlExpr
    ascending: bool


@dataclass(frozen=True)
class SelectStmt:
    items: tuple[SelectItem, ...]
    table: Optional[TableRef]
    joins: tuple[JoinClause, ...] = ()
    where: Optional[SqlExpr] = None
    group_by: tuple[SqlExpr, ...] = ()
    having: Optional[SqlExpr] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[SqlExpr] = None
    offset: Optional[SqlExpr] = None
    distinct: bool = False
    compound: Optional[tuple[str, "SelectStmt"]] = None  # ('UNION'|'UNION ALL'|'EXCEPT', rhs)


@dataclass(frozen=True)
class InsertStmt:
    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[SqlExpr, ...], ...]
    select: Optional[SelectStmt] = None  # INSERT INTO t SELECT ...


@dataclass(frozen=True)
class UpdateStmt:
    table: str
    assignments: tuple[tuple[str, SqlExpr], ...]
    where: Optional[SqlExpr] = None


@dataclass(frozen=True)
class DeleteStmt:
    table: str
    where: Optional[SqlExpr] = None


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    references: Optional[tuple[str, str]] = None  # (table, column)


@dataclass(frozen=True)
class CreateTableStmt:
    table: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTableStmt:
    table: str
    if_exists: bool = False


@dataclass(frozen=True)
class ExplainStmt:
    """``EXPLAIN [ANALYZE | LINEAGE] SELECT ...`` -- show the plan the
    optimizer picks for a query.  ANALYZE runs it and annotates operator
    row counts; LINEAGE runs it with tuple-lineage capture and returns
    one row per (output row, source tuple) provenance edge."""

    select: SelectStmt
    analyze: bool = False
    lineage: bool = False


Statement = Union[
    SelectStmt, InsertStmt, UpdateStmt, DeleteStmt, CreateTableStmt,
    DropTableStmt, ExplainStmt,
]
