"""Tokenizer for the SQL subset.

Token kinds: keywords, identifiers, numbers, strings, operators,
punctuation, and ``?`` parameter placeholders.  Keywords are recognized
case-insensitively; identifiers preserve case.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import SQLSyntaxError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
    "ORDER", "ASC", "DESC", "LIMIT", "OFFSET", "AS", "AND", "OR", "NOT",
    "IN", "IS", "NULL", "TRUE", "FALSE", "JOIN", "LEFT", "INNER", "OUTER",
    "ON", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE",
    "TABLE", "DROP", "PRIMARY", "KEY", "UNIQUE", "REFERENCES", "COUNT",
    "SUM", "AVG", "MIN", "MAX", "UNION", "ALL", "EXCEPT", "BETWEEN", "LIKE",
    "IF", "EXISTS", "EXPLAIN", "ANALYZE",
}

OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "*", "/", "%")
PUNCTUATION = ("(", ")", ",", ".", ";", "?")


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD | IDENT | NUMBER | STRING | OP | PUNCT | EOF
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "KEYWORD" and self.value in names


def tokenize(text: str) -> list[Token]:
    """Turn SQL text into tokens, raising :class:`SQLSyntaxError` on junk."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            # Line comment.
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "'":
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    raise SQLSyntaxError("unterminated string literal", i)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        parts.append("'")  # escaped quote
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token("STRING", "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            has_dot = False
            has_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not has_dot and not has_exp:
                    has_dot = True
                    j += 1
                elif c in "eE" and not has_exp and j > i:
                    has_exp = True
                    j += 1
                    if j < n and text[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token("NUMBER", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        if ch == '"':
            # Quoted identifier.
            end = text.find('"', i + 1)
            if end == -1:
                raise SQLSyntaxError("unterminated quoted identifier", i)
            tokens.append(Token("IDENT", text[i + 1 : end], i))
            i = end + 1
            continue
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in PUNCTUATION:
            tokens.append(Token("PUNCT", ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token("EOF", "", n))
    return tokens
