"""Recursive-descent parser for the SQL subset.

Grammar (informal):

    statement   := select | insert | update | delete | create | drop
    select      := SELECT [DISTINCT] items FROM table [joins] [WHERE expr]
                   [GROUP BY exprs [HAVING expr]] [ORDER BY order_items]
                   [LIMIT expr [OFFSET expr]]
                   [(UNION [ALL] | EXCEPT) select]
    insert      := INSERT INTO name [(cols)] (VALUES tuples | select)
    update      := UPDATE name SET assignments [WHERE expr]
    delete      := DELETE FROM name [WHERE expr]
    create      := CREATE TABLE [IF NOT EXISTS] name (coldefs)
    drop        := DROP TABLE [IF EXISTS] name

Expressions use the usual precedence:
OR < AND < NOT < comparison/IN/BETWEEN/LIKE/IS < additive < multiplicative
< unary minus < primary.
"""

from __future__ import annotations

from typing import Optional

from ...errors import SQLSyntaxError
from .ast import (
    ColumnDef,
    CreateTableStmt,
    DeleteStmt,
    DropTableStmt,
    ExplainStmt,
    InsertStmt,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStmt,
    SqlBetween,
    SqlBinary,
    SqlCall,
    SqlColumn,
    SqlExpr,
    SqlIn,
    SqlIsNull,
    SqlLike,
    SqlLiteral,
    SqlParam,
    SqlUnary,
    Statement,
    TableRef,
    UpdateStmt,
)
from .lexer import Token, tokenize

_AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.pos = 0
        self.param_count = 0

    # -- token helpers --------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def check_keyword(self, *names: str) -> bool:
        return self.current.is_keyword(*names)

    def accept_keyword(self, *names: str) -> bool:
        if self.check_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, name: str) -> None:
        if not self.accept_keyword(name):
            raise SQLSyntaxError(
                f"expected {name}, found {self.current.value!r}",
                self.current.position,
            )

    def accept_punct(self, value: str) -> bool:
        token = self.current
        if token.kind == "PUNCT" and token.value == value:
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> None:
        if not self.accept_punct(value):
            raise SQLSyntaxError(
                f"expected {value!r}, found {self.current.value!r}",
                self.current.position,
            )

    def accept_op(self, *values: str) -> Optional[str]:
        token = self.current
        if token.kind == "OP" and token.value in values:
            self.advance()
            return token.value
        return None

    def expect_ident(self) -> str:
        token = self.current
        if token.kind == "IDENT":
            self.advance()
            return token.value
        # Aggregate names are soft keywords: usable as column names.
        if token.is_keyword(*_AGGREGATES):
            self.advance()
            return token.value.lower()
        raise SQLSyntaxError(
            f"expected identifier, found {token.value!r}", token.position
        )

    # -- statements -----------------------------------------------------
    def parse_statement(self) -> Statement:
        if self.check_keyword("EXPLAIN"):
            self.advance()
            analyze = self.accept_keyword("ANALYZE")
            # LINEAGE is a soft keyword (still usable as an identifier
            # elsewhere): EXPLAIN LINEAGE SELECT ... captures provenance.
            lineage = False
            if (
                not analyze
                and self.current.kind == "IDENT"
                and self.current.value.upper() == "LINEAGE"
            ):
                self.advance()
                lineage = True
            if not self.check_keyword("SELECT"):
                raise SQLSyntaxError(
                    "EXPLAIN supports SELECT statements only",
                    self.current.position,
                )
            stmt: Statement = ExplainStmt(
                self.parse_select(), analyze=analyze, lineage=lineage
            )
        elif self.check_keyword("SELECT"):
            stmt = self.parse_select()
        elif self.check_keyword("INSERT"):
            stmt = self.parse_insert()
        elif self.check_keyword("UPDATE"):
            stmt = self.parse_update()
        elif self.check_keyword("DELETE"):
            stmt = self.parse_delete()
        elif self.check_keyword("CREATE"):
            stmt = self.parse_create()
        elif self.check_keyword("DROP"):
            stmt = self.parse_drop()
        else:
            raise SQLSyntaxError(
                f"unsupported statement starting with {self.current.value!r}",
                self.current.position,
            )
        self.accept_punct(";")
        if self.current.kind != "EOF":
            raise SQLSyntaxError(
                f"trailing input {self.current.value!r}", self.current.position
            )
        return stmt

    def parse_select(self) -> SelectStmt:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())
        table: Optional[TableRef] = None
        joins: list[JoinClause] = []
        if self.accept_keyword("FROM"):
            table = self.parse_table_ref()
            while True:
                kind = None
                if self.accept_keyword("JOIN"):
                    kind = "inner"
                elif self.check_keyword("INNER") or self.check_keyword("LEFT"):
                    if self.accept_keyword("INNER"):
                        kind = "inner"
                    else:
                        self.expect_keyword("LEFT")
                        self.accept_keyword("OUTER")
                        kind = "left"
                    self.expect_keyword("JOIN")
                if kind is None:
                    break
                jtable = self.parse_table_ref()
                self.expect_keyword("ON")
                left = self.parse_column_ref()
                token = self.current
                if not (token.kind == "OP" and token.value == "="):
                    raise SQLSyntaxError(
                        "only equi-joins are supported", token.position
                    )
                self.advance()
                right = self.parse_column_ref()
                joins.append(JoinClause(jtable, kind, left, right))
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        group_by: list[SqlExpr] = []
        having: Optional[SqlExpr] = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_punct(","):
                group_by.append(self.parse_expr())
            if self.accept_keyword("HAVING"):
                having = self.parse_expr()
        order_by: list[OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept_punct(","):
                order_by.append(self.parse_order_item())
        limit = offset = None
        if self.accept_keyword("LIMIT"):
            limit = self.parse_expr()
            if self.accept_keyword("OFFSET"):
                offset = self.parse_expr()
        compound = None
        if self.check_keyword("UNION", "EXCEPT"):
            op = self.advance().value
            if op == "UNION" and self.accept_keyword("ALL"):
                op = "UNION ALL"
            compound = (op, self.parse_select())
        return SelectStmt(
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
            compound=compound,
        )

    def parse_select_item(self) -> SelectItem:
        token = self.current
        if token.kind == "OP" and token.value == "*":
            self.advance()
            return SelectItem(expr=None, alias=None, star=True)
        # ``t.*``
        if (
            token.kind == "IDENT"
            and self.tokens[self.pos + 1].kind == "PUNCT"
            and self.tokens[self.pos + 1].value == "."
            and self.tokens[self.pos + 2].kind == "OP"
            and self.tokens[self.pos + 2].value == "*"
        ):
            table = self.expect_ident()
            self.expect_punct(".")
            self.advance()  # '*'
            return SelectItem(expr=None, alias=None, star=True, star_table=table)
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "IDENT":
            alias = self.expect_ident()
        return SelectItem(expr=expr, alias=alias)

    def parse_table_ref(self) -> TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "IDENT":
            alias = self.expect_ident()
        return TableRef(name=name, alias=alias)

    def parse_column_ref(self) -> SqlColumn:
        first = self.expect_ident()
        if self.accept_punct("."):
            return SqlColumn(name=self.expect_ident(), table=first)
        return SqlColumn(name=first)

    def parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return OrderItem(expr=expr, ascending=ascending)

    def parse_insert(self) -> InsertStmt:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: list[str] = []
        if self.accept_punct("("):
            columns.append(self.expect_ident())
            while self.accept_punct(","):
                columns.append(self.expect_ident())
            self.expect_punct(")")
        if self.check_keyword("SELECT"):
            select = self.parse_select_only()
            return InsertStmt(table=table, columns=tuple(columns), rows=(), select=select)
        self.expect_keyword("VALUES")
        rows: list[tuple[SqlExpr, ...]] = []
        while True:
            self.expect_punct("(")
            values = [self.parse_expr()]
            while self.accept_punct(","):
                values.append(self.parse_expr())
            self.expect_punct(")")
            rows.append(tuple(values))
            if not self.accept_punct(","):
                break
        return InsertStmt(table=table, columns=tuple(columns), rows=tuple(rows))

    def parse_select_only(self) -> SelectStmt:
        """Parse a SELECT used as a component (no trailing-input check)."""
        return self.parse_select()

    def parse_update(self) -> UpdateStmt:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments: list[tuple[str, SqlExpr]] = []
        while True:
            name = self.expect_ident()
            if self.accept_op("=") is None:
                raise SQLSyntaxError("expected '=' in SET", self.current.position)
            assignments.append((name, self.parse_expr()))
            if not self.accept_punct(","):
                break
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return UpdateStmt(table=table, assignments=tuple(assignments), where=where)

    def parse_delete(self) -> DeleteStmt:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return DeleteStmt(table=table, where=where)

    def parse_create(self) -> CreateTableStmt:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        table = self.expect_ident()
        self.expect_punct("(")
        columns = [self.parse_column_def()]
        while self.accept_punct(","):
            columns.append(self.parse_column_def())
        self.expect_punct(")")
        return CreateTableStmt(
            table=table, columns=tuple(columns), if_not_exists=if_not_exists
        )

    def parse_column_def(self) -> ColumnDef:
        name = self.expect_ident()
        token = self.current
        if token.kind == "IDENT":
            type_name = self.expect_ident()
        else:
            raise SQLSyntaxError(
                f"expected type name, found {token.value!r}", token.position
            )
        not_null = primary_key = unique = False
        references = None
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                primary_key = True
            elif self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                not_null = True
            elif self.accept_keyword("UNIQUE"):
                unique = True
            elif self.accept_keyword("REFERENCES"):
                ref_table = self.expect_ident()
                self.expect_punct("(")
                ref_column = self.expect_ident()
                self.expect_punct(")")
                references = (ref_table, ref_column)
            else:
                break
        return ColumnDef(
            name=name,
            type_name=type_name,
            not_null=not_null,
            primary_key=primary_key,
            unique=unique,
            references=references,
        )

    def parse_drop(self) -> DropTableStmt:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return DropTableStmt(table=self.expect_ident(), if_exists=if_exists)

    # -- expressions ----------------------------------------------------
    def parse_expr(self) -> SqlExpr:
        return self.parse_or()

    def parse_or(self) -> SqlExpr:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = SqlBinary("OR", left, self.parse_and())
        return left

    def parse_and(self) -> SqlExpr:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = SqlBinary("AND", left, self.parse_not())
        return left

    def parse_not(self) -> SqlExpr:
        if self.accept_keyword("NOT"):
            return SqlUnary("NOT", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> SqlExpr:
        left = self.parse_additive()
        op = self.accept_op("=", "!=", "<>", "<", "<=", ">", ">=")
        if op is not None:
            return SqlBinary(op, left, self.parse_additive())
        negate = False
        if self.check_keyword("NOT"):
            # lookahead: NOT IN / NOT BETWEEN / NOT LIKE
            nxt = self.tokens[self.pos + 1]
            if nxt.is_keyword("IN", "BETWEEN", "LIKE"):
                self.advance()
                negate = True
        if self.accept_keyword("IN"):
            self.expect_punct("(")
            if self.check_keyword("SELECT"):
                sub = self.parse_select_only()
                self.expect_punct(")")
                return SqlIn(left, values=None, subquery=sub, negate=negate)
            values = [self.parse_expr()]
            while self.accept_punct(","):
                values.append(self.parse_expr())
            self.expect_punct(")")
            return SqlIn(left, values=tuple(values), subquery=None, negate=negate)
        if self.accept_keyword("BETWEEN"):
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return SqlBetween(left, low, high, negate=negate)
        if self.accept_keyword("LIKE"):
            return SqlLike(left, self.parse_additive(), negate=negate)
        if self.accept_keyword("IS"):
            is_negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return SqlIsNull(left, negate=is_negated)
        return left

    def parse_additive(self) -> SqlExpr:
        left = self.parse_multiplicative()
        while True:
            op = self.accept_op("+", "-")
            if op is None:
                return left
            left = SqlBinary(op, left, self.parse_multiplicative())

    def parse_multiplicative(self) -> SqlExpr:
        left = self.parse_unary()
        while True:
            op = self.accept_op("*", "/", "%")
            if op is None:
                return left
            left = SqlBinary(op, left, self.parse_unary())

    def parse_unary(self) -> SqlExpr:
        if self.accept_op("-"):
            return SqlUnary("-", self.parse_unary())
        self.accept_op("+")  # unary plus is a no-op
        return self.parse_primary()

    def parse_primary(self) -> SqlExpr:
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return SqlLiteral(float(text))
            return SqlLiteral(int(text))
        if token.kind == "STRING":
            self.advance()
            return SqlLiteral(token.value)
        if token.kind == "PUNCT" and token.value == "?":
            self.advance()
            param = SqlParam(self.param_count)
            self.param_count += 1
            return param
        if token.is_keyword("NULL"):
            self.advance()
            return SqlLiteral(None)
        if token.is_keyword("TRUE"):
            self.advance()
            return SqlLiteral(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return SqlLiteral(False)
        if token.is_keyword(*_AGGREGATES):
            nxt = self.tokens[self.pos + 1]
            if not (nxt.kind == "PUNCT" and nxt.value == "("):
                # Soft keyword used as a column name (e.g. a column `count`).
                return self.parse_column_ref()
            name = self.advance().value
            self.expect_punct("(")
            if self.current.kind == "OP" and self.current.value == "*":
                self.advance()
                self.expect_punct(")")
                return SqlCall(name, args=(), star=True)
            distinct = self.accept_keyword("DISTINCT")
            arg = self.parse_expr()
            self.expect_punct(")")
            return SqlCall(name, args=(arg,), distinct=distinct)
        if token.kind == "PUNCT" and token.value == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.kind == "IDENT":
            # Function call or column reference.
            nxt = self.tokens[self.pos + 1]
            if nxt.kind == "PUNCT" and nxt.value == "(":
                name = self.expect_ident()
                self.expect_punct("(")
                args: list[SqlExpr] = []
                if not (self.current.kind == "PUNCT" and self.current.value == ")"):
                    args.append(self.parse_expr())
                    while self.accept_punct(","):
                        args.append(self.parse_expr())
                self.expect_punct(")")
                return SqlCall(name.upper(), args=tuple(args))
            return self.parse_column_ref()
        raise SQLSyntaxError(
            f"unexpected token {token.value!r} in expression", token.position
        )


def parse(text: str) -> Statement:
    """Parse one SQL statement."""
    return _Parser(text).parse_statement()


def parse_select(text: str) -> SelectStmt:
    """Parse text that must be a SELECT (used by view definitions)."""
    stmt = parse(text)
    if not isinstance(stmt, SelectStmt):
        raise SQLSyntaxError("expected a SELECT statement")
    return stmt
