"""SQL subset: lexer, parser, and planner for the embedded engine."""

from .ast import Statement
from .parser import parse, parse_select

__all__ = ["Statement", "parse", "parse_select"]
