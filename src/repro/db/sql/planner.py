"""Lowering of SQL ASTs to executable algebra plans.

The planner binds column references against the tables in scope, lowers
SQL expressions to :mod:`repro.db.expression` trees, evaluates ``IN
(SELECT ...)`` subqueries eagerly into materialized sets (the exact shape
EdiFlow's isolation rewriting produces, Section VI-A of the paper), and
assembles the operator tree:

    Scan -> [joins] -> Select -> (Aggregate | Project) -> Distinct
         -> Sort -> Limit -> [Union/Except]
"""

from __future__ import annotations

import re
from typing import Any, Sequence

from ...errors import DatabaseError, SQLSyntaxError
from ..algebra import (
    AggSpec,
    Aggregate,
    Difference,
    Distinct,
    HashJoin,
    KeepAll,
    Limit,
    Plan,
    Project,
    Scan,
    Select,
    Sort,
    Union,
)
from ..expression import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    InSet,
    IsNull,
    Lambda,
    Literal,
    Negate,
    Not,
    Or,
)
from .ast import (
    AGGREGATE_FUNCS,
    OrderItem,
    SelectItem,
    SelectStmt,
    SqlBetween,
    SqlBinary,
    SqlCall,
    SqlColumn,
    SqlExpr,
    SqlIn,
    SqlIsNull,
    SqlLike,
    SqlLiteral,
    SqlParam,
    SqlUnary,
    contains_aggregate,
)


class _Scope:
    """Column-resolution scope: tables visible to the current SELECT."""

    def __init__(self, database: Any, params: Sequence[Any]) -> None:
        self.database = database
        self.params = params
        # alias -> table name; insertion order = join order
        self.tables: dict[str, str] = {}

    def add_table(self, name: str, alias: str | None) -> str:
        table = self.database.table(name)  # raises UnknownTableError
        key = alias or name
        if key in self.tables:
            raise SQLSyntaxError(f"duplicate table alias {key!r}")
        self.tables[key] = table.name
        return key

    def resolve(self, column: SqlColumn) -> str:
        """Return the row-dict key for a column reference."""
        if column.table is not None:
            if column.table not in self.tables:
                raise SQLSyntaxError(
                    f"unknown table alias {column.table!r} for column {column.name!r}"
                )
            if len(self.tables) == 1:
                # Single table in scope: rows carry plain keys.
                return column.name
            return f"{column.table}.{column.name}"
        return column.name

    def columns_of(self, alias: str) -> tuple[str, ...]:
        table = self.database.table(self.tables[alias])
        return table.schema.column_names


_LIKE_CACHE: dict[str, re.Pattern[str]] = {}


def _like_regex(pattern: str) -> re.Pattern[str]:
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        regex = "".join(
            ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
            for ch in pattern
        )
        compiled = re.compile(f"^{regex}$", re.IGNORECASE)
        _LIKE_CACHE[pattern] = compiled
    return compiled


def lower_expr(expr: SqlExpr, scope: _Scope) -> Expression:
    """Lower a SQL expression AST to an evaluable Expression."""
    if isinstance(expr, SqlLiteral):
        return Literal(expr.value)
    if isinstance(expr, SqlParam):
        try:
            return Literal(scope.params[expr.index])
        except IndexError:
            raise DatabaseError(
                f"statement has a '?' at index {expr.index} but only "
                f"{len(scope.params)} parameter(s) were supplied"
            ) from None
    if isinstance(expr, SqlColumn):
        return ColumnRef(scope.resolve(expr))
    if isinstance(expr, SqlUnary):
        operand = lower_expr(expr.operand, scope)
        return Not(operand) if expr.op == "NOT" else Negate(operand)
    if isinstance(expr, SqlBinary):
        left = lower_expr(expr.left, scope)
        right = lower_expr(expr.right, scope)
        if expr.op == "AND":
            return And(left, right)
        if expr.op == "OR":
            return Or(left, right)
        if expr.op in ("+", "-", "*", "/", "%"):
            return Arithmetic(expr.op, left, right)
        return Comparison(expr.op, left, right)
    if isinstance(expr, SqlIsNull):
        return IsNull(lower_expr(expr.operand, scope), negate=expr.negate)
    if isinstance(expr, SqlBetween):
        operand = lower_expr(expr.operand, scope)
        low = lower_expr(expr.low, scope)
        high = lower_expr(expr.high, scope)
        between = And(Comparison(">=", operand, low), Comparison("<=", operand, high))
        return Not(between) if expr.negate else between
    if isinstance(expr, SqlLike):
        operand = lower_expr(expr.operand, scope)
        pattern = lower_expr(expr.pattern, scope)

        def like(row: Any, operand: Expression = operand, pattern: Expression = pattern) -> bool | None:
            value = operand.eval(row)
            pat = pattern.eval(row)
            if value is None or pat is None:
                return None
            return bool(_like_regex(pat).match(str(value)))

        like_expr: Expression = Lambda(like, columns=operand.columns())
        return Not(like_expr) if expr.negate else like_expr
    if isinstance(expr, SqlIn):
        operand = lower_expr(expr.operand, scope)
        if expr.subquery is not None:
            # Materialize the subquery once.  Section VI-A's rewritten
            # queries (tid NOT IN (SELECT tid FROM R_delta ...)) hit this.
            sub_plan = plan_select(expr.subquery, scope.database, scope.params)
            values: set[Any] = set()
            for row in sub_plan.rows(scope.database):
                if len(row) != 1:
                    raise DatabaseError("IN subquery must select exactly one column")
                value = next(iter(row.values()))
                if value is not None:
                    values.add(value)
            return InSet(operand, values, negate=expr.negate)
        literal_values = [
            lower_expr(v, scope).eval({}) for v in expr.values or ()
        ]
        return InList(operand, literal_values, negate=expr.negate)
    if isinstance(expr, SqlCall):
        if expr.name in AGGREGATE_FUNCS:
            raise SQLSyntaxError(
                f"aggregate {expr.name} is not allowed in this context"
            )
        return FunctionCall(expr.name, [lower_expr(a, scope) for a in expr.args])
    raise DatabaseError(f"cannot lower SQL expression {expr!r}")


def _item_name(item: SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    expr = item.expr
    if isinstance(expr, SqlColumn):
        return expr.name
    if isinstance(expr, SqlCall):
        if expr.star:
            return f"{expr.name.lower()}_star"
        if len(expr.args) == 1 and isinstance(expr.args[0], SqlColumn):
            return f"{expr.name.lower()}_{expr.args[0].name}"
        return expr.name.lower()
    return f"col{index}"


def plan_select(
    stmt: SelectStmt,
    database: Any,
    params: Sequence[Any] = (),
    optimize: bool = True,
) -> Plan:
    """Build an executable plan for a SELECT statement.

    With ``optimize`` (the default) the finished tree goes through
    :func:`repro.db.routing.optimize_plan`: selection pushdown, index-leaf
    routing (point, composite, and range probes), and index-nested-loop
    join selection.  Pass ``optimize=False`` to get the naive tree --
    useful for equivalence testing, since optimization never changes
    results, only cost.
    """
    scope = _Scope(database, params)
    plan: Plan
    if stmt.table is None:
        # SELECT without FROM: evaluate items over a single empty row.
        from ..algebra import RowSource

        plan = RowSource([{}], label="<const>")
    else:
        alias = scope.add_table(stmt.table.name, stmt.table.alias)
        multi = bool(stmt.joins)
        plan = Scan(stmt.table.name, alias=alias if multi else None)
        for join in stmt.joins:
            jalias = scope.add_table(join.table.name, join.table.alias)
            right: Plan = Scan(join.table.name, alias=jalias)
            left_key = scope.resolve(join.left)
            right_key = scope.resolve(join.right)
            plan = HashJoin(plan, right, left_key, right_key, how=join.kind)

    if stmt.where is not None:
        plan = Select(plan, lower_expr(stmt.where, scope))

    has_aggregates = any(
        item.expr is not None and contains_aggregate(item.expr) for item in stmt.items
    )
    sorted_early = False
    alias_map: dict[str, str] = {}
    if stmt.group_by or has_aggregates:
        plan = _plan_aggregate(stmt, plan, scope)
        # ORDER BY may reference grouped columns by their base name
        # (``t.name``) while the projected output uses an alias (``team``).
        for i, item in enumerate(stmt.items):
            if isinstance(item.expr, SqlColumn):
                output = _item_name(item, i)
                alias_map[scope.resolve(item.expr)] = output
                alias_map[item.expr.name] = output
    else:
        if stmt.having is not None:
            raise SQLSyntaxError("HAVING requires GROUP BY or aggregates")
        if stmt.order_by and not _order_keys_in_output(stmt):
            # ORDER BY references base-table columns dropped by the
            # projection: sort before projecting (standard SQL allows it).
            plan = _plan_sort(stmt.order_by, (), plan, scope)
            sorted_early = True
        plan = _plan_projection(stmt, plan, scope)

    if stmt.distinct:
        plan = Distinct(plan)
    if stmt.order_by and not sorted_early:
        plan = _plan_sort(stmt.order_by, stmt.items, plan, scope, alias_map)
    if stmt.limit is not None:
        count = lower_expr(stmt.limit, scope).eval({})
        offset = lower_expr(stmt.offset, scope).eval({}) if stmt.offset else 0
        plan = Limit(plan, int(count), int(offset or 0))
    if stmt.compound is not None:
        op, rhs_stmt = stmt.compound
        # ORDER BY / LIMIT written after the compound parse as part of the
        # right-hand SELECT; standard SQL applies them to the whole result.
        import dataclasses

        trailing_order = rhs_stmt.order_by
        trailing_limit = rhs_stmt.limit
        trailing_offset = rhs_stmt.offset
        if trailing_order or trailing_limit is not None:
            rhs_stmt = dataclasses.replace(
                rhs_stmt, order_by=(), limit=None, offset=None
            )
        rhs = plan_select(rhs_stmt, database, params)
        if op == "UNION":
            plan = Union(plan, rhs, all=False)
        elif op == "UNION ALL":
            plan = Union(plan, rhs, all=True)
        else:
            plan = Difference(plan, rhs)
        if trailing_order:
            keys = []
            for order in trailing_order:
                if not isinstance(order.expr, SqlColumn):
                    raise SQLSyntaxError(
                        "ORDER BY after UNION supports plain columns only"
                    )
                keys.append((order.expr.name, order.ascending))
            plan = Sort(plan, keys)
        if trailing_limit is not None:
            count = lower_expr(trailing_limit, scope).eval({})
            offset = (
                lower_expr(trailing_offset, scope).eval({})
                if trailing_offset is not None
                else 0
            )
            plan = Limit(plan, int(count), int(offset or 0))
    if optimize:
        from ..routing import optimize_plan

        plan = optimize_plan(plan, database)
    return plan


def _plan_projection(stmt: SelectStmt, plan: Plan, scope: _Scope) -> Plan:
    if len(stmt.items) == 1 and stmt.items[0].star and stmt.items[0].star_table is None:
        return KeepAll(plan)
    items: list[tuple[str, Expression]] = []
    for i, item in enumerate(stmt.items):
        if item.star:
            aliases = [item.star_table] if item.star_table else list(scope.tables)
            for alias in aliases:
                if alias not in scope.tables:
                    raise SQLSyntaxError(f"unknown table alias {alias!r} in {alias}.*")
                for column in scope.columns_of(alias):
                    key = scope.resolve(SqlColumn(column, alias))
                    items.append((column, ColumnRef(key)))
            continue
        assert item.expr is not None
        items.append((_item_name(item, i), lower_expr(item.expr, scope)))
    return Project(plan, items)


def _plan_aggregate(stmt: SelectStmt, plan: Plan, scope: _Scope) -> Plan:
    group_keys: list[str] = []
    pre_items: list[tuple[str, Expression]] = []
    for g in stmt.group_by:
        if not isinstance(g, SqlColumn):
            raise SQLSyntaxError("GROUP BY supports plain column references only")
        key = scope.resolve(g)
        group_keys.append(key)
        pre_items.append((key, ColumnRef(key)))

    aggregates: list[AggSpec] = []
    out_items: list[tuple[str, Expression]] = []
    agg_index = 0
    for i, item in enumerate(stmt.items):
        if item.star:
            raise SQLSyntaxError("SELECT * cannot be combined with aggregates")
        assert item.expr is not None
        name = _item_name(item, i)
        expr = item.expr
        if isinstance(expr, SqlCall) and expr.name in AGGREGATE_FUNCS:
            if expr.star:
                aggregates.append(AggSpec("COUNT", None, name))
            else:
                arg = lower_expr(expr.args[0], scope)
                arg_name = f"__agg_in_{agg_index}"
                agg_index += 1
                pre_items.append((arg_name, arg))
                aggregates.append(
                    AggSpec(
                        expr.name,
                        ColumnRef(arg_name),
                        name,
                        distinct=expr.distinct,
                    )
                )
            out_items.append((name, ColumnRef(name)))
        elif isinstance(expr, SqlColumn):
            key = scope.resolve(expr)
            if key not in group_keys:
                raise SQLSyntaxError(
                    f"column {key!r} must appear in GROUP BY or an aggregate"
                )
            out_items.append((name, ColumnRef(key)))
        elif contains_aggregate(expr):
            raise SQLSyntaxError(
                "aggregates nested inside expressions are not supported; "
                "select the aggregate and compute over it in a wrapping query"
            )
        else:
            raise SQLSyntaxError(
                "non-aggregated expression in an aggregate query must be a "
                "grouped column"
            )

    # Pre-projection computes group keys and aggregate inputs.
    if pre_items:
        plan = Project(plan, pre_items)
    having = None
    if stmt.having is not None:
        having_scope = _HavingScope(scope, aggregates, stmt.items)
        having = lower_having(stmt.having, having_scope)
    plan = Aggregate(plan, group_keys, aggregates, having=having)
    return Project(plan, out_items)


class _HavingScope:
    """Resolves HAVING expressions against aggregate output rows."""

    def __init__(
        self, scope: _Scope, aggregates: list[AggSpec], items: tuple[SelectItem, ...]
    ) -> None:
        self.scope = scope
        self.by_call: dict[tuple[str, str | None], str] = {}
        for item, spec in _pair_items_with_specs(items, aggregates):
            expr = item.expr
            assert isinstance(expr, SqlCall)
            arg_col = (
                expr.args[0].name
                if expr.args and isinstance(expr.args[0], SqlColumn)
                else None
            )
            self.by_call[(expr.name, arg_col)] = spec.name


def _pair_items_with_specs(
    items: tuple[SelectItem, ...], aggregates: list[AggSpec]
) -> list[tuple[SelectItem, AggSpec]]:
    pairs = []
    agg_iter = iter(aggregates)
    for item in items:
        expr = item.expr
        if isinstance(expr, SqlCall) and expr.name in AGGREGATE_FUNCS:
            pairs.append((item, next(agg_iter)))
    return pairs


def lower_having(expr: SqlExpr, hscope: _HavingScope) -> Expression:
    """Lower a HAVING expression; aggregate calls resolve to output columns."""
    if isinstance(expr, SqlCall) and expr.name in AGGREGATE_FUNCS:
        arg_col = (
            expr.args[0].name
            if expr.args and isinstance(expr.args[0], SqlColumn)
            else None
        )
        name = hscope.by_call.get((expr.name, arg_col))
        if name is None:
            raise SQLSyntaxError(
                "HAVING may only use aggregates that appear in the SELECT list"
            )
        return ColumnRef(name)
    if isinstance(expr, SqlBinary):
        left = lower_having(expr.left, hscope)
        right = lower_having(expr.right, hscope)
        if expr.op == "AND":
            return And(left, right)
        if expr.op == "OR":
            return Or(left, right)
        if expr.op in ("+", "-", "*", "/", "%"):
            return Arithmetic(expr.op, left, right)
        return Comparison(expr.op, left, right)
    if isinstance(expr, SqlUnary):
        operand = lower_having(expr.operand, hscope)
        return Not(operand) if expr.op == "NOT" else Negate(operand)
    if isinstance(expr, SqlLiteral):
        return Literal(expr.value)
    if isinstance(expr, SqlColumn):
        return ColumnRef(hscope.scope.resolve(expr))
    raise SQLSyntaxError("unsupported expression in HAVING")


def _order_keys_in_output(stmt: SelectStmt) -> bool:
    """True when every ORDER BY key names a projected output column."""
    if any(item.star for item in stmt.items):
        return True  # star projection keeps every column
    output_names = {
        _item_name(item, i) for i, item in enumerate(stmt.items)
    }
    for order in stmt.order_by:
        if not isinstance(order.expr, SqlColumn):
            return True  # let _plan_sort raise the proper error later
        if order.expr.name not in output_names:
            return False
    return True


def _plan_sort(
    order_by: tuple[OrderItem, ...],
    items: tuple[SelectItem, ...],
    plan: Plan,
    scope: _Scope,
    alias_map: dict[str, str] | None = None,
) -> Plan:
    keys: list[tuple[str, bool]] = []
    output_names = {_item_name(item, i) for i, item in enumerate(items) if not item.star}
    for order in order_by:
        if not isinstance(order.expr, SqlColumn):
            raise SQLSyntaxError("ORDER BY supports plain column references only")
        name = order.expr.name
        resolved = scope.resolve(order.expr) if order.expr.table is not None else name
        if name in output_names:
            key = name
        elif alias_map and resolved in alias_map:
            key = alias_map[resolved]
        elif alias_map and name in alias_map:
            key = alias_map[name]
        else:
            key = resolved
        keys.append((key, order.ascending))
    return Sort(plan, keys)
