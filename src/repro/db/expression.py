"""Scalar and boolean expressions evaluated over rows.

These expressions serve three masters:

* the relational algebra (:mod:`repro.db.algebra`) uses them as selection
  predicates and projection items;
* the SQL planner compiles parsed SQL expressions into them;
* the workflow expression language (Section V of the paper) embeds queries
  whose predicates are built from them.

Evaluation follows SQL three-valued-logic in the places that matter:
comparisons against NULL yield NULL (represented as ``None``), and a
selection keeps a row only when its predicate evaluates to ``True``.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..errors import UnknownColumnError

Row = Mapping[str, Any]


class Expression:
    """Base class.  Subclasses implement :meth:`eval`."""

    def eval(self, row: Row) -> Any:
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of the columns this expression references."""
        return set()

    # Convenience builders so predicates read naturally in Python code:
    #   (col("state") == "CA") & (col("votes") > 100)
    def __eq__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison("=", self, wrap(other))

    def __ne__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison("!=", self, wrap(other))

    def __lt__(self, other: object) -> "Comparison":
        return Comparison("<", self, wrap(other))

    def __le__(self, other: object) -> "Comparison":
        return Comparison("<=", self, wrap(other))

    def __gt__(self, other: object) -> "Comparison":
        return Comparison(">", self, wrap(other))

    def __ge__(self, other: object) -> "Comparison":
        return Comparison(">=", self, wrap(other))

    def __and__(self, other: "Expression") -> "And":
        return And(self, wrap(other))

    def __or__(self, other: "Expression") -> "Or":
        return Or(self, wrap(other))

    def __invert__(self) -> "Not":
        return Not(self)

    def __add__(self, other: object) -> "Arithmetic":
        return Arithmetic("+", self, wrap(other))

    def __sub__(self, other: object) -> "Arithmetic":
        return Arithmetic("-", self, wrap(other))

    def __mul__(self, other: object) -> "Arithmetic":
        return Arithmetic("*", self, wrap(other))

    def __truediv__(self, other: object) -> "Arithmetic":
        return Arithmetic("/", self, wrap(other))

    def __hash__(self) -> int:  # __eq__ is overloaded, keep hashable by id
        return id(self)

    def is_in(self, values: Iterable[Any]) -> "InList":
        return InList(self, list(values))

    def is_null(self) -> "IsNull":
        return IsNull(self, negate=False)

    def is_not_null(self) -> "IsNull":
        return IsNull(self, negate=True)


def wrap(value: object) -> Expression:
    """Lift a plain Python value into a :class:`Literal` (idempotent)."""
    if isinstance(value, Expression):
        return value
    return Literal(value)


class Literal(Expression):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def eval(self, row: Row) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


class ColumnRef(Expression):
    """Reference to a column by (possibly qualified) name.

    Qualified names (``t.col``) are produced by the SQL planner when two
    tables in scope share a column name; the executor materializes rows
    with both plain and qualified keys where needed.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def eval(self, row: Row) -> Any:
        try:
            return row[self.name]
        except KeyError:
            # Fall back to the unqualified suffix: rows from a single-table
            # scan carry plain column names.
            if "." in self.name:
                suffix = self.name.split(".", 1)[1]
                if suffix in row:
                    return row[suffix]
            raise UnknownColumnError(
                f"no column {self.name!r} in row with columns {sorted(row)}"
            ) from None

    def columns(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"col({self.name!r})"


def col(name: str) -> ColumnRef:
    """Shorthand constructor used throughout the library and by users."""
    return ColumnRef(name)


_CMP_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Comparison(Expression):
    """Binary comparison with SQL NULL semantics (NULL op x -> NULL)."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op == "<>":
            op = "!="
        if op not in _CMP_OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, row: Row) -> bool | None:
        lhs = self.left.eval(row)
        rhs = self.right.eval(row)
        if lhs is None or rhs is None:
            return None
        return _CMP_OPS[self.op](lhs, rhs)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expression):
    """Three-valued AND."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expression, right: Expression) -> None:
        self.left = left
        self.right = right

    def eval(self, row: Row) -> bool | None:
        lhs = self.left.eval(row)
        if lhs is False:
            return False
        rhs = self.right.eval(row)
        if rhs is False:
            return False
        if lhs is None or rhs is None:
            return None
        return True

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()


class Or(Expression):
    """Three-valued OR."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expression, right: Expression) -> None:
        self.left = left
        self.right = right

    def eval(self, row: Row) -> bool | None:
        lhs = self.left.eval(row)
        if lhs is True:
            return True
        rhs = self.right.eval(row)
        if rhs is True:
            return True
        if lhs is None or rhs is None:
            return None
        return False

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()


class Not(Expression):
    """Three-valued NOT."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expression) -> None:
        self.operand = operand

    def eval(self, row: Row) -> bool | None:
        value = self.operand.eval(row)
        if value is None:
            return None
        return not value

    def columns(self) -> set[str]:
        return self.operand.columns()


class IsNull(Expression):
    """``expr IS [NOT] NULL`` -- always two-valued."""

    __slots__ = ("operand", "negate")

    def __init__(self, operand: Expression, negate: bool = False) -> None:
        self.operand = operand
        self.negate = negate

    def eval(self, row: Row) -> bool:
        result = self.operand.eval(row) is None
        return not result if self.negate else result

    def columns(self) -> set[str]:
        return self.operand.columns()


_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
}


class Arithmetic(Expression):
    """Binary arithmetic; NULL-propagating; division by zero yields NULL."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _ARITH_OPS:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, row: Row) -> Any:
        lhs = self.left.eval(row)
        rhs = self.right.eval(row)
        if lhs is None or rhs is None:
            return None
        if self.op in ("/", "%") and rhs == 0:
            return None
        return _ARITH_OPS[self.op](lhs, rhs)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()


class Negate(Expression):
    """Unary minus."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expression) -> None:
        self.operand = operand

    def eval(self, row: Row) -> Any:
        value = self.operand.eval(row)
        return None if value is None else -value

    def columns(self) -> set[str]:
        return self.operand.columns()


class InList(Expression):
    """``expr IN (v1, v2, ...)`` against a fixed value list."""

    __slots__ = ("operand", "values", "negate", "_set")

    def __init__(self, operand: Expression, values: Sequence[Any], negate: bool = False) -> None:
        self.operand = operand
        self.values = list(values)
        self.negate = negate
        try:
            self._set: set[Any] | None = set(self.values)
        except TypeError:
            self._set = None

    def eval(self, row: Row) -> bool | None:
        value = self.operand.eval(row)
        if value is None:
            return None
        if self._set is not None:
            found = value in self._set
        else:
            found = value in self.values
        return not found if self.negate else found

    def columns(self) -> set[str]:
        return self.operand.columns()


class InSet(Expression):
    """``expr [NOT] IN <materialized set>`` -- the executed form of a
    subquery membership test.

    The planner materializes the subquery result once per statement and
    plugs the resulting set in here.  EdiFlow's isolation rewriting
    (Section VI-A) relies on exactly this shape:
    ``tid NOT IN (SELECT tid FROM R_delta WHERE ...)``.
    """

    __slots__ = ("operand", "values", "negate")

    def __init__(self, operand: Expression, values: set[Any], negate: bool = False) -> None:
        self.operand = operand
        self.values = values
        self.negate = negate

    def eval(self, row: Row) -> bool | None:
        value = self.operand.eval(row)
        if value is None:
            return None
        found = value in self.values
        return not found if self.negate else found

    def columns(self) -> set[str]:
        return self.operand.columns()


_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "ABS": abs,
    "LOWER": lambda s: s.lower(),
    "UPPER": lambda s: s.upper(),
    "LENGTH": len,
    "ROUND": round,
    "COALESCE": lambda *args: next((a for a in args if a is not None), None),
    "MIN2": min,
    "MAX2": max,
}


class FunctionCall(Expression):
    """Scalar function call (ABS, LOWER, UPPER, LENGTH, ROUND, COALESCE...)."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expression]) -> None:
        name = name.upper()
        if name not in _FUNCTIONS:
            raise ValueError(f"unknown scalar function {name!r}")
        self.name = name
        self.args = list(args)

    def eval(self, row: Row) -> Any:
        values = [arg.eval(row) for arg in self.args]
        if self.name != "COALESCE" and any(v is None for v in values):
            return None
        return _FUNCTIONS[self.name](*values)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for arg in self.args:
            out |= arg.columns()
        return out


class Lambda(Expression):
    """Escape hatch: evaluate an arbitrary Python callable over the row.

    Used by black-box procedures that need predicates the SQL subset cannot
    express; mirrors the paper's stance that procedures are opaque to the
    engine.
    """

    __slots__ = ("fn", "_columns")

    def __init__(self, fn: Callable[[Row], Any], columns: Iterable[str] = ()) -> None:
        self.fn = fn
        self._columns = set(columns)

    def eval(self, row: Row) -> Any:
        return self.fn(row)

    def columns(self) -> set[str]:
        return set(self._columns)


def evaluate_predicate(predicate: Expression | None, row: Row) -> bool:
    """Apply SQL selection semantics: keep the row only on ``True``."""
    if predicate is None:
        return True
    return predicate.eval(row) is True
