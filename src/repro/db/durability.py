"""Durability: WAL-backed databases, checkpoints, and crash recovery.

The paper's architectural bet is that the persistent DBMS unifies data,
process state, and visualizations -- so the embedded engine must offer
the durability a real DBMS would.  This module provides it:

* :func:`open_durable` opens (or recovers) a database rooted in a
  directory and attaches a :class:`DurabilityManager` to it: every
  committed statement batch is framed into the write-ahead log
  (:mod:`repro.db.wal`) *before* its triggers fire, and DDL is logged
  as it happens.
* :meth:`DurabilityManager.checkpoint` folds the log into a fresh
  snapshot (reusing the atomic, fsynced ``save_snapshot`` machinery)
  and starts a new WAL segment, bounding recovery time.
* :func:`recover` rebuilds a database from the newest intact checkpoint
  plus a redo pass over its WAL segment, truncating any torn tail.

Directory layout (generation-numbered so every checkpoint step is an
atomic transition -- recovery always finds a consistent pair)::

    <dir>/checkpoint-000003.snap   newest durable snapshot
    <dir>/wal-000003.log           segment with everything since

Checkpoint N+1 writes ``checkpoint-N+1`` durably, creates an empty
``wal-N+1``, switches appends over, then deletes generation N.  A crash
between any two steps leaves either generation fully usable: recovery
picks the highest generation whose snapshot loads, and a snapshot
without its WAL segment simply has nothing to replay.

The WAL serialization point is *commit order*.  Values stored in a
durable database must be JSON-serializable (the same contract snapshots
impose); the log refuses a commit that is not, loudly.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from threading import RLock
from typing import Any, Optional

from ..errors import DatabaseError
from ..faults import CrashInjector
from ..obs.runtime import OBS
from .database import Database
from .persistence import load_snapshot, save_snapshot
from .schema import TID, TableSchema
from .table import ChangeSet
from .wal import (
    FSYNC_ALWAYS,
    KIND_BEGIN,
    KIND_COMMIT,
    KIND_DDL,
    KIND_OP,
    WriteAheadLog,
    committed_transactions,
    fsync_dir,
    read_wal,
    truncate_torn_tail,
)

__all__ = ["DurabilityManager", "RecoveryInfo", "open_durable", "recover"]

_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{6})\.snap$")


def _checkpoint_path(directory: Path, generation: int) -> Path:
    return directory / f"checkpoint-{generation:06d}.snap"


def _wal_path(directory: Path, generation: int) -> Path:
    return directory / f"wal-{generation:06d}.log"


def _generations(directory: Path) -> list[int]:
    """All checkpoint generations present, newest first."""
    gens = []
    if not directory.is_dir():
        return gens
    for entry in directory.iterdir():
        match = _CHECKPOINT_RE.match(entry.name)
        if match:
            gens.append(int(match.group(1)))
    gens.sort(reverse=True)
    return gens


@dataclass
class RecoveryInfo:
    """What one recovery pass found and did."""

    database: Database = field(repr=False)
    generation: int = 0
    replayed_txns: int = 0
    replayed_ops: int = 0
    truncated_bytes: int = 0
    next_txn: int = 1
    snapshot_rows: int = 0


# ----------------------------------------------------------------------
# Redo application (bypasses triggers, transactions and the clock: the
# images carry their original tids and timestamps).
def _restore(table: Any, row: dict[str, Any]) -> None:
    if table.get(row[TID]) is not None:
        table.delete_row(row[TID])
    table.restore_row(row)


def _bulk_insert(table: Any, cols: list[str], vals: list[Any]) -> bool:
    """Land a committed columnar "I" record as a single bulk load.

    The writer's flat row-major array is sliced into per-column lists
    (``vals[i::width]``), which go straight into the table -- and, when a
    column store is active, straight into column chunks without a
    per-row transpose.  Returns False (leaving the table untouched) when
    the record cannot be bulk-loaded -- a tid collision with checkpoint
    state or a non-monotonic tid sequence -- so the caller falls back to
    per-row restore.
    """
    bulk = getattr(table, "bulk_restore", None)
    if bulk is None or not vals:
        return bulk is not None and not vals
    width = len(cols)
    columns = {name: vals[i::width] for i, name in enumerate(cols)}
    rows = [dict(zip(cols, values)) for values in zip(*[iter(vals)] * width)]
    return bulk(rows, columns=columns)


def _apply_op(database: Database, op: dict[str, Any]) -> int:
    """Redo one WAL operation; returns the number of rows it touched.

    The writer emits *columnar* group ops ("I"/"U" with ``cols`` plus a
    flat ``vals`` array read back in ``cols``-sized strides, "D" with a
    tid list); per-row ``rows`` lists and the lowercase single-row forms
    ("i"/"u"/"d") remain readable for hand-built logs.
    """
    if op.get("k") == KIND_DDL:
        if op["op"] == "create":
            schema = TableSchema.from_dict(op["s"])
            if not database.has_table(schema.name):
                database.create_table(schema.name, schema=schema)
        else:
            database.drop_table(op["t"], if_exists=True)
        return 1
    table = database.table(op["t"])
    kind = op["op"]
    if kind in ("I", "U"):
        cols = op["cols"]
        if "vals" in op:
            if kind == "I" and _bulk_insert(table, cols, op["vals"]):
                return len(op["vals"]) // len(cols)
            # zip(*[iter]*width) regroups the flat array into rows at C
            # speed -- the inverse of the writer's flattening.
            rows = list(zip(*[iter(op["vals"])] * len(cols)))
        else:
            rows = op["rows"]
        for values in rows:
            _restore(table, dict(zip(cols, values)))
        return len(rows)
    if kind == "D":
        for tid in op["tids"]:
            if tid in table:
                table.delete_row(tid)
        return len(op["tids"])
    if kind == "i":
        row = dict(op["r"])
        if table.get(row[TID]) is None:
            table.restore_row(row)
    elif kind == "u":
        _restore(table, dict(op["r"]))
    elif kind == "d":
        if op["tid"] in table:
            table.delete_row(op["tid"])
    else:  # pragma: no cover - format invariant
        raise DatabaseError(f"unknown WAL op kind {kind!r}")
    return 1


def _recover(directory: Path) -> RecoveryInfo:
    """Load the newest intact checkpoint and redo its WAL segment."""
    generations = _generations(directory)
    if not generations:
        raise DatabaseError(f"{directory}: no checkpoint to recover from")
    last_error: Optional[Exception] = None
    for generation in generations:
        try:
            database = load_snapshot(_checkpoint_path(directory, generation))
        except (DatabaseError, OSError) as exc:
            last_error = exc
            continue
        info = RecoveryInfo(database=database, generation=generation)
        info.snapshot_rows = sum(
            len(database.table(t)) for t in database.table_names()
        )
        wal_file = _wal_path(directory, generation)
        highest_clock = database.now()
        highest_txn = 0
        if wal_file.exists():
            records, good_offset = read_wal(wal_file)
            info.truncated_bytes = truncate_torn_tail(wal_file, good_offset)
            for record in records:
                txn_id = record.payload.get("x")
                if isinstance(txn_id, int) and txn_id > highest_txn:
                    highest_txn = txn_id
            for clock, ops in committed_transactions(records):
                for op in ops:
                    info.replayed_ops += _apply_op(database, op)
                info.replayed_txns += 1
                if clock > highest_clock:
                    highest_clock = clock
        database.restore_clock(highest_clock)
        info.next_txn = highest_txn + 1
        return info
    raise DatabaseError(
        f"{directory}: every checkpoint is unreadable (last error: {last_error})"
    )


def recover(directory: str | Path) -> Database:
    """Rebuild a :class:`Database` from a durable directory.

    Loads the newest intact checkpoint, replays the committed WAL tail
    over it (truncating a torn tail at the first bad-CRC or partial
    record), and restores the logical clock.  The returned database is
    *not* yet attached to a :class:`DurabilityManager` -- use
    :func:`open_durable` to recover and continue writing durably.
    """
    directory = Path(directory)
    if not OBS.enabled:
        return _recover(directory).database
    with OBS.tracer.span("db.recover", tags={"dir": str(directory)}) as span:
        info = _recover(directory)
        span.set_tag("generation", info.generation)
        span.set_tag("replayed_txns", info.replayed_txns)
        span.set_tag("replayed_ops", info.replayed_ops)
        span.set_tag("truncated_bytes", info.truncated_bytes)
    OBS.metrics.counter("wal.recoveries").inc()
    return info.database


def _columnar(kind: str, table: str, rows: list[dict[str, Any]]) -> dict[str, Any]:
    """Encode uniform row dicts as one cols list + a flat value array.

    Every stored row of a table is built by ``validate_row`` (schema
    order, then the hidden fields), so all rows share one key order and
    ``values()`` projects them faithfully.  The values land in a single
    flat list (row-major, ``len(cols)``-sized strides): one flat array
    JSON-encodes measurably faster than thousands of per-row lists, and
    this sits on the hot commit path of every durable write.
    """
    return {
        "op": kind,
        "t": table,
        "cols": list(rows[0].keys()),
        "vals": [value for row in rows for value in row.values()],
    }


class DurabilityManager:
    """Frames every commit of a database into its write-ahead log.

    Attach via :func:`open_durable` (the normal path) or directly to an
    existing database whose directory has been initialized.  Locking
    order is ``database.lock -> manager lock``: the commit hook runs
    with the database lock held on the auto-commit path, and
    :meth:`checkpoint` acquires the database lock before its own.
    """

    def __init__(
        self,
        database: Database,
        directory: str | Path,
        fsync: str = FSYNC_ALWAYS,
        group_commits: int = 8,
        group_interval_ms: float = 5.0,
        checkpoint_every: int = 0,
        crash: Optional[CrashInjector] = None,
        generation: int = 0,
        next_txn: int = 1,
    ) -> None:
        self.database = database
        self.directory = Path(directory)
        self.fsync_policy = fsync
        self.group_commits = group_commits
        self.group_interval_ms = group_interval_ms
        #: Auto-checkpoint after this many commits (0 disables).
        self.checkpoint_every = checkpoint_every
        self.crash = crash
        self._generation = generation
        self._next_txn = next_txn
        self._lock = RLock()
        self._wal = self._open_segment(generation)
        self._closed = False
        # Counters (tests, benchmarks and the dashboard read these).
        self.commits = 0
        self.checkpoints = 0
        self._commits_since_checkpoint = 0
        database.add_commit_hook(self._on_commit)
        database.add_ddl_hook(self._on_ddl)

    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return self._generation

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    def _open_segment(self, generation: int) -> WriteAheadLog:
        return WriteAheadLog(
            _wal_path(self.directory, generation),
            fsync=self.fsync_policy,
            group_commits=self.group_commits,
            group_interval_ms=self.group_interval_ms,
            crash=self.crash,
        )

    # ------------------------------------------------------------------
    # Hooks
    def _on_commit(self, changes: list[ChangeSet]) -> None:
        checkpoint_due = False
        started = time.perf_counter() if OBS.enabled else 0.0
        with self._lock:
            txn = self._next_txn
            self._next_txn += 1
            wal = self._wal
            # One op record for the whole commit, with each change's rows
            # in columnar form (one ``cols`` list, value rows as plain
            # lists): a single json.dumps per commit instead of one per
            # row, and no repeated dict keys on the wire.  Together these
            # are the difference between a WAL tax per *row* and one per
            # commit.
            op_list: list[dict[str, Any]] = []
            ops = 0
            for change in changes:
                table = change.table
                if change.inserted:
                    op_list.append(_columnar("I", table, change.inserted))
                    ops += len(change.inserted)
                if change.updated:
                    afters = [after for _before, after in change.updated]
                    op_list.append(_columnar("U", table, afters))
                    ops += len(afters)
                if change.deleted:
                    op_list.append(
                        {"op": "D", "t": table, "tids": [r[TID] for r in change.deleted]}
                    )
                    ops += len(change.deleted)
            wal.append({"k": KIND_BEGIN, "x": txn})
            if op_list:
                wal.append({"k": KIND_OP, "x": txn, "ops": op_list})
            wal.append({"k": KIND_COMMIT, "x": txn, "clk": self.database.now()})
            wal.commit_point()
            self.commits += 1
            self._commits_since_checkpoint += 1
            if (
                self.checkpoint_every
                and self._commits_since_checkpoint >= self.checkpoint_every
            ):
                checkpoint_due = True
        if OBS.enabled:
            OBS.metrics.counter("wal.commits").inc()
            OBS.metrics.histogram("wal.commit_ms").observe(
                (time.perf_counter() - started) * 1000.0
            )
            OBS.metrics.counter("wal.ops").inc(ops)
        if checkpoint_due:
            # Outside the manager lock: checkpoint acquires database
            # lock first, and taking it while holding the manager lock
            # would invert the global db -> manager order.
            self.checkpoint()

    def _on_ddl(self, op: str, schema: TableSchema | None, name: str) -> None:
        checkpoint_due = False
        with self._lock:
            record: dict[str, Any] = {
                "k": KIND_DDL,
                "op": op,
                "t": name,
                "clk": self.database.now(),
            }
            if schema is not None:
                record["s"] = schema.to_dict()
            self._wal.append(record)
            # DDL is auto-committed: it is not covered by the undo log,
            # so it must be durable the moment it returns.
            self._wal.commit_point()
            self.commits += 1
            self._commits_since_checkpoint += 1
            if (
                self.checkpoint_every
                and self._commits_since_checkpoint >= self.checkpoint_every
            ):
                checkpoint_due = True
        if checkpoint_due:
            self.checkpoint()

    # ------------------------------------------------------------------
    def checkpoint(self) -> Path:
        """Fold the WAL into a fresh snapshot and start a new segment.

        Returns the new checkpoint's path.  Safe against crashes at any
        point: each step leaves the directory recoverable (see module
        docstring for the generation protocol).
        """
        if not OBS.enabled:
            return self._checkpoint_impl()
        with OBS.tracer.span("db.checkpoint") as span:
            path = self._checkpoint_impl()
            span.set_tag("generation", self._generation)
        OBS.metrics.counter("wal.checkpoints").inc()
        return path

    def _checkpoint_impl(self) -> Path:
        with self.database.lock:
            with self._lock:
                if self._closed:
                    raise DatabaseError("durability manager is closed")
                if self.crash is not None:
                    self.crash.reach("checkpoint.begin")
                old_generation = self._generation
                generation = old_generation + 1
                checkpoint_file = _checkpoint_path(self.directory, generation)
                save_snapshot(self.database, checkpoint_file)
                if self.crash is not None:
                    self.crash.reach("checkpoint.switch")
                # Create the new segment durably before switching appends.
                new_wal_file = _wal_path(self.directory, generation)
                open(new_wal_file, "ab").close()
                fsync_dir(self.directory)
                self._wal.close()
                self._wal = self._open_segment(generation)
                self._generation = generation
                self.checkpoints += 1
                self._commits_since_checkpoint = 0
                if self.crash is not None:
                    self.crash.reach("checkpoint.cleanup")
                for stale in (
                    _checkpoint_path(self.directory, old_generation),
                    _wal_path(self.directory, old_generation),
                ):
                    try:
                        os.unlink(stale)
                    except OSError:
                        pass
                return checkpoint_file

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Counters for dashboards and tests."""
        with self._lock:
            return {
                "commits": self.commits,
                "checkpoints": self.checkpoints,
                "generation": self._generation,
                "wal_appends": self._wal.appends,
                "wal_syncs": self._wal.syncs,
                "wal_bytes": self._wal.bytes_written,
                "wal_offset": self._wal.offset,
            }

    def close(self) -> None:
        """Detach from the database and durably close the segment."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self.database.remove_commit_hook(self._on_commit)
            self.database.remove_ddl_hook(self._on_ddl)
            self._wal.close()

    def __enter__(self) -> "DurabilityManager":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def open_durable(
    directory: str | Path,
    name: str = "ediflow",
    fsync: str = FSYNC_ALWAYS,
    group_commits: int = 8,
    group_interval_ms: float = 5.0,
    checkpoint_every: int = 0,
    crash: Optional[CrashInjector] = None,
) -> tuple[Database, DurabilityManager]:
    """Open (or recover) a durable database rooted at ``directory``.

    First open initializes generation 0 (an empty checkpoint plus an
    empty WAL segment); subsequent opens run full crash recovery and
    continue appending to the recovered segment.  Returns the database
    and its attached manager; close the manager (or use it as a context
    manager) to release the log cleanly.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if _generations(directory):
        info = _recover(directory)
        database = info.database
        generation, next_txn = info.generation, info.next_txn
    else:
        database = Database(name)
        save_snapshot(database, _checkpoint_path(directory, 0))
        open(_wal_path(directory, 0), "ab").close()
        fsync_dir(directory)
        generation, next_txn = 0, 1
    manager = DurabilityManager(
        database,
        directory,
        fsync=fsync,
        group_commits=group_commits,
        group_interval_ms=group_interval_ms,
        checkpoint_every=checkpoint_every,
        crash=crash,
        generation=generation,
        next_txn=next_txn,
    )
    return database, manager
