"""Database snapshots: save/load to a JSON-lines file.

The paper's DBMS is persistent; our embedded engine persists through
explicit snapshots.  The format is line-oriented JSON:

    {"kind": "header",  "name": ..., "clock": ...}
    {"kind": "schema",  "schema": {...}}          # one per table
    {"kind": "row", "table": ..., "tid": ..., "created": ..., "updated": ...,
     "values": {...}}                             # one per row

Hidden fields round-trip so tids and timestamps (and therefore the
time-based isolation story) survive a restart.  Values must be
JSON-serializable; :class:`~repro.db.types.AnyType` columns holding
non-JSON values fail loudly at save time rather than corrupting the file.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from ..errors import DatabaseError
from .database import Database
from .schema import CREATED_AT, TID, UPDATED_AT, TableSchema
from .wal import fsync_dir

FORMAT_VERSION = 1


def save_snapshot(database: Database, path: str | Path) -> int:
    """Write a consistent snapshot of ``database`` to ``path``.

    Returns the number of rows written.  Writing happens to a temp file
    that is flushed and fsynced, followed by an atomic rename and a
    directory fsync -- so neither a crash nor a *power loss* can leave a
    torn, empty, or missing snapshot behind a successful return.
    """
    path = Path(path)
    rows_written = 0
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(dir=directory, prefix=".snapshot-")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as out:
            header = {
                "kind": "header",
                "version": FORMAT_VERSION,
                "name": database.name,
                "clock": database.now(),
            }
            out.write(json.dumps(header) + "\n")
            for table_name in database.table_names():
                table = database.table(table_name)
                out.write(
                    json.dumps({"kind": "schema", "schema": table.schema.to_dict()})
                    + "\n"
                )
            for table_name in database.table_names():
                table = database.table(table_name)
                for row in table.rows():
                    values = {
                        k: v for k, v in row.items() if not k.startswith("__")
                    }
                    record = {
                        "kind": "row",
                        "table": table_name,
                        "tid": row[TID],
                        "created": row[CREATED_AT],
                        "updated": row[UPDATED_AT],
                        "values": values,
                    }
                    try:
                        out.write(json.dumps(record) + "\n")
                    except TypeError as exc:
                        raise DatabaseError(
                            f"row {row[TID]} of {table_name!r} holds a value "
                            f"that is not JSON-serializable: {exc}"
                        ) from None
                    rows_written += 1
            # os.replace is atomic but not durable: without these two
            # fsyncs a power loss can zero the data (page cache never
            # written) or lose the rename (directory entry not logged).
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp_name, path)
        fsync_dir(directory)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return rows_written


def load_snapshot(path: str | Path) -> Database:
    """Reconstruct a :class:`Database` from a snapshot file."""
    path = Path(path)
    database: Database | None = None
    with open(path, encoding="utf-8") as infile:
        for line_no, line in enumerate(infile, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DatabaseError(
                    f"{path}:{line_no}: invalid snapshot line: {exc}"
                ) from None
            kind = record.get("kind")
            if kind == "header":
                if record.get("version") != FORMAT_VERSION:
                    raise DatabaseError(
                        f"unsupported snapshot version {record.get('version')!r}"
                    )
                database = Database(record.get("name", "ediflow"))
                database.restore_clock(int(record.get("clock", 0)))
            elif kind == "schema":
                if database is None:
                    raise DatabaseError(f"{path}:{line_no}: schema before header")
                schema = TableSchema.from_dict(record["schema"])
                database.create_table(schema.name, schema=schema)
            elif kind == "row":
                if database is None:
                    raise DatabaseError(f"{path}:{line_no}: row before header")
                table = database.table(record["table"])
                image = dict(record["values"])
                image[TID] = record["tid"]
                image[CREATED_AT] = record["created"]
                image[UPDATED_AT] = record["updated"]
                table.restore_row(image)
            else:
                raise DatabaseError(
                    f"{path}:{line_no}: unknown snapshot record kind {kind!r}"
                )
    if database is None:
        raise DatabaseError(f"{path}: empty snapshot (no header)")
    return database
