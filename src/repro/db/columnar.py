"""Column-major storage behind :class:`repro.db.table.Table`.

A :class:`ColumnStore` is a chunked, column-oriented projection of one
table's rows: typed parallel arrays per column (plain Python lists, one
per column per chunk), a tid column, and a per-chunk validity bitmap for
deletions.  It exists so the vectorized executor (:mod:`repro.db.vector`)
can stream column chunks instead of per-row dicts -- list comprehensions
and builtins over parallel arrays run at C speed, where per-row dict
pipelines pay Python-interpreter cost per tuple.

Stores are *lazy and incremental*: a table has no store until something
asks for one (``Table.column_store()`` builds it in one pass over the row
storage), after which every mutation maintains it in place:

* insert       -> append to the tail chunk (amortized O(columns));
* update       -> in-place write through the tid position map (O(columns));
* delete       -> set the row's tombstone bit (O(1));
* restore_row  -> append, or mark the store stale when the restored tid
  is out of order (transaction rollback) -- the next scan rebuilds.

Scans yield chunks in tid order with tombstoned rows compressed away, so
a column scan is byte-identical to ``Table.rows()``.  When the dead
fraction grows past :data:`COMPACT_FRACTION` the store compacts itself by
rebuilding from the row storage.

Each column also carries an advisory *type tag* -- a bitmask of the value
kinds ever observed (int/float/str/bool/NULL/other).  Tags only widen, so
a tag proving "numeric, never NULL" lets the vectorized aggregate skip
NULL filtering and poisoning guards; a stale-wide tag merely costs the
guarded path, never correctness.
"""

from __future__ import annotations

from typing import Any, Iterator

from .schema import CREATED_AT, TID, UPDATED_AT

#: Rows per chunk.  Big enough to amortize per-chunk Python overhead,
#: small enough that a selective filter's compressed output stays cache
#: friendly.
CHUNK_ROWS = 4096

#: Compact (rebuild) once tombstones exceed this fraction of stored rows.
COMPACT_FRACTION = 0.25

#: Minimum absolute tombstone count before compaction is considered, so
#: small tables never churn.
COMPACT_MIN_DEAD = 1024

# -- column type tags (bitmask; widen-only) ----------------------------
K_NULL = 1
K_INT = 2
K_FLOAT = 4
K_STR = 8
K_BOOL = 16
K_OTHER = 32

#: Tags a vectorized SUM/AVG can trust without NULL filtering or
#: TypeError poisoning guards.
K_NUMERIC = K_INT | K_FLOAT | K_BOOL


def value_tag(value: Any) -> int:
    """The type-tag bit for one cell value (bool checked before int)."""
    if value is None:
        return K_NULL
    if isinstance(value, bool):
        return K_BOOL
    if isinstance(value, int):
        return K_INT
    if isinstance(value, float):
        return K_FLOAT
    if isinstance(value, str):
        return K_STR
    return K_OTHER


class ColumnStore:
    """Chunked column-major mirror of one table's row storage.

    The store holds every stored column *including* the hidden engine
    fields (``__tid__``, ``__created__``, ``__updated__``) in the same
    order row dicts carry them, so transposing a chunk back to rows
    reproduces the row engine's dict key order exactly.
    """

    __slots__ = (
        "_table",
        "names",
        "_chunks",
        "_dead",
        "_dead_counts",
        "_pos",
        "_last_tid",
        "_stale",
        "types",
        "rebuilds",
    )

    def __init__(self, table: Any) -> None:
        self._table = table
        self.names: tuple[str, ...] = tuple(table.schema.column_names) + (
            TID,
            CREATED_AT,
            UPDATED_AT,
        )
        self._chunks: list[dict[str, list[Any]]] = []
        self._dead: list[int] = []
        self._dead_counts: list[int] = []
        self._pos: dict[int, tuple[int, int]] = {}
        self._last_tid = 0
        self._stale = False
        self.types: dict[str, int] = {name: 0 for name in self.names}
        self.rebuilds = 0
        self._rebuild()

    # ------------------------------------------------------------------
    # Introspection (tests, EXPLAIN verbose output, dashboards)
    def __len__(self) -> int:
        return len(self._pos)

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    @property
    def dead_rows(self) -> int:
        return sum(self._dead_counts)

    @property
    def stale(self) -> bool:
        return self._stale

    def column_kind(self, name: str) -> int:
        """Advisory type-tag bitmask for ``name`` (0 = never observed)."""
        return self.types.get(name, K_OTHER | K_NULL)

    # ------------------------------------------------------------------
    # Maintenance (called by Table mutations; store already validated)
    def _new_chunk(self) -> dict[str, list[Any]]:
        chunk: dict[str, list[Any]] = {name: [] for name in self.names}
        self._chunks.append(chunk)
        self._dead.append(0)
        self._dead_counts.append(0)
        return chunk

    def append(self, row: dict[str, Any]) -> None:
        """Mirror one freshly inserted row (tid strictly increasing)."""
        tid = row[TID]
        if tid <= self._last_tid:
            # Out-of-order arrival (rollback restore): scans must stay in
            # tid order, so fall back to a rebuild at next read.
            self._stale = True
            return
        self._last_tid = tid
        chunks = self._chunks
        chunk = chunks[-1] if chunks else self._new_chunk()
        if len(chunk[TID]) >= CHUNK_ROWS:
            chunk = self._new_chunk()
        types = self.types
        for name in self.names:
            value = row[name]
            chunk[name].append(value)
            types[name] |= value_tag(value)
        self._pos[tid] = (len(chunks) - 1, len(chunk[TID]) - 1)

    def update(self, tid: int, row: dict[str, Any]) -> None:
        """Mirror an in-place row update (same tid, new values)."""
        if self._stale:
            return
        pos = self._pos.get(tid)
        if pos is None:
            self._stale = True
            return
        ci, offset = pos
        chunk = self._chunks[ci]
        types = self.types
        for name in self.names:
            value = row[name]
            chunk[name][offset] = value
            types[name] |= value_tag(value)

    def delete(self, tid: int) -> None:
        """Tombstone one row (the validity bitmap clears its bit)."""
        if self._stale:
            return
        pos = self._pos.pop(tid, None)
        if pos is None:
            self._stale = True
            return
        ci, offset = pos
        self._dead[ci] |= 1 << offset
        self._dead_counts[ci] += 1

    def bulk_append(self, rows: list[dict[str, Any]]) -> None:
        """Append many rows (recovery bulk load) with column-wise loops."""
        if not rows:
            return
        if rows[0][TID] <= self._last_tid:
            self._stale = True
            return
        self.bulk_append_columns(
            {name: [row[name] for row in rows] for name in self.names},
            len(rows),
        )

    def bulk_append_columns(self, columns: dict[str, Any], count: int) -> None:
        """Append ``count`` rows given as parallel column arrays.

        This is the WAL bulk-load path: recovery slices a committed
        columnar op record's flat value array into per-column lists and
        lands them here, filling chunks with ``list.extend`` slices
        instead of per-row appends.  Unknown columns are ignored; missing
        columns are padded with NULLs (schema evolution tolerance).
        """
        if count <= 0:
            return
        tid_col = list(columns[TID])
        if tid_col and tid_col[0] <= self._last_tid:
            self._stale = True
            return
        types = self.types
        start = 0
        while start < count:
            chunks = self._chunks
            chunk = chunks[-1] if chunks else self._new_chunk()
            room = CHUNK_ROWS - len(chunk[TID])
            if room <= 0:
                chunk = self._new_chunk()
                room = CHUNK_ROWS
            stop = min(count, start + room)
            ci = len(self._chunks) - 1
            base = len(chunk[TID])
            for name in self.names:
                values = columns.get(name)
                part = (
                    [None] * (stop - start)
                    if values is None
                    else list(values[start:stop])
                )
                chunk[name].extend(part)
                tag = 0
                for value in part:
                    tag |= value_tag(value)
                types[name] |= tag
            pos = self._pos
            for i, tid in enumerate(tid_col[start:stop]):
                pos[tid] = (ci, base + i)
            start = stop
        self._last_tid = tid_col[-1]

    # ------------------------------------------------------------------
    # Rebuild / compaction
    def _rebuild(self) -> None:
        """Re-derive every chunk from the row storage (tid order)."""
        self._chunks = []
        self._dead = []
        self._dead_counts = []
        self._pos = {}
        self._last_tid = 0
        self.types = {name: 0 for name in self.names}
        self._stale = False
        self.rebuilds += 1
        names = self.names
        rows = list(self._table.rows())
        types = self.types
        for start in range(0, len(rows), CHUNK_ROWS):
            part = rows[start : start + CHUNK_ROWS]
            chunk = self._new_chunk()
            ci = len(self._chunks) - 1
            for name in names:
                values = [row[name] for row in part]
                chunk[name] = values
                tag = 0
                for value in values:
                    tag |= value_tag(value)
                types[name] |= tag
            pos = self._pos
            for i, row in enumerate(part):
                pos[row[TID]] = (ci, i)
        if rows:
            self._last_tid = rows[-1][TID]

    def _should_compact(self) -> bool:
        dead = sum(self._dead_counts)
        if dead < COMPACT_MIN_DEAD:
            return False
        return dead >= COMPACT_FRACTION * max(1, dead + len(self._pos))

    # ------------------------------------------------------------------
    # Scans
    def batches(self) -> Iterator[tuple[dict[str, list[Any]], int]]:
        """Yield ``(columns, n)`` per chunk, tombstones compressed away.

        Chunks with no tombstones are yielded zero-copy (the live column
        lists themselves); consumers must treat them as read-only, the
        same contract ``Table.rows()`` imposes on its internal dicts.
        """
        if self._stale or self._should_compact():
            self._rebuild()
        for ci, chunk in enumerate(self._chunks):
            n = len(chunk[TID])
            if n == 0:
                continue
            dead = self._dead[ci]
            if dead == 0:
                yield chunk, n
                continue
            live = [i for i in range(n) if not dead >> i & 1]
            if not live:
                continue
            yield (
                {name: [col[i] for i in live] for name, col in chunk.items()},
                len(live),
            )
