"""Row storage for one relation.

A :class:`Table` owns its rows, assigns tuple identifiers (tids), stamps
creation/update logical timestamps (used by the time-based isolation of
Section VI-A), and maintains its indexes.  It is deliberately unaware of
triggers and transactions -- those live in :mod:`repro.db.database` so that
every mutation path (SQL or programmatic) funnels through one place.

Rows are plain dicts.  Scans yield the *internal* dict objects for speed;
callers must treat them as immutable and perform writes through the table
API only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from ..errors import ConstraintViolation, DatabaseError, SchemaError
from .columnar import ColumnStore
from .index import HashIndex, SortedIndex
from .schema import CREATED_AT, TID, UPDATED_AT, TableSchema


@dataclass
class ChangeSet:
    """Rows affected by one statement against one table.

    This is what statement-level triggers receive (Section VI-B compiles
    update-propagation statements into such triggers).  ``updated`` holds
    ``(before, after)`` pairs; ``before`` images are snapshots.
    """

    table: str
    inserted: list[dict[str, Any]] = field(default_factory=list)
    updated: list[tuple[dict[str, Any], dict[str, Any]]] = field(default_factory=list)
    deleted: list[dict[str, Any]] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (self.inserted or self.updated or self.deleted)

    def merge(self, other: "ChangeSet") -> None:
        if other.table != self.table:
            raise DatabaseError(
                f"cannot merge changes of {other.table!r} into {self.table!r}"
            )
        self.inserted.extend(other.inserted)
        self.updated.extend(other.updated)
        self.deleted.extend(other.deleted)

    @property
    def operations(self) -> list[str]:
        ops = []
        if self.inserted:
            ops.append("insert")
        if self.updated:
            ops.append("update")
        if self.deleted:
            ops.append("delete")
        return ops


class Table:
    """In-memory storage for one relation.

    Parameters
    ----------
    schema:
        The table schema (columns, keys).
    clock:
        Zero-argument callable returning the next logical timestamp.  The
        owning :class:`~repro.db.database.Database` passes its global clock
        so timestamps are totally ordered across tables.
    """

    def __init__(self, schema: TableSchema, clock: Callable[[], int]) -> None:
        self.schema = schema
        self._clock = clock
        self._rows: dict[int, dict[str, Any]] = {}
        self._next_tid = 1
        self._store: ColumnStore | None = None
        self._indexes: dict[str, HashIndex | SortedIndex] = {}
        if schema.primary_key:
            self.create_index(
                f"pk_{schema.name}", (schema.primary_key,), unique=True
            )
        for i, cols in enumerate(schema.unique):
            self.create_index(f"uq_{schema.name}_{i}", cols, unique=True)
        # Every table gets a sorted index on creation time: the isolation
        # machinery (Section VI-A) constantly filters by it.
        self._created_index = SortedIndex(schema.name, CREATED_AT)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, tid: int) -> bool:
        return tid in self._rows

    # ------------------------------------------------------------------
    # Index management
    def create_index(
        self, name: str, columns: Sequence[str], unique: bool = False, sorted: bool = False
    ) -> None:
        """Create and backfill a secondary index."""
        if name in self._indexes:
            raise SchemaError(f"index {name!r} already exists on {self.name!r}")
        for col in columns:
            self.schema.column(col)  # validates existence
        index: HashIndex | SortedIndex
        if sorted:
            if len(columns) != 1:
                raise SchemaError("sorted indexes must be single-column")
            index = SortedIndex(self.name, columns[0])
        else:
            index = HashIndex(self.name, tuple(columns), unique=unique)
        for tid, row in self._rows.items():
            index.add(tid, row)
        self._indexes[name] = index

    def index(self, name: str) -> HashIndex | SortedIndex:
        try:
            return self._indexes[name]
        except KeyError:
            raise SchemaError(f"no index {name!r} on table {self.name!r}") from None

    def find_hash_index(self, column: str) -> HashIndex | None:
        """Best single-column hash index on ``column``, if any (for joins)."""
        for idx in self._indexes.values():
            if isinstance(idx, HashIndex) and idx.columns == (column,):
                return idx
        return None

    def find_sorted_index(self, column: str) -> SortedIndex | None:
        """Sorted index on ``column``, if any.

        Every table implicitly carries a sorted index on its creation
        timestamp (the isolation predicates of Section VI-A scan it), so
        asking for ``CREATED_AT`` always succeeds.
        """
        if column == CREATED_AT:
            return self._created_index
        for idx in self._indexes.values():
            if isinstance(idx, SortedIndex) and idx.column == column:
                return idx
        return None

    def hash_indexes(self) -> list[HashIndex]:
        """All hash indexes (single- and multi-column), for the planner."""
        return [idx for idx in self._indexes.values() if isinstance(idx, HashIndex)]

    def has_index(self, name: str) -> bool:
        return name in self._indexes

    # ------------------------------------------------------------------
    # Columnar mirror (lazy; maintained incrementally once activated)
    def column_store(self) -> ColumnStore:
        """The columnar mirror of this table, building it on first use.

        The vectorized executor (:mod:`repro.db.vector`) scans tables
        through this instead of :meth:`rows`.  Once built, every mutation
        keeps it in sync, so repeated vectorized queries pay no transpose
        cost.
        """
        if self._store is None:
            self._store = ColumnStore(self)
        return self._store

    def has_column_store(self) -> bool:
        return self._store is not None

    def drop_column_store(self) -> None:
        """Release the columnar mirror (memory pressure / tests)."""
        self._store = None

    # ------------------------------------------------------------------
    # Mutations (called by Database; do not invoke triggers themselves)
    def insert(self, values: Mapping[str, Any]) -> dict[str, Any]:
        """Insert one row; returns the stored row (with hidden fields)."""
        row = self.schema.validate_row(values)
        for idx in self._indexes.values():
            idx.check_insert(row)
        tid = self._next_tid
        self._next_tid += 1
        now = self._clock()
        row[TID] = tid
        row[CREATED_AT] = now
        row[UPDATED_AT] = now
        self._rows[tid] = row
        for idx in self._indexes.values():
            idx.add(tid, row)
        self._created_index.add(tid, row)
        if self._store is not None:
            self._store.append(row)
        return row

    def update_row(self, tid: int, changes: Mapping[str, Any]) -> tuple[dict[str, Any], dict[str, Any]]:
        """Apply validated ``changes`` to the row ``tid``.

        Returns ``(before_snapshot, after_row)``.
        """
        try:
            row = self._rows[tid]
        except KeyError:
            raise DatabaseError(f"{self.name}: no row with tid {tid}") from None
        validated = self.schema.validate_update(changes)
        before = dict(row)
        # Re-index: remove under old key, check uniqueness, add under new.
        touched = [
            idx
            for idx in self._indexes.values()
            if any(c in validated for c in getattr(idx, "columns", (getattr(idx, "column", ""),)))
        ]
        for idx in touched:
            idx.remove(tid, row)
        row.update(validated)
        row[UPDATED_AT] = self._clock()
        try:
            for idx in touched:
                idx.check_insert(row)
        except ConstraintViolation:
            # Roll the row back so the table stays consistent.
            row.clear()
            row.update(before)
            for idx in touched:
                idx.add(tid, row)
            raise
        for idx in touched:
            idx.add(tid, row)
        if self._store is not None:
            self._store.update(tid, row)
        return before, row

    def delete_row(self, tid: int) -> dict[str, Any]:
        """Physically remove row ``tid``; returns its final image."""
        try:
            row = self._rows.pop(tid)
        except KeyError:
            raise DatabaseError(f"{self.name}: no row with tid {tid}") from None
        for idx in self._indexes.values():
            idx.remove(tid, row)
        self._created_index.remove(tid, row)
        if self._store is not None:
            self._store.delete(tid)
        return row

    def restore_row(self, row: dict[str, Any]) -> None:
        """Re-insert a previously deleted row image (transaction rollback)."""
        tid = row[TID]
        if tid in self._rows:
            raise DatabaseError(f"{self.name}: tid {tid} already present")
        self._rows[tid] = dict(row)
        stored = self._rows[tid]
        for idx in self._indexes.values():
            idx.add(tid, stored)
        self._created_index.add(tid, stored)
        self._next_tid = max(self._next_tid, tid + 1)
        if self._store is not None:
            # append() flags the store stale when tid arrives out of order
            # (rollback restores); the next columnar scan rebuilds.
            self._store.append(stored)

    def bulk_restore(
        self,
        rows: list[dict[str, Any]],
        columns: dict[str, list[Any]] | None = None,
    ) -> bool:
        """Restore many row images at once (WAL recovery bulk load).

        ``rows`` must carry hidden fields and strictly increasing tids
        none of which are present; returns False without touching the
        table when that doesn't hold, so the caller can fall back to
        per-row :meth:`restore_row`.  Takes ownership of the row dicts.
        When ``columns`` (parallel per-column arrays for the same rows)
        is provided and a column store is active, the store is fed the
        arrays directly instead of re-transposing the rows.
        """
        if not rows:
            return True
        existing = self._rows
        last = 0
        for row in rows:
            tid = row[TID]
            if tid <= last or tid in existing:
                return False
            last = tid
        indexes = list(self._indexes.values())
        for idx in indexes:
            add = idx.add
            for row in rows:
                add(row[TID], row)
        add = self._created_index.add
        for row in rows:
            tid = row[TID]
            existing[tid] = row
            add(tid, row)
        self._next_tid = max(self._next_tid, last + 1)
        if self._store is not None:
            if columns is not None:
                self._store.bulk_append_columns(columns, len(rows))
            else:
                self._store.bulk_append(rows)
        return True

    # ------------------------------------------------------------------
    # Reads
    def get(self, tid: int) -> dict[str, Any] | None:
        return self._rows.get(tid)

    def rows(self) -> Iterator[dict[str, Any]]:
        """All rows, in tid order.  Internal dicts: treat as read-only."""
        for tid in sorted(self._rows):
            yield self._rows[tid]

    def scan(self) -> Iterator[dict[str, Any]]:
        """Unordered scan (fastest)."""
        return iter(self._rows.values())

    def tids(self) -> list[int]:
        return sorted(self._rows)

    def by_key(self, value: Any) -> dict[str, Any] | None:
        """Primary-key point lookup."""
        if not self.schema.primary_key:
            raise SchemaError(f"table {self.name!r} has no primary key")
        idx = self._indexes[f"pk_{self.name}"]
        assert isinstance(idx, HashIndex)
        tids = idx.lookup(value)
        for tid in tids:
            return self._rows[tid]
        return None

    def created_between(
        self, low: int | None = None, high: int | None = None
    ) -> Iterator[dict[str, Any]]:
        """Rows with creation timestamp in ``[low, high]`` (bounds optional).

        This backs time-based isolation: a process instance started at
        ``t0`` sees ``created_between(None, t0)`` minus deleted tids.
        """
        for tid in self._created_index.range(low, high):
            yield self._rows[tid]

    def clear(self) -> list[dict[str, Any]]:
        """Remove all rows; returns the removed row images."""
        removed = [self._rows[tid] for tid in sorted(self._rows)]
        for row in removed:
            self.delete_row(row[TID])
        return removed
