"""Vectorized (columnar batch) query execution.

This module is the batch counterpart of :mod:`repro.db.algebra`: the same
operator semantics, but processing :class:`Batch` objects (dicts of
parallel column arrays from :class:`repro.db.columnar.ColumnStore`)
instead of per-row dicts.  List comprehensions and builtins over parallel
arrays run at C speed, which is where the 10-100x wins on large scans,
filters, and aggregates come from.

Three invariants keep both engines interchangeable:

* **Byte-identical results.**  Every vectorized operator replicates the
  row engine's observable semantics exactly -- NULL handling, group
  first-occurrence order, ``{**lrow, **rrow}`` join overlap rules, SUM
  accumulation order (``sum(vals, total)`` is the same left fold the row
  engine performs), tie-keeping MIN/MAX, dict key order of emitted rows.
  The :class:`Vectorized` wrapper can verify this at runtime (oracle
  mode) by running the row plan too and diffing.
* **Silent translation fallback.**  :func:`vectorize_plan` returns None
  for plans it cannot translate (index scans, lambdas, set operations);
  the router keeps the row plan.
* **Silent execution fallback.**  A translated plan re-checks at run
  time that every base table is a real :class:`~repro.db.table.Table`
  (isolation snapshots wrap tables in non-Table proxies) and that join
  shapes stay uniform; anything else raises the internal ``_Fallback``
  and the wrapper transparently executes the row plan instead.

Documented, deliberate divergences from the row engine (SQL permits all
of them; the oracle's property tests avoid them):

* ``AND``/``OR`` evaluate both sides column-at-a-time, so a right-hand
  side the row engine would have short-circuited past may raise here
  (predicate reordering).
* A MIN-only (or MAX-only) aggregate performs only ``<`` (only ``>``)
  comparisons, where the row engine's shared state performs both; exotic
  values with asymmetric comparison support can poison one engine and
  not the other.
"""

from __future__ import annotations

from collections import Counter
from itertools import compress
from typing import Any, Callable, Iterator

from ..errors import DatabaseError, UnknownColumnError
from .algebra import (
    Aggregate,
    Distinct,
    HashJoin,
    KeepAll,
    Limit,
    Plan,
    Project,
    Row,
    Scan,
    Select,
    Sort,
    TableProvider,
    _AggState,
    _DedupSet,
    evaluate_predicate,
    sort_key_total,
)
from .columnar import K_NULL
from .schema import TID
from .expression import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    InSet,
    IsNull,
    Literal,
    Negate,
    Not,
    Or,
    _ARITH_OPS,
    _CMP_OPS,
    _FUNCTIONS,
)
from .table import Table


class Unvectorizable(Exception):
    """Raised at translation time: this plan shape has no batch form."""


class _Fallback(Exception):
    """Raised at execution time: re-run the row plan instead."""


class Batch:
    """One chunk of rows in column-major form.

    ``columns`` maps column name to a parallel value list of length
    ``n``; alias-qualified keys (``t.col``) may share the same list
    object as their plain counterpart.  ``kinds`` optionally carries the
    column store's advisory type tags (see :mod:`repro.db.columnar`);
    operators that cannot cheaply preserve them drop them to None.

    ``lin`` is the lineage sidecar: when a plan executes under lineage
    capture, each batch carries one entry per row -- a tuple of
    ``(table, tid)`` pairs naming the base tuples that produced that row.
    Operators thread it through exactly like a column (filtered, sliced,
    reordered, concatenated on joins, unioned on aggregation).
    """

    __slots__ = ("columns", "n", "kinds", "lin")

    def __init__(
        self,
        columns: dict[str, list[Any]],
        n: int,
        kinds: dict[str, int] | None = None,
        lin: list[tuple] | None = None,
    ) -> None:
        self.columns = columns
        self.n = n
        self.kinds = kinds
        self.lin = lin


def batch_rows(batch: Batch) -> list[Row]:
    """Transpose a batch back into row dicts (batch column key order)."""
    names = list(batch.columns)
    if not names:
        return [{} for _ in range(batch.n)]
    cols = [batch.columns[name] for name in names]
    return [dict(zip(names, values)) for values in zip(*cols)]


def rows_to_batch(rows: list[Row]) -> Batch | None:
    """Column-ize uniform row dicts (operator outputs); None when empty."""
    if not rows:
        return None
    names = list(rows[0])
    return Batch({n: [r[n] for r in rows] for n in names}, len(rows))


def _resolve(batch: Batch, name: str) -> list[Any]:
    """Column lookup with the row engine's qualified-suffix fallback."""
    col = batch.columns.get(name)
    if col is None:
        if "." in name:
            col = batch.columns.get(name.split(".", 1)[1])
        if col is None:
            raise UnknownColumnError(
                f"no column {name!r} in row with columns {sorted(batch.columns)}"
            )
    return col


def _resolve_with_kind(batch: Batch, name: str) -> tuple[list[Any], int | None]:
    """Like :func:`_resolve`, also returning the column's type tag."""
    used = name
    col = batch.columns.get(name)
    if col is None:
        if "." in name:
            used = name.split(".", 1)[1]
            col = batch.columns.get(used)
        if col is None:
            raise UnknownColumnError(
                f"no column {name!r} in row with columns {sorted(batch.columns)}"
            )
    kinds = batch.kinds
    return col, (kinds.get(used) if kinds is not None else None)


# ----------------------------------------------------------------------
# Vector expression compiler: Expression -> Callable[[Batch], list]

VecFn = Callable[[Batch], list]


def _boolean(fn: VecFn) -> VecFn:
    """Mark a compiled evaluator as producing only True/False/None.

    For such masks truthiness coincides with ``is True`` (the row
    engine's selection test), so :class:`VFilter` may select survivors
    with C-speed :func:`itertools.compress` instead of a Python loop.
    """
    fn.boolean = True  # type: ignore[attr-defined]
    return fn


# Column-vs-literal comparisons are the hottest filter shape; inline
# comparison bytecode beats a per-element ``operator.*`` call by ~2x.
# One variant per op for NULL-free columns (proven by the type tag), one
# with the row engine's NULL-propagation test.
_CMP_COL_LIT_NONULL: dict[str, Callable[[list, Any], list]] = {
    "=": lambda col, rv: [a == rv for a in col],
    "!=": lambda col, rv: [a != rv for a in col],
    "<": lambda col, rv: [a < rv for a in col],
    "<=": lambda col, rv: [a <= rv for a in col],
    ">": lambda col, rv: [a > rv for a in col],
    ">=": lambda col, rv: [a >= rv for a in col],
}
_CMP_COL_LIT_NULLS: dict[str, Callable[[list, Any], list]] = {
    "=": lambda col, rv: [None if a is None else a == rv for a in col],
    "!=": lambda col, rv: [None if a is None else a != rv for a in col],
    "<": lambda col, rv: [None if a is None else a < rv for a in col],
    "<=": lambda col, rv: [None if a is None else a <= rv for a in col],
    ">": lambda col, rv: [None if a is None else a > rv for a in col],
    ">=": lambda col, rv: [None if a is None else a >= rv for a in col],
}


def compile_expr(expr: Expression) -> VecFn:
    """Compile a row expression into a whole-column evaluator.

    The returned closure maps a :class:`Batch` to a value list of length
    ``batch.n``, with exactly the row evaluator's NULL semantics.
    Raises :class:`Unvectorizable` for :class:`Lambda` and unknown
    expression types.
    """
    if isinstance(expr, Literal):
        value = expr.value

        def lit(batch: Batch, value: Any = value) -> list:
            return [value] * batch.n

        return lit
    if isinstance(expr, ColumnRef):
        name = expr.name

        def ref(batch: Batch, name: str = name) -> list:
            return _resolve(batch, name)

        return ref
    if isinstance(expr, Comparison):
        op = _CMP_OPS[expr.op]
        if isinstance(expr.right, Literal):
            rv = expr.right.value
            if rv is None:
                return _boolean(lambda batch: [None] * batch.n)
            if isinstance(expr.left, ColumnRef):
                name = expr.left.name
                fast = _CMP_COL_LIT_NONULL[expr.op]
                slow = _CMP_COL_LIT_NULLS[expr.op]

                def cmp_col_lit(
                    batch: Batch,
                    name: str = name,
                    rv: Any = rv,
                    fast: Any = fast,
                    slow: Any = slow,
                ) -> list:
                    col, kind = _resolve_with_kind(batch, name)
                    if kind is not None and not kind & K_NULL:
                        # Type tag proves no NULL was ever stored: skip
                        # the per-value None test.
                        return fast(col, rv)
                    return slow(col, rv)

                return _boolean(cmp_col_lit)
            lf = compile_expr(expr.left)

            def cmp_lit(batch: Batch, lf: VecFn = lf, op: Any = op, rv: Any = rv) -> list:
                return [None if a is None else op(a, rv) for a in lf(batch)]

            return _boolean(cmp_lit)
        if isinstance(expr.left, Literal):
            lv = expr.left.value
            if lv is None:
                return _boolean(lambda batch: [None] * batch.n)
            rf = compile_expr(expr.right)

            def cmp_lit_l(batch: Batch, rf: VecFn = rf, op: Any = op, lv: Any = lv) -> list:
                return [None if b is None else op(lv, b) for b in rf(batch)]

            return _boolean(cmp_lit_l)
        lf = compile_expr(expr.left)
        rf = compile_expr(expr.right)

        def cmp(batch: Batch, lf: VecFn = lf, rf: VecFn = rf, op: Any = op) -> list:
            return [
                None if a is None or b is None else op(a, b)
                for a, b in zip(lf(batch), rf(batch))
            ]

        return _boolean(cmp)
    if isinstance(expr, And):
        lf = compile_expr(expr.left)
        rf = compile_expr(expr.right)

        def and_(batch: Batch, lf: VecFn = lf, rf: VecFn = rf) -> list:
            out = []
            append = out.append
            for a, b in zip(lf(batch), rf(batch)):
                if a is False or b is False:
                    append(False)
                elif a is None or b is None:
                    append(None)
                else:
                    append(True)
            return out

        return _boolean(and_)
    if isinstance(expr, Or):
        lf = compile_expr(expr.left)
        rf = compile_expr(expr.right)

        def or_(batch: Batch, lf: VecFn = lf, rf: VecFn = rf) -> list:
            out = []
            append = out.append
            for a, b in zip(lf(batch), rf(batch)):
                if a is True or b is True:
                    append(True)
                elif a is None or b is None:
                    append(None)
                else:
                    append(False)
            return out

        return _boolean(or_)
    if isinstance(expr, Not):
        of = compile_expr(expr.operand)

        def not_(batch: Batch, of: VecFn = of) -> list:
            return [None if v is None else not v for v in of(batch)]

        return _boolean(not_)
    if isinstance(expr, IsNull):
        of = compile_expr(expr.operand)
        if expr.negate:
            return _boolean(lambda batch, of=of: [v is not None for v in of(batch)])
        return _boolean(lambda batch, of=of: [v is None for v in of(batch)])
    if isinstance(expr, Arithmetic):
        op = _ARITH_OPS[expr.op]
        guarded = expr.op in ("/", "%")
        lf = compile_expr(expr.left)
        rf = compile_expr(expr.right)

        def arith(
            batch: Batch, lf: VecFn = lf, rf: VecFn = rf, op: Any = op, guarded: bool = guarded
        ) -> list:
            out = []
            append = out.append
            for a, b in zip(lf(batch), rf(batch)):
                if a is None or b is None:
                    append(None)
                elif guarded and b == 0:
                    append(None)
                else:
                    append(op(a, b))
            return out

        return arith
    if isinstance(expr, Negate):
        of = compile_expr(expr.operand)
        return lambda batch, of=of: [None if v is None else -v for v in of(batch)]
    if isinstance(expr, (InList, InSet)):
        of = compile_expr(expr.operand)
        negate = expr.negate
        if isinstance(expr, InSet):
            members: Any = expr.values
        else:
            members = expr._set if expr._set is not None else expr.values

        def in_(
            batch: Batch, of: VecFn = of, members: Any = members, negate: bool = negate
        ) -> list:
            out = []
            append = out.append
            for v in of(batch):
                if v is None:
                    append(None)
                else:
                    found = v in members
                    append(not found if negate else found)
            return out

        return _boolean(in_)
    if isinstance(expr, FunctionCall):
        argfns = [compile_expr(a) for a in expr.args]
        func = _FUNCTIONS[expr.name]
        coalesce = expr.name == "COALESCE"

        def call(
            batch: Batch,
            argfns: list[VecFn] = argfns,
            func: Any = func,
            coalesce: bool = coalesce,
        ) -> list:
            if not argfns:
                return [func()] * batch.n
            cols = [fn(batch) for fn in argfns]
            if coalesce:
                return [func(*vs) for vs in zip(*cols)]
            return [
                None if any(v is None for v in vs) else func(*vs)
                for vs in zip(*cols)
            ]

        return call
    raise Unvectorizable(f"expression {type(expr).__name__} has no vector form")


# ----------------------------------------------------------------------
# Batch operators


class VOp:
    """Base class for vectorized operators.

    Duck-compatible with :class:`~repro.db.algebra.Plan` where EXPLAIN
    needs it (``children``/``base_tables``/``explain_label``) without
    importing this module into algebra.  ``batches`` pulls column chunks;
    when ``counters`` is given each operator adds the rows of every chunk
    it emits under ``id(self)`` (the per-chunk row counters EXPLAIN
    ANALYZE renders).
    """

    engine = "vectorized"
    explain_label = "VOp"

    def batches(
        self,
        source: TableProvider,
        counters: dict[int, int] | None,
        lineage: bool = False,
    ) -> Iterator[Batch]:
        raise NotImplementedError

    def children(self) -> tuple["VOp", ...]:
        return ()

    def base_tables(self) -> set[str]:
        out: set[str] = set()
        for child in self.children():
            out |= child.base_tables()
        return out

    def output_columns(self, source: TableProvider) -> set[str] | None:
        return None

    def _count(self, counters: dict[int, int] | None, n: int) -> None:
        if counters is not None:
            key = id(self)
            counters[key] = counters.get(key, 0) + n


class VScan(VOp):
    """Columnar scan of a stored table, with needed-column pruning.

    Emits one batch per live column chunk, in tid order, carrying the
    same keys (plain, hidden, alias-qualified) row scans produce --
    restricted to ``needed`` when the plan above proves only a subset is
    referenced.  Alias-qualified keys share the plain key's list object.
    """

    def __init__(self, table: str, alias: str | None, needed: set[str] | None) -> None:
        self.table_name = table
        self.alias = alias
        self.needed = needed

    @property
    def explain_label(self) -> str:
        alias = f" AS {self.alias}" if self.alias else ""
        return f"VScan {self.table_name}{alias}"

    def base_tables(self) -> set[str]:
        return {self.table_name}

    def batches(
        self,
        source: TableProvider,
        counters: dict[int, int] | None,
        lineage: bool = False,
    ) -> Iterator[Batch]:
        table = source.table(self.table_name)
        if not isinstance(table, Table):
            raise _Fallback(self.table_name)
        store = table.column_store()
        needed = self.needed
        alias = self.alias
        tname = self.table_name
        emit: list[tuple[str, str]] | None = None
        kinds: dict[str, int] | None = None
        for cols, n in store.batches():
            if emit is None:
                emit = []
                for name in store.names:
                    if needed is None or name in needed:
                        emit.append((name, name))
                if alias is not None:
                    for name in store.names:
                        if name.startswith("__"):
                            continue
                        qualified = f"{alias}.{name}"
                        if needed is None or qualified in needed:
                            emit.append((qualified, name))
                types = store.types
                kinds = {key: types[src] for key, src in emit}
            self._count(counters, n)
            lin = None
            if lineage:
                # Chunks always carry the hidden tid column even when the
                # emit pruning drops it: lineage seeds are nearly free.
                lin = [((tname, tid),) for tid in cols[TID]]
            yield Batch({key: cols[src] for key, src in emit}, n, kinds, lin)


class VFilter(VOp):
    """Selection: keep rows whose predicate is exactly True.

    Compresses surviving rows with a selection vector; a chunk that
    passes intact is forwarded zero-copy.  Alias-qualified keys sharing a
    plain key's list are compressed once (dedup by list identity).
    """

    def __init__(self, child: VOp, predicate: Expression) -> None:
        self.child = child
        self.predicate = predicate
        self._fn = compile_expr(predicate)
        self._boolean_mask = getattr(self._fn, "boolean", False)

    @property
    def explain_label(self) -> str:
        return f"VFilter {self.predicate!r}"

    def children(self) -> tuple[VOp, ...]:
        return (self.child,)

    def batches(
        self,
        source: TableProvider,
        counters: dict[int, int] | None,
        lineage: bool = False,
    ) -> Iterator[Batch]:
        fn = self._fn
        boolean_mask = self._boolean_mask
        for batch in self.child.batches(source, counters, lineage):
            mask = fn(batch)
            if boolean_mask:
                # Mask holds only True/False/None, where truthiness is
                # exactly ``is True``: compress runs at C speed.
                live = list(compress(range(batch.n), mask))
            else:
                live = [i for i, m in enumerate(mask) if m is True]
            if not live:
                continue
            if len(live) == batch.n:
                self._count(counters, batch.n)
                yield batch
                continue
            shared: dict[int, list[Any]] = {}
            columns: dict[str, list[Any]] = {}
            for name, col in batch.columns.items():
                key = id(col)
                packed = shared.get(key)
                if packed is None:
                    packed = [col[i] for i in live]
                    shared[key] = packed
                columns[name] = packed
            self._count(counters, len(live))
            blin = batch.lin
            lin = [blin[i] for i in live] if blin is not None else None
            yield Batch(columns, len(live), batch.kinds, lin)


class VProject(VOp):
    """Projection with computed items (one compiled evaluator per item)."""

    def __init__(self, child: VOp, items: list[tuple[str, Expression]]) -> None:
        self.child = child
        self.items = items
        self._fns = [(name, compile_expr(expr)) for name, expr in items]
        # Identity pass-throughs keep their column's type tag: the tag
        # describes the value list itself, which ref() forwards intact.
        self._passthrough = {
            name: expr.name
            for name, expr in items
            if isinstance(expr, ColumnRef)
        }

    @property
    def explain_label(self) -> str:
        return f"VProject {[name for name, _ in self.items]}"

    def children(self) -> tuple[VOp, ...]:
        return (self.child,)

    def _project_kinds(self, kinds: dict[str, int] | None) -> dict[str, int] | None:
        if kinds is None or not self._passthrough:
            return None
        out: dict[str, int] = {}
        for name, src in self._passthrough.items():
            kind = kinds.get(src)
            if kind is None and "." in src:
                kind = kinds.get(src.split(".", 1)[1])
            if kind is not None:
                out[name] = kind
        return out or None

    def batches(
        self,
        source: TableProvider,
        counters: dict[int, int] | None,
        lineage: bool = False,
    ) -> Iterator[Batch]:
        fns = self._fns
        for batch in self.child.batches(source, counters, lineage):
            self._count(counters, batch.n)
            yield Batch(
                {name: fn(batch) for name, fn in fns},
                batch.n,
                self._project_kinds(batch.kinds),
                batch.lin,
            )


class VKeepAll(VOp):
    """Identity projection stripping hidden and alias-qualified keys."""

    explain_label = "VKeepAll"

    def __init__(self, child: VOp) -> None:
        self.child = child

    def children(self) -> tuple[VOp, ...]:
        return (self.child,)

    def batches(
        self,
        source: TableProvider,
        counters: dict[int, int] | None,
        lineage: bool = False,
    ) -> Iterator[Batch]:
        for batch in self.child.batches(source, counters, lineage):
            columns = {
                k: v
                for k, v in batch.columns.items()
                if not k.startswith("__") and "." not in k
            }
            self._count(counters, batch.n)
            yield Batch(columns, batch.n, batch.kinds, batch.lin)


class VLimit(VOp):
    """LIMIT/OFFSET over the batch stream."""

    def __init__(self, child: VOp, count: int, offset: int) -> None:
        self.child = child
        self.count = count
        self.offset = offset

    @property
    def explain_label(self) -> str:
        return f"VLimit {self.count} offset {self.offset}"

    def children(self) -> tuple[VOp, ...]:
        return (self.child,)

    def batches(
        self,
        source: TableProvider,
        counters: dict[int, int] | None,
        lineage: bool = False,
    ) -> Iterator[Batch]:
        skip = self.offset
        remaining = self.count
        if remaining <= 0:
            return
        for batch in self.child.batches(source, counters, lineage):
            start = 0
            if skip:
                if batch.n <= skip:
                    skip -= batch.n
                    continue
                start = skip
                skip = 0
            take = min(batch.n - start, remaining)
            if start == 0 and take == batch.n:
                out = batch
            else:
                stop = start + take
                blin = batch.lin
                out = Batch(
                    {k: v[start:stop] for k, v in batch.columns.items()},
                    take,
                    batch.kinds,
                    blin[start:stop] if blin is not None else None,
                )
            remaining -= take
            self._count(counters, take)
            yield out
            if remaining <= 0:
                return


class VDistinct(VOp):
    """Duplicate elimination over visible columns (row-key semantics)."""

    explain_label = "VDistinct"

    def __init__(self, child: VOp) -> None:
        self.child = child

    def children(self) -> tuple[VOp, ...]:
        return (self.child,)

    def batches(
        self,
        source: TableProvider,
        counters: dict[int, int] | None,
        lineage: bool = False,
    ) -> Iterator[Batch]:
        seen = _DedupSet()
        for batch in self.child.batches(source, counters, lineage):
            visible = sorted(
                name for name in batch.columns if not name.startswith("__")
            )
            cols = [batch.columns[name] for name in visible]
            live = []
            for i in range(batch.n):
                key = tuple((name, col[i]) for name, col in zip(visible, cols))
                if seen.add(key):
                    live.append(i)
            if not live:
                continue
            if len(live) == batch.n:
                out = batch
            else:
                shared: dict[int, list[Any]] = {}
                columns: dict[str, list[Any]] = {}
                for name, col in batch.columns.items():
                    ckey = id(col)
                    packed = shared.get(ckey)
                    if packed is None:
                        packed = [col[i] for i in live]
                        shared[ckey] = packed
                    columns[name] = packed
                blin = batch.lin
                # First occurrence wins, matching the row engine: the
                # surviving row keeps its own lineage.
                lin = [blin[i] for i in live] if blin is not None else None
                out = Batch(columns, len(live), batch.kinds, lin)
            self._count(counters, out.n)
            yield out


class VSort(VOp):
    """ORDER BY via stable index sorts on :func:`sort_key_total` keys."""

    def __init__(self, child: VOp, keys: list[tuple[str, bool]]) -> None:
        self.child = child
        self.keys = keys

    @property
    def explain_label(self) -> str:
        return f"VSort {self.keys}"

    def children(self) -> tuple[VOp, ...]:
        return (self.child,)

    def batches(
        self,
        source: TableProvider,
        counters: dict[int, int] | None,
        lineage: bool = False,
    ) -> Iterator[Batch]:
        batches = list(self.child.batches(source, counters, lineage))
        if not batches:
            return
        columns: dict[str, list[Any]] = {
            k: list(v) for k, v in batches[0].columns.items()
        }
        total = batches[0].n
        merged_lin: list[tuple] | None = None
        if batches[0].lin is not None:
            merged_lin = list(batches[0].lin)
        for batch in batches[1:]:
            for k, v in batch.columns.items():
                columns[k].extend(v)
            if merged_lin is not None and batch.lin is not None:
                merged_lin.extend(batch.lin)
            total += batch.n
        merged = Batch(columns, total)
        order = list(range(total))
        # Stable multi-key sort, right-to-left, same as the row engine.
        for name, ascending in reversed(self.keys):
            keycol = _resolve(merged, name)
            sort_keys = [sort_key_total(v) for v in keycol]
            order.sort(key=sort_keys.__getitem__, reverse=not ascending)
        out = Batch(
            {k: [v[i] for i in order] for k, v in columns.items()},
            total,
            None,
            [merged_lin[i] for i in order] if merged_lin is not None else None,
        )
        self._count(counters, total)
        yield out


class VHashJoin(VOp):
    """Equi-join building a hash table over the materialized right input.

    Replicates ``{**lrow, **rrow}`` semantics column-wise: on overlapping
    names matched rows take the right value and unmatched LEFT-join rows
    keep the left value; right-only visible columns pad with NULL.  A
    LEFT join whose right side carries hidden columns the left side lacks
    cannot be expressed as uniform batches (the row engine emits ragged
    dicts there) -- it raises ``_Fallback``.
    """

    def __init__(
        self,
        left: VOp,
        right: VOp,
        left_on: str,
        right_on: str,
        how: str,
        orig: HashJoin,
    ) -> None:
        self.left = left
        self.right = right
        self.left_on = left_on
        self.right_on = right_on
        self.how = how
        self.orig = orig

    @property
    def explain_label(self) -> str:
        return f"VHashJoin {self.left_on} = {self.right_on} ({self.how})"

    def children(self) -> tuple[VOp, ...]:
        return (self.left, self.right)

    def batches(
        self,
        source: TableProvider,
        counters: dict[int, int] | None,
        lineage: bool = False,
    ) -> Iterator[Batch]:
        rcols: dict[str, list[Any]] = {}
        rn = 0
        rlin: list[tuple] | None = [] if lineage else None
        for batch in self.right.batches(source, counters, lineage):
            if not rcols:
                rcols = {k: list(v) for k, v in batch.columns.items()}
            else:
                for k, v in batch.columns.items():
                    rcols[k].extend(v)
            if rlin is not None and batch.lin is not None:
                rlin.extend(batch.lin)
            rn += batch.n
        left_join = self.how == "left"
        buckets: dict[Any, list[int]] = {}
        if rn:
            rkeys = _resolve(Batch(rcols, rn), self.right_on)
            appends: dict[Any, Callable[[int], None]] = {}
            for j, key in enumerate(rkeys):
                if key is None:
                    continue
                try:
                    appends[key](j)
                except KeyError:
                    bucket = [j]
                    buckets[key] = bucket
                    appends[key] = bucket.append
        pad_names: set[str] = set()
        if left_join:
            pad_names = {k for k in rcols if not k.startswith("__")}
            if not pad_names:
                derived = self.orig.right.output_columns(source)
                if derived:
                    pad_names = {c for c in derived if not c.startswith("__")}
                else:
                    pad_names = self.orig._schema_columns(source)
        for lbatch in self.left.batches(source, counters, lineage):
            lcols = lbatch.columns
            if left_join:
                ragged = [
                    k for k in rcols if k.startswith("__") and k not in lcols
                ]
                if ragged:
                    raise _Fallback(f"ragged left join columns {ragged}")
            lkeys = _resolve(lbatch, self.left_on)
            pair_l: list[int] = []
            pair_r: list[int] = []
            push_l = pair_l.append
            push_r = pair_r.append
            for i, key in enumerate(lkeys):
                matches = buckets.get(key) if key is not None else None
                if matches:
                    for j in matches:
                        push_l(i)
                        push_r(j)
                elif left_join:
                    push_l(i)
                    push_r(-1)
            if not pair_l:
                continue
            columns: dict[str, list[Any]] = {}
            for name, lc in lcols.items():
                rc = rcols.get(name)
                if rc is None:
                    columns[name] = [lc[i] for i in pair_l]
                else:
                    columns[name] = [
                        rc[j] if j >= 0 else lc[i]
                        for i, j in zip(pair_l, pair_r)
                    ]
            for name in rcols:
                if name not in lcols:
                    rc = rcols[name]
                    columns[name] = [
                        rc[j] if j >= 0 else None for j in pair_r
                    ]
            for name in sorted(pad_names):
                if name not in columns:
                    columns[name] = [None] * len(pair_l)
            self._count(counters, len(pair_l))
            lin = None
            if lineage and lbatch.lin is not None and rlin is not None:
                llin = lbatch.lin
                lin = [
                    llin[i] + rlin[j] if j >= 0 else llin[i]
                    for i, j in zip(pair_l, pair_r)
                ]
            yield Batch(columns, len(pair_l), None, lin)


class VAggregate(VOp):
    """GROUP BY + aggregates over column chunks.

    Accumulation replicates :class:`~repro.db.algebra._AggState` exactly:
    ``sum(values, total)`` is the row engine's left fold, ``min(cur,
    min(values))`` keeps the earliest value on ties like the strict ``<``
    update does, poisoning (non-summable SUM, incomparable MIN/MAX)
    yields NULL for the whole group, and groups emit in first-occurrence
    order.  Fast paths: group counts come free from the partition lists;
    a no-NULL column type tag skips the NULL pre-filter; DISTINCT specs
    fall back to a per-value ``_AggState`` loop.
    """

    def __init__(
        self,
        child: VOp,
        group_by: list[str],
        aggregates: list[Any],
        having: Expression | None,
    ) -> None:
        self.child = child
        self.group_by = group_by
        self.aggregates = aggregates
        self.having = having
        self._argfns: list[VecFn | None] = [
            compile_expr(s.arg) if s.arg is not None else None
            for s in aggregates
        ]
        # The single-value-column fast path applies when every spec with
        # an argument is a plain non-DISTINCT ColumnRef over one shared
        # column name; the partition then buckets values directly.
        names = set()
        general = False
        for spec in aggregates:
            if spec.arg is None:
                continue
            if spec.distinct or not isinstance(spec.arg, ColumnRef):
                general = True
            else:
                names.add(spec.arg.name)
        self._star_only = not names and not general
        # Several distinct names may still resolve to one value list at
        # run time (the planner emits one `__agg_in_N` per spec, and
        # identical ColumnRef projections share the list object), so the
        # shared-column path re-checks by list identity per batch.
        self._arg_names = sorted(names) if names and not general else None

    @property
    def explain_label(self) -> str:
        aggs = [
            f"{s.func}({'DISTINCT ' if s.distinct else ''}...) AS {s.name}"
            for s in self.aggregates
        ]
        return f"VAggregate group_by={self.group_by} aggs={aggs}"

    def children(self) -> tuple[VOp, ...]:
        return (self.child,)

    # -- per-spec accumulator plumbing ---------------------------------
    def _new_states(self) -> list[Any]:
        states: list[Any] = []
        for spec in self.aggregates:
            if spec.arg is None:
                states.append(None)  # COUNT(*): the star count suffices
            elif spec.distinct:
                states.append(_AggState(distinct=True))
            else:
                # [count, value, ok] -- value/ok meaning depends on func:
                # SUM/AVG: running total + summable; MIN/MAX: best +
                # comparable; COUNT: value unused.
                states.append([0, 0 if spec.func in ("SUM", "AVG") else None, True])
        return states

    @staticmethod
    def _accumulate(spec: Any, state: Any, values: list[Any]) -> None:
        """Fold non-None ``values`` (in row order) into ``state``."""
        if not values:
            return
        if spec.distinct:
            for v in values:
                state.add(v)
            return
        state[0] += len(values)
        func = spec.func
        if func == "COUNT" or not state[2]:
            return
        if func in ("SUM", "AVG"):
            try:
                state[1] = sum(values, state[1])
            except TypeError:
                state[1] = None
                state[2] = False
        elif func == "MIN":
            try:
                best = min(values)
                state[1] = best if state[1] is None else min(state[1], best)
            except TypeError:
                state[1] = None
                state[2] = False
        else:  # MAX
            try:
                best = max(values)
                state[1] = best if state[1] is None else max(state[1], best)
            except TypeError:
                state[1] = None
                state[2] = False

    @staticmethod
    def _result(spec: Any, state: Any, star: int) -> Any:
        if spec.arg is None:
            return star
        if spec.distinct:
            return state.result(spec.func)
        count = state[0]
        if spec.func == "COUNT":
            return count
        if count == 0:
            return None
        if spec.func == "SUM":
            return state[1] if state[2] else None
        if spec.func == "AVG":
            return state[1] / count if state[2] else None
        return state[1] if state[2] else None

    def _group_keys(self, batch: Batch) -> list[Any]:
        """Raw per-row group keys (scalar for one column, tuple beyond)."""
        cols = [_resolve(batch, g) for g in self.group_by]
        if len(cols) == 1:
            return cols[0]
        return list(zip(*cols))

    def batches(
        self,
        source: TableProvider,
        counters: dict[int, int] | None,
        lineage: bool = False,
    ) -> Iterator[Batch]:
        specs = self.aggregates
        group_by = self.group_by
        single = len(group_by) == 1
        # groups: key -> [star, states]; insertion order = first occurrence.
        groups: dict[Any, list[Any]] = {}
        # Lineage capture needs row positions per group, so it rides the
        # general partition path below (results are identical on every
        # path; only the accumulation strategy differs).
        glins: dict[Any, list[tuple]] = {}

        if not group_by:
            star = 0
            states = self._new_states()
            for batch in self.child.batches(source, counters, lineage):
                star += batch.n
                if lineage and batch.lin is not None:
                    lst = glins.setdefault((), [])
                    for entry in batch.lin:
                        lst.extend(entry)
                if self._star_only:
                    continue
                for spec, fn, state in zip(specs, self._argfns, states):
                    if fn is None:
                        continue
                    if isinstance(spec.arg, ColumnRef) and not spec.distinct:
                        col, kind = _resolve_with_kind(batch, spec.arg.name)
                    else:
                        col, kind = fn(batch), None
                    if kind is not None and not kind & K_NULL:
                        values = col
                    else:
                        values = [v for v in col if v is not None]
                    self._accumulate(spec, state, values)
            groups[()] = [star, states]
        else:
            arg_names = self._arg_names
            for batch in self.child.batches(source, counters, lineage):
                keys = self._group_keys(batch)
                blin = batch.lin if lineage else None
                if self._star_only and blin is None:
                    # Counts come straight from a C-speed Counter; new
                    # keys enter `groups` in first-occurrence order.
                    counts: Counter = Counter()
                    counts.update(keys)
                    for key, n in counts.items():
                        entry = groups.get(key)
                        if entry is None:
                            groups[key] = [n, self._new_states()]
                        else:
                            entry[0] += n
                    continue
                # Shared-column fast path: all agg arguments resolve to
                # ONE value list (by identity -- the planner's per-spec
                # `__agg_in_N` projections of the same ColumnRef share
                # the list object), so partition values directly instead
                # of partitioning indexes and picking per spec.
                col = None
                no_nulls = False
                if arg_names is not None and blin is None:
                    resolved = [_resolve_with_kind(batch, n) for n in arg_names]
                    if len({id(c) for c, _ in resolved}) == 1:
                        col = resolved[0][0]
                        kinds_seen = [k for _, k in resolved if k is not None]
                        no_nulls = bool(kinds_seen) and not any(
                            k & K_NULL for k in kinds_seen
                        )
                if col is not None:
                    bucket: dict[Any, list[Any]] = {}
                    appends: dict[Any, Callable[[Any], None]] = {}
                    for key, value in zip(keys, col):
                        try:
                            appends[key](value)
                        except KeyError:
                            lst = [value]
                            bucket[key] = lst
                            appends[key] = lst.append
                    for key, raw in bucket.items():
                        entry = groups.get(key)
                        if entry is None:
                            entry = groups[key] = [0, self._new_states()]
                        entry[0] += len(raw)
                        values = raw if no_nulls else [
                            v for v in raw if v is not None
                        ]
                        for spec, state in zip(specs, entry[1]):
                            if spec.arg is not None:
                                self._accumulate(spec, state, values)
                    continue
                # General path: index partition, one pick per spec column.
                positions: dict[Any, list[int]] = {}
                pos_appends: dict[Any, Callable[[int], None]] = {}
                for i, key in enumerate(keys):
                    try:
                        pos_appends[key](i)
                    except KeyError:
                        lst = [i]
                        positions[key] = lst
                        pos_appends[key] = lst.append
                argcols = [
                    fn(batch) if fn is not None else None for fn in self._argfns
                ]
                for key, idxs in positions.items():
                    entry = groups.get(key)
                    if entry is None:
                        entry = groups[key] = [0, self._new_states()]
                    entry[0] += len(idxs)
                    if blin is not None:
                        lst = glins.setdefault(key, [])
                        for i in idxs:
                            lst.extend(blin[i])
                    picked_cache: dict[int, list[Any]] = {}
                    for spec, col, state in zip(specs, argcols, entry[1]):
                        if col is None:
                            continue
                        ckey = id(col)
                        picked = picked_cache.get(ckey)
                        if picked is None:
                            picked = [
                                v for i in idxs if (v := col[i]) is not None
                            ]
                            picked_cache[ckey] = picked
                        self._accumulate(spec, state, picked)

        out_rows: list[Row] = []
        out_lins: list[tuple] = []
        for key, (star, states) in groups.items():
            if group_by:
                key_tuple = (key,) if single else key
                out: Row = {g: v for g, v in zip(group_by, key_tuple)}
            else:
                out = {}
            for spec, state in zip(specs, states):
                out[spec.name] = self._result(spec, state, star)
            if self.having is None or evaluate_predicate(self.having, out):
                out_rows.append(out)
                if lineage:
                    out_lins.append(tuple(glins.get(key, ())))
        result = rows_to_batch(out_rows)
        if result is not None:
            if lineage:
                result.lin = out_lins
            self._count(counters, result.n)
            yield result


# ----------------------------------------------------------------------
# Plan wrapper and translation


def _collect_scans(root: VOp) -> list[VScan]:
    out: list[VScan] = []
    stack: list[VOp] = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, VScan):
            out.append(node)
        stack.extend(node.children())
    return out


def _collect_ids(root: VOp) -> list[int]:
    out: list[int] = []
    stack: list[VOp] = [root]
    while stack:
        node = stack.pop()
        out.append(id(node))
        stack.extend(node.children())
    return out


def _row_repr(row: Row) -> str:
    return repr(sorted(row.items(), key=lambda kv: kv[0]))


class Vectorized(Plan):
    """Plan node executing a translated VOp tree on the batch engine.

    Wraps the original row plan for two jobs: transparent fallback when a
    base table turns out not to be a real :class:`Table` at execution
    time (isolation snapshots), and the row/vector equivalence oracle
    (``verify=True``) which runs both engines and diffs results.
    """

    engine = "vectorized"
    explain_label = "Vectorized"

    def __init__(self, root: VOp, row_plan: Plan, verify: bool = False) -> None:
        self.root = root
        self.row_plan = row_plan
        self.verify = verify
        self._counters: dict[int, int] | None = None
        self._scan_names = sorted({s.table_name for s in _collect_scans(root)})

    def children(self) -> tuple[Plan, ...]:
        return (self.root,)  # type: ignore[return-value]

    def base_tables(self) -> set[str]:
        return self.row_plan.base_tables()

    def output_columns(self, source: TableProvider) -> set[str] | None:
        return self.row_plan.output_columns(source)

    def attach_counters(self, counters: dict[int, int]) -> "Vectorized":
        """EXPLAIN ANALYZE hook: a clone that fills per-chunk counters.

        The clone shares this node's VOp objects, so counter keys match
        ``id()``s in the original tree and ``format_plan`` lines up.
        """
        clone = Vectorized(self.root, self.row_plan, self.verify)
        clone._counters = counters
        return clone

    def rows(self, source: TableProvider) -> Iterator[Row]:
        return iter(self.to_list(source))

    def to_list(self, source: TableProvider) -> list[Row]:
        try:
            for name in self._scan_names:
                if not isinstance(source.table(name), Table):
                    raise _Fallback(name)
            result: list[Row] = []
            for batch in self.root.batches(source, self._counters):
                result.extend(batch_rows(batch))
        except _Fallback:
            # The batch engine cannot serve this source; erase any
            # partial chunk counts so EXPLAIN doesn't report phantom
            # vectorized work, and run the row plan.
            if self._counters is not None:
                for key in _collect_ids(self.root):
                    self._counters.pop(key, None)
            return self.row_plan.to_list(source)
        if self.verify:
            expected = self.row_plan.to_list(source)
            if result != expected:
                raise DatabaseError(self._diff_message(result, expected))
        return result

    def to_list_lineage(self, source: TableProvider) -> tuple[list[Row], list[tuple]]:
        """Execute with lineage capture: ``(rows, lineages)`` in lockstep.

        ``lineages[i]`` is an iterable of ``(table, tid)`` pairs for
        ``rows[i]`` (uncanonicalized; callers normalize via
        :func:`repro.lineage.capture.canon_lineage`).  Falls back to the
        row-engine capture interpreter whenever the batch engine cannot
        serve this source, exactly mirroring :meth:`to_list`.
        """
        from ..lineage.capture import row_capture

        try:
            for name in self._scan_names:
                if not isinstance(source.table(name), Table):
                    raise _Fallback(name)
            rows: list[Row] = []
            lins: list[tuple] = []
            for batch in self.root.batches(source, None, lineage=True):
                rows.extend(batch_rows(batch))
                if batch.lin is not None:
                    lins.extend(batch.lin)
                else:
                    lins.extend(() for _ in range(batch.n))
        except _Fallback:
            return row_capture(self.row_plan, source)
        return rows, lins

    def _diff_message(self, got: list[Row], expected: list[Row]) -> str:
        got_keys = Counter(_row_repr(r) for r in got)
        exp_keys = Counter(_row_repr(r) for r in expected)
        extra = sorted((got_keys - exp_keys).elements())[:5]
        missing = sorted((exp_keys - got_keys).elements())[:5]
        if not extra and not missing:
            return (
                "row/vector oracle mismatch: same row multiset, different "
                f"order ({len(got)} rows); first vectorized row "
                f"{_row_repr(got[0]) if got else '<none>'!s}, first row-engine "
                f"row {_row_repr(expected[0]) if expected else '<none>'!s}"
            )
        return (
            "row/vector oracle mismatch: vectorized produced "
            f"{len(got)} rows, row engine {len(expected)}; "
            f"only-vectorized={extra!r} only-row={missing!r}"
        )

    def __repr__(self) -> str:
        return f"Vectorized({self.row_plan!r})"


def _widen(needed: set[str] | None, extra: set[str]) -> set[str] | None:
    return None if needed is None else needed | extra


def _translate(plan: Plan, needed: set[str] | None) -> VOp:
    """Recursive Plan -> VOp translation with needed-column pruning.

    ``needed`` is the set of column keys the operators above will
    reference (None = all).  Raises :class:`Unvectorizable` on any
    operator without a batch form: index scans (the router already chose
    index access for a reason), set operations, products, row sources,
    and lambda expressions.
    """
    if isinstance(plan, Scan):
        return VScan(plan.table_name, plan.alias, needed)
    if isinstance(plan, Select):
        child = _translate(plan.child, _widen(needed, plan.predicate.columns()))
        return VFilter(child, plan.predicate)
    if isinstance(plan, Project):
        below: set[str] = set()
        for _, item_expr in plan.items:
            below |= item_expr.columns()
        return VProject(_translate(plan.child, below), list(plan.items))
    if isinstance(plan, KeepAll):
        return VKeepAll(_translate(plan.child, None))
    if isinstance(plan, HashJoin):
        left = _translate(plan.left, None)
        right = _translate(plan.right, None)
        return VHashJoin(left, right, plan.left_on, plan.right_on, plan.how, plan)
    if isinstance(plan, Aggregate):
        below = set(plan.group_by)
        for spec in plan.aggregates:
            if spec.arg is not None:
                below |= spec.arg.columns()
        child = _translate(plan.child, below)
        return VAggregate(
            child, list(plan.group_by), list(plan.aggregates), plan.having
        )
    if isinstance(plan, Sort):
        child = _translate(
            plan.child, _widen(needed, {name for name, _ in plan.keys})
        )
        return VSort(child, list(plan.keys))
    if isinstance(plan, Limit):
        return VLimit(_translate(plan.child, needed), plan.count, plan.offset)
    if isinstance(plan, Distinct):
        return VDistinct(_translate(plan.child, None))
    raise Unvectorizable(f"operator {type(plan).__name__} has no vector form")


def vectorize_plan(
    plan: Plan, source: TableProvider, verify: bool = False
) -> Vectorized | None:
    """Translate ``plan`` for the batch engine, or None if untranslatable.

    The returned :class:`Vectorized` node executes the batch pipeline
    and falls back to ``plan`` itself whenever the source cannot serve
    columnar scans.  With ``verify=True`` it becomes the equivalence
    oracle: every execution also runs the row plan and raises
    :class:`~repro.errors.DatabaseError` on any difference.
    """
    try:
        root = _translate(plan, None)
    except Unvectorizable:
        return None
    return Vectorized(root, plan, verify=verify)

