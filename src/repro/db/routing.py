"""Cost-aware access-path routing shared by every WHERE-clause consumer.

Given a conjunction of predicates over one stored table, pick the cheapest
way to produce candidate rows:

* ``col = literal`` with a single-column :class:`~repro.db.index.HashIndex`
  -> :class:`~repro.db.algebra.IndexScan`
* equality on every column of a composite hash index
  -> :class:`~repro.db.algebra.CompositeIndexScan`
* range conjuncts (``<``, ``<=``, ``>``, ``>=``, and the ``BETWEEN``
  lowering) on a :class:`~repro.db.index.SortedIndex` column -- including
  the implicit per-table creation-timestamp index the isolation layer
  (Section VI-A) filters on -- -> :class:`~repro.db.algebra.RangeIndexScan`

Candidates compete on *exact* cardinality estimates (``bucket_size`` /
``count_range`` are O(1)/O(log n) against live index state); the minimum
wins.  The same machinery backs the SQL planner's SELECT leaves, the
UPDATE/DELETE paths in :mod:`repro.db.database` (via :func:`matching_tids`),
and the isolation/notification scans.

All routing is *defensive*: tables that do not expose index discovery
(e.g. the isolation layer's ``_IsolatedTable`` adapter) simply get no
candidates and keep their full-scan plans, and every routed leaf re-checks
residual conjuncts, so routing can never change results -- only skip work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..errors import UnknownTableError
from ..obs.runtime import OBS
from .algebra import (
    CompositeIndexScan,
    Distinct,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    KeepAll,
    Limit,
    Plan,
    Project,
    RangeIndexScan,
    RowSource,
    Scan,
    Select,
    Sort,
    plan_access_kind,
)
from .expression import (
    And,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    evaluate_predicate,
)
from .schema import HIDDEN_FIELDS, TID
from .table import Table


def split_conjuncts(expr: Expression | None) -> list[Expression]:
    """Flatten an ``And`` tree into its conjunct list."""
    if expr is None:
        return []
    if isinstance(expr, And):
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: Iterable[Expression]) -> Expression | None:
    """Fold a conjunct list back into an ``And`` tree (None when empty)."""
    result: Expression | None = None
    for conjunct in conjuncts:
        result = conjunct if result is None else And(result, conjunct)
    return result


# ----------------------------------------------------------------------
# Conjunct analysis
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _strip_qualifier(name: str, names: tuple[str, ...]) -> str:
    """Reduce ``alias.col`` / ``table.col`` to the bare column name."""
    for prefix in names:
        if prefix and name.startswith(prefix + "."):
            return name[len(prefix) + 1 :]
    return name


def _column_literal(
    comp: Comparison, columns: set[str], qualifiers: tuple[str, ...]
) -> tuple[str, str, Any] | None:
    """Decompose ``col OP literal`` (either orientation) or give up.

    Returns ``(column, op, value)`` with the comparison re-oriented so the
    column is on the left.  NULL literals are rejected: ``col OP NULL`` is
    never True, and hash/sorted indexes treat NULLs specially.
    """
    left, op, right = comp.left, comp.op, comp.right
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        left, right = right, left
        op = _FLIP.get(op, op)
    if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
        return None
    if right.value is None:
        return None
    name = _strip_qualifier(left.name, qualifiers)
    if name not in columns:
        return None
    return name, op, right.value


@dataclass
class _Bounds:
    """Accumulated range bounds for one column (tightest wins)."""

    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = True
    conjuncts: list[Expression] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.conjuncts = []

    def narrow_low(self, value: Any, inclusive: bool) -> None:
        if self.low is None or value > self.low or (
            value == self.low and not inclusive
        ):
            self.low, self.include_low = value, inclusive

    def narrow_high(self, value: Any, inclusive: bool) -> None:
        if self.high is None or value < self.high or (
            value == self.high and not inclusive
        ):
            self.high, self.include_high = value, inclusive


@dataclass
class _Candidate:
    estimate: int
    plan: Plan
    consumed: list[Expression]
    tids: Any  # zero-arg callable producing an iterable of tids


def _analyze(
    conjuncts: list[Expression], columns: set[str], qualifiers: tuple[str, ...]
) -> tuple[dict[str, tuple[Any, Expression]], dict[str, _Bounds]]:
    """Split conjuncts into per-column equality values and range bounds."""
    equals: dict[str, tuple[Any, Expression]] = {}
    bounds: dict[str, _Bounds] = {}
    for conjunct in conjuncts:
        if not isinstance(conjunct, Comparison):
            continue
        decomposed = _column_literal(conjunct, columns, qualifiers)
        if decomposed is None:
            continue
        column, op, value = decomposed
        if op == "=":
            # First equality wins; a contradictory second one stays residual.
            equals.setdefault(column, (value, conjunct))
        elif op in ("<", "<=", ">", ">="):
            try:
                b = bounds.setdefault(column, _Bounds())
                if op in (">", ">="):
                    b.narrow_low(value, op == ">=")
                else:
                    b.narrow_high(value, op == "<=")
                b.conjuncts.append(conjunct)
            except TypeError:
                # Uncomparable bound values (mixed types): leave residual.
                bounds.pop(column, None)
    return equals, bounds


def _candidates(
    table: Any,
    table_name: str,
    alias: str | None,
    conjuncts: list[Expression],
) -> list[_Candidate]:
    """All index access paths applicable to ``conjuncts``, with estimates."""
    schema = getattr(table, "schema", None)
    if schema is None:
        return []
    columns = set(schema.column_names) | set(HIDDEN_FIELDS)
    qualifiers = (alias or "", table_name)
    equals, bounds = _analyze(conjuncts, columns, qualifiers)

    out: list[_Candidate] = []
    find_hash = getattr(table, "find_hash_index", None)
    find_sorted = getattr(table, "find_sorted_index", None)
    hash_indexes = getattr(table, "hash_indexes", None)

    if find_hash is not None:
        for column, (value, conjunct) in equals.items():
            index = find_hash(column)
            if index is None:
                continue
            out.append(
                _Candidate(
                    estimate=index.bucket_size((value,)),
                    plan=IndexScan(table_name, column, value, alias=alias),
                    consumed=[conjunct],
                    tids=lambda index=index, value=value: index.lookup(value),
                )
            )

    if hash_indexes is not None and len(equals) > 1:
        for index in hash_indexes():
            cols = index.columns
            if len(cols) < 2 or not all(c in equals for c in cols):
                continue
            values = tuple(equals[c][0] for c in cols)
            out.append(
                _Candidate(
                    estimate=index.bucket_size(values),
                    plan=CompositeIndexScan(table_name, cols, values, alias=alias),
                    consumed=[equals[c][1] for c in cols],
                    tids=lambda index=index, values=values: index.lookup_tuple(values),
                )
            )

    if find_sorted is not None:
        for column, b in bounds.items():
            index = find_sorted(column)
            if index is None:
                continue
            out.append(
                _Candidate(
                    estimate=index.count_range(
                        b.low, b.high, b.include_low, b.include_high
                    ),
                    plan=RangeIndexScan(
                        table_name,
                        column,
                        low=b.low,
                        high=b.high,
                        include_low=b.include_low,
                        include_high=b.include_high,
                        alias=alias,
                    ),
                    consumed=list(b.conjuncts),
                    tids=lambda index=index, b=b: index.range(
                        b.low, b.high, b.include_low, b.include_high
                    ),
                )
            )
        # Equality on a sorted-index column without a hash index: degenerate
        # range [v, v] (e.g. an exact-timestamp probe on __created__).
        for column, (value, conjunct) in equals.items():
            if find_hash is not None and find_hash(column) is not None:
                continue
            index = find_sorted(column)
            if index is None:
                continue
            out.append(
                _Candidate(
                    estimate=index.count_range(value, value),
                    plan=RangeIndexScan(
                        table_name, column, low=value, high=value, alias=alias
                    ),
                    consumed=[conjunct],
                    tids=lambda index=index, value=value: index.range(value, value),
                )
            )
    return out


def _best(candidates: list[_Candidate]) -> _Candidate | None:
    return min(candidates, key=lambda c: c.estimate, default=None)


def route_scan(
    table: Any,
    table_name: str,
    alias: str | None,
    conjuncts: list[Expression],
) -> tuple[Plan, list[Expression], int] | None:
    """Pick the cheapest index leaf for ``conjuncts`` over one table.

    Returns ``(leaf_plan, residual_conjuncts, estimate)`` or None when no
    index applies (caller keeps its full scan).  Residual conjuncts must be
    re-applied on top of the leaf by the caller.
    """
    best = _best(_candidates(table, table_name, alias, conjuncts))
    if best is None:
        return None
    consumed_ids = {id(c) for c in best.consumed}
    residual = [c for c in conjuncts if id(c) not in consumed_ids]
    return best.plan, residual, best.estimate


def candidate_tids(table: Any, predicate: Expression | None) -> Iterable[int] | None:
    """Tids the best index narrows ``predicate`` to, or None for full scan.

    The returned tid set is a superset of the matching rows: callers must
    still evaluate the *full* predicate on each candidate row.
    """
    if predicate is None:
        return None
    conjuncts = split_conjuncts(predicate)
    table_name = getattr(getattr(table, "schema", None), "name", "")
    best = _best(_candidates(table, table_name, None, conjuncts))
    if best is None:
        return None
    return best.tids()


def matching_tids(table: Any, predicate: Expression | None) -> list[int]:
    """Tids of rows satisfying ``predicate``, in tid order.

    Index-routed when possible; byte-identical to the naive full scan
    because candidates are re-checked against the complete predicate and
    emitted in sorted-tid order.
    """
    candidates = candidate_tids(table, predicate)
    if candidates is None:
        return [
            row[TID] for row in table.rows() if evaluate_predicate(predicate, row)
        ]
    matched = []
    for tid in sorted(candidates):
        row = table.get(tid)
        if row is not None and evaluate_predicate(predicate, row):
            matched.append(tid)
    return matched


# ----------------------------------------------------------------------
# Plan-tree optimization: selection pushdown + leaf routing + join choice
def estimate_rows(plan: Plan, database: Any) -> int | None:
    """Upper bound on the rows ``plan`` can produce, or None when unknown.

    Estimates come from live index/table state (exact counts, not
    statistics), so they are only meaningful at planning time.
    """
    if isinstance(plan, Scan):
        try:
            table = database.table(plan.table_name)
        except UnknownTableError:
            # Planning against a provider that lacks the table (isolated
            # snapshots, mid-DDL races): no estimate, count the miss.
            if OBS.enabled:
                OBS.metrics.counter(
                    "db.estimate_unknown_table", table=plan.table_name
                ).inc()
            return None
        # _IsolatedTable and friends may have O(n) __len__; only trust
        # the real storage class.
        return len(table) if isinstance(table, Table) else None
    if isinstance(plan, (IndexScan, CompositeIndexScan, RangeIndexScan)):
        try:
            table = database.table(plan.table_name)
        except UnknownTableError:
            if OBS.enabled:
                OBS.metrics.counter(
                    "db.estimate_unknown_table", table=plan.table_name
                ).inc()
            return None
        if not isinstance(table, Table):
            return None
        if isinstance(plan, IndexScan):
            index = table.find_hash_index(plan.column)
            return index.bucket_size((plan.value,)) if index else None
        if isinstance(plan, CompositeIndexScan):
            for index in table.hash_indexes():
                if frozenset(index.columns) == frozenset(plan.columns):
                    by_name = dict(zip(plan.columns, plan.values))
                    return index.bucket_size([by_name[c] for c in index.columns])
            return None
        index = table.find_sorted_index(plan.column)
        if index is None:
            return None
        return index.count_range(
            plan.low, plan.high, plan.include_low, plan.include_high
        )
    if isinstance(plan, RowSource):
        return len(plan)
    if isinstance(plan, Limit):
        child = estimate_rows(plan.child, database)
        return plan.count if child is None else min(plan.count, child)
    if isinstance(plan, (Select, Project, KeepAll, Distinct, Sort)):
        return estimate_rows(plan.child, database)
    return None


def optimize_plan(plan: Plan, database: Any) -> Plan:
    """Rewrite ``plan`` for cost: pushdown, index leaves, join selection.

    Purely a cost transformation -- every rewrite preserves the produced
    rows (and their order) exactly.  The tree is rewritten in place and
    returned; callers optimizing a tree they share should deep-copy first.
    """
    plan = _pushdown(plan, database)
    plan = _route_tree(plan, database)
    return _maybe_vectorize(plan, database)


def _maybe_vectorize(plan: Plan, database: Any) -> Plan:
    """Compete a vectorized candidate against the routed row plan.

    The decision follows the database's engine mode: ``"row"`` never
    vectorizes; ``"vector"``/``"oracle"`` always do when translatable
    (oracle runs both engines and diffs); ``"auto"`` -- the default --
    vectorizes only when the router found no index access (an index probe
    beats any scan, columnar or not) and the base tables are large enough
    (``vector_min_rows``) for chunked execution to amortize its setup.
    Untranslatable plans always keep the row form.
    """
    mode = getattr(database, "engine_mode", "row")
    if mode == "row":
        return plan
    from .vector import vectorize_plan

    if mode in ("vector", "oracle"):
        vectorized = vectorize_plan(plan, database, verify=mode == "oracle")
        return vectorized if vectorized is not None else plan
    if plan_access_kind(plan) != "scan":
        return plan
    threshold = getattr(database, "vector_min_rows", 4096)
    total = 0
    for name in plan.base_tables():
        try:
            table = database.table(name)
        except UnknownTableError:
            return plan
        if not isinstance(table, Table):
            return plan
        total += len(table)
    if total < threshold:
        return plan
    vectorized = vectorize_plan(plan, database)
    return vectorized if vectorized is not None else plan


def _pushdown(plan: Plan, database: Any) -> Plan:
    if isinstance(plan, Select):
        conjuncts = split_conjuncts(plan.predicate)
        child = plan.child
        while isinstance(child, Select):
            conjuncts += split_conjuncts(child.predicate)
            child = child.child
        child = _pushdown(child, database)
        remaining: list[Expression] = []
        for conjunct in conjuncts:
            pushed = _try_push(conjunct, child, database)
            if pushed is None:
                remaining.append(conjunct)
            else:
                child = pushed
        predicate = conjoin(remaining)
        return Select(child, predicate) if predicate is not None else child
    for attr in ("child", "left", "right"):
        sub = getattr(plan, attr, None)
        if isinstance(sub, Plan):
            rewritten = _pushdown(sub, database)
            if rewritten is not sub:
                setattr(plan, attr, rewritten)
    return plan


def _apply(conjunct: Expression, node: Plan, database: Any) -> Plan:
    """Attach ``conjunct`` to ``node``, sinking it as deep as it can go."""
    pushed = _try_push(conjunct, node, database)
    if pushed is not None:
        return pushed
    return Select(node, conjunct)


def _try_push(conjunct: Expression, node: Plan, database: Any) -> Plan | None:
    """Sink one conjunct below ``node``; None when it must stay above."""
    if isinstance(node, Select):
        # Merge rather than stack: sink past this Select's child when
        # possible, otherwise AND into its predicate (keeps Select(Scan)
        # shapes the leaf router recognizes).
        deeper = _try_push(conjunct, node.child, database)
        if deeper is not None:
            node.child = deeper
        else:
            node.predicate = And(node.predicate, conjunct)
        return node
    if isinstance(node, KeepAll):
        # KeepAll strips hidden/qualified keys: a conjunct naming them
        # sees NULL above but real values below -- keep those above.
        if any(c.startswith("__") or "." in c for c in conjunct.columns()):
            return None
        node.child = _apply(conjunct, node.child, database)
        return node
    if isinstance(node, Project):
        # Only push through identity items (SELECT x, not SELECT x AS y):
        # anything else would need expression rewriting.
        passthrough = {
            name
            for name, expr in node.items
            if isinstance(expr, ColumnRef) and expr.name == name
        }
        cols = conjunct.columns()
        if not cols or not cols <= passthrough:
            return None
        node.child = _apply(conjunct, node.child, database)
        return node
    if isinstance(node, HashJoin):
        cols = conjunct.columns()
        if not cols:
            return None
        left_cols = node.left.output_columns(database)
        right_cols = node.right.output_columns(database)
        in_left = left_cols is not None and cols <= left_cols
        in_right = right_cols is not None and cols <= right_cols
        if in_left and not in_right:
            node.left = _apply(conjunct, node.left, database)
            return node
        if in_right and not in_left and node.how == "inner":
            # Right-side conjuncts must NOT sink below a LEFT join: they
            # would drop rows before null padding instead of after.
            node.right = _apply(conjunct, node.right, database)
            return node
        return None
    return None


def _route_tree(plan: Plan, database: Any) -> Plan:
    for attr in ("child", "left", "right"):
        sub = getattr(plan, attr, None)
        if isinstance(sub, Plan):
            rewritten = _route_tree(sub, database)
            if rewritten is not sub:
                setattr(plan, attr, rewritten)
    if isinstance(plan, Select) and isinstance(plan.child, Scan):
        scan = plan.child
        try:
            table = database.table(scan.table_name)
        except Exception:
            return plan
        conjuncts = split_conjuncts(plan.predicate)
        routed = route_scan(table, scan.table_name, scan.alias, conjuncts)
        if routed is None:
            return plan
        leaf, residual, _estimate = routed
        predicate = conjoin(residual)
        return Select(leaf, predicate) if predicate is not None else leaf
    if isinstance(plan, HashJoin):
        return _maybe_index_join(plan, database)
    return plan


def _maybe_index_join(join: HashJoin, database: Any) -> Plan:
    """Swap a HashJoin for an index-nested-loop join when clearly cheaper.

    Requires: bare Scan inner side backed by a hash index on the join
    column, and an outer side estimated at under a quarter of the inner
    table (each outer row costs one O(1) probe; the hash join would pay
    for hashing the whole inner table first).
    """
    if not isinstance(join.right, Scan):
        return join
    right = join.right
    column = _strip_qualifier(join.right_on, (right.alias or "", right.table_name))
    try:
        table = database.table(right.table_name)
    except Exception:
        return join
    if not isinstance(table, Table) or table.find_hash_index(column) is None:
        return join
    est_left = estimate_rows(join.left, database)
    if est_left is None or est_left * 4 > len(table):
        return join
    return IndexNestedLoopJoin(
        join.left,
        right.table_name,
        join.left_on,
        join.right_on,
        column,
        right_alias=right.alias,
        how=join.how,
    )
