"""Relational algebra plans and their pull-based executor.

The paper's query language is "a relational algebraic expression over the
relations... selection, projection, and cartesian product" (Section V).
We implement those plus the operators every realistic deployment of the
model needs: hash joins, grouping/aggregation, sort, distinct, limit,
union, and difference.

Plans are immutable trees of :class:`Plan` nodes; :meth:`Plan.rows` pulls
result rows as dicts.  A plan executes against any object exposing
``table(name) -> Table`` -- in practice the :class:`repro.db.database.Database`.
"""

from __future__ import annotations

import copy
import numbers
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Protocol, Sequence

from ..errors import DatabaseError, UnknownTableError
from .expression import ColumnRef, Expression, evaluate_predicate
from .table import Table


class TableProvider(Protocol):
    """Anything that can resolve table names (Database implements this)."""

    def table(self, name: str) -> Table: ...


Row = dict[str, Any]


class Plan:
    """Base class for algebra operators."""

    def rows(self, source: TableProvider) -> Iterator[Row]:
        raise NotImplementedError

    def to_list(self, source: TableProvider) -> list[Row]:
        return list(self.rows(source))

    # -- fluent builders ------------------------------------------------
    def where(self, predicate: Expression) -> "Select":
        return Select(self, predicate)

    def project(self, *items: str | tuple[str, Expression]) -> "Project":
        return Project(self, _normalize_items(items))

    def join(self, other: "Plan", left_on: str, right_on: str) -> "HashJoin":
        return HashJoin(self, other, left_on, right_on)

    def order_by(self, *keys: str | tuple[str, bool]) -> "Sort":
        norm = [(k, True) if isinstance(k, str) else k for k in keys]
        return Sort(self, norm)

    def limit(self, count: int, offset: int = 0) -> "Limit":
        return Limit(self, count, offset)

    def distinct(self) -> "Distinct":
        return Distinct(self)

    def base_tables(self) -> set[str]:
        """Names of the stored tables this plan reads (for IVM wiring)."""
        out: set[str] = set()
        for child in self.children():
            out |= child.base_tables()
        return out

    def children(self) -> tuple["Plan", ...]:
        return ()

    def output_columns(self, source: TableProvider) -> set[str] | None:
        """Column names this plan's rows carry, or None when unknown.

        Used by the planner's selection pushdown (to decide which side of
        a join a conjunct belongs to) and by LEFT JOIN null padding over
        derived right-hand plans.
        """
        return None


def _scan_columns(
    source: TableProvider, table_name: str, alias: str | None
) -> set[str] | None:
    """Catalog columns of a stored-table leaf, plus alias-qualified names."""
    try:
        schema = source.table(table_name).schema
    except UnknownTableError:
        # Planning against a source that can't resolve the name (delta
        # RowSources, isolation wrappers) degrades gracefully; any other
        # failure means the catalog itself is broken and must surface.
        return None
    columns = set(schema.column_names)
    if alias:
        columns |= {f"{alias}.{c}" for c in schema.column_names}
    return columns


def _qualify_row(row: Row, alias: str) -> Row:
    """Copy ``row`` adding ``alias.col`` keys (the Scan alias behavior)."""
    qualified = dict(row)
    for key, value in row.items():
        if not key.startswith("__"):
            qualified[f"{alias}.{key}"] = value
    return qualified


def _normalize_items(
    items: Sequence[str | tuple[str, Expression]],
) -> list[tuple[str, Expression]]:
    out: list[tuple[str, Expression]] = []
    for item in items:
        if isinstance(item, str):
            out.append((item, ColumnRef(item)))
        else:
            out.append(item)
    return out


class Scan(Plan):
    """Full scan of a stored table.

    With an ``alias``, each output row additionally carries qualified keys
    (``alias.col``) so joins between tables with overlapping column names
    stay unambiguous.  Without one, internal row dicts are yielded directly
    (the fast path the Figure-8 pipeline depends on).
    """

    def __init__(self, table: str, alias: str | None = None) -> None:
        self.table_name = table
        self.alias = alias

    def rows(self, source: TableProvider) -> Iterator[Row]:
        table = source.table(self.table_name)
        if self.alias is None:
            yield from table.rows()
            return
        prefix = self.alias
        for row in table.rows():
            yield _qualify_row(row, prefix)

    def base_tables(self) -> set[str]:
        return {self.table_name}

    def output_columns(self, source: TableProvider) -> set[str] | None:
        return _scan_columns(source, self.table_name, self.alias)

    def __repr__(self) -> str:
        return f"Scan({self.table_name!r})"


class IndexScan(Plan):
    """Point lookup through a hash index: ``WHERE col = value``.

    Falls back to a full scan when the source cannot serve the index
    (e.g. isolation-filtered views wrap tables without exposing indexes)
    -- the result is identical either way, only the cost differs.
    """

    def __init__(
        self, table: str, column: str, value: Any, alias: str | None = None
    ) -> None:
        self.table_name = table
        self.column = column
        self.value = value
        self.alias = alias

    def rows(self, source: TableProvider) -> Iterator[Row]:
        table = source.table(self.table_name)
        find = getattr(table, "find_hash_index", None)
        index = find(self.column) if find is not None else None
        if index is None:
            # Fallback: filtered scan (correctness over speed).
            for row in table.rows():
                if row.get(self.column) == self.value:
                    yield row if self.alias is None else _qualify_row(row, self.alias)
            return
        get = table.get
        # Sorted tids keep output in tid order, byte-identical to a full scan.
        for tid in sorted(index.lookup(self.value)):
            row = get(tid)
            if row is not None:
                yield row if self.alias is None else _qualify_row(row, self.alias)

    def base_tables(self) -> set[str]:
        return {self.table_name}

    def output_columns(self, source: TableProvider) -> set[str] | None:
        return _scan_columns(source, self.table_name, self.alias)

    def __repr__(self) -> str:
        return f"IndexScan({self.table_name}.{self.column} = {self.value!r})"


class CompositeIndexScan(Plan):
    """Composite-key equality probe through a multi-column hash index.

    ``WHERE a = x AND b = y`` with a hash index on ``(a, b)`` resolves to
    one ``lookup_tuple`` probe.  Falls back to a filtered scan when the
    source cannot serve the index.
    """

    def __init__(
        self,
        table: str,
        columns: Sequence[str],
        values: Sequence[Any],
        alias: str | None = None,
    ) -> None:
        if len(columns) != len(values):
            raise DatabaseError("CompositeIndexScan needs one value per column")
        self.table_name = table
        self.columns = tuple(columns)
        self.values = tuple(values)
        self.alias = alias

    def rows(self, source: TableProvider) -> Iterator[Row]:
        table = source.table(self.table_name)
        index = None
        for idx in getattr(table, "hash_indexes", lambda: ())():
            if frozenset(idx.columns) == frozenset(self.columns):
                index = idx
                break
        if index is None:
            wanted = dict(zip(self.columns, self.values))
            for row in table.rows():
                if all(row.get(c) == v for c, v in wanted.items()):
                    yield row if self.alias is None else _qualify_row(row, self.alias)
            return
        by_name = dict(zip(self.columns, self.values))
        ordered = [by_name[c] for c in index.columns]
        get = table.get
        for tid in sorted(index.lookup_tuple(ordered)):
            row = get(tid)
            if row is not None:
                yield row if self.alias is None else _qualify_row(row, self.alias)

    def base_tables(self) -> set[str]:
        return {self.table_name}

    def output_columns(self, source: TableProvider) -> set[str] | None:
        return _scan_columns(source, self.table_name, self.alias)

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{c} = {v!r}" for c, v in zip(self.columns, self.values)
        )
        return f"CompositeIndexScan({self.table_name}: {pairs})"


class RangeIndexScan(Plan):
    """Range probe through a sorted index: ``WHERE col >= low AND col <= high``.

    Backs the isolation-predicate scans of Section VI-A (creation-timestamp
    ranges) and the ``seq_no`` scans of VI-C.  Bounds are optional on
    either side; inclusivity is tracked per bound.  Falls back to a
    filtered scan when the source cannot serve the index -- identical
    result, only the cost differs.
    """

    def __init__(
        self,
        table: str,
        column: str,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
        alias: str | None = None,
    ) -> None:
        self.table_name = table
        self.column = column
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high
        self.alias = alias

    def _matches(self, value: Any) -> bool:
        if value is None:
            return False  # range predicates never match NULL
        if self.low is not None:
            if self.include_low:
                if value < self.low:
                    return False
            elif value <= self.low:
                return False
        if self.high is not None:
            if self.include_high:
                if value > self.high:
                    return False
            elif value >= self.high:
                return False
        return True

    def rows(self, source: TableProvider) -> Iterator[Row]:
        table = source.table(self.table_name)
        find = getattr(table, "find_sorted_index", None)
        index = find(self.column) if find is not None else None
        if index is None:
            for row in table.rows():
                if self._matches(row.get(self.column)):
                    yield row if self.alias is None else _qualify_row(row, self.alias)
            return
        get = table.get
        tids = sorted(
            index.range(self.low, self.high, self.include_low, self.include_high)
        )
        for tid in tids:
            row = get(tid)
            if row is not None:
                yield row if self.alias is None else _qualify_row(row, self.alias)

    def base_tables(self) -> set[str]:
        return {self.table_name}

    def output_columns(self, source: TableProvider) -> set[str] | None:
        return _scan_columns(source, self.table_name, self.alias)

    def bounds_repr(self) -> str:
        lo = "(-inf" if self.low is None else ("[" if self.include_low else "(") + repr(self.low)
        hi = "+inf)" if self.high is None else repr(self.high) + ("]" if self.include_high else ")")
        return f"{lo}, {hi}"

    def __repr__(self) -> str:
        return (
            f"RangeIndexScan({self.table_name}.{self.column} in {self.bounds_repr()})"
        )


class RowSource(Plan):
    """Adapter exposing an in-memory row collection as a plan leaf.

    Used by delta propagation: the incremental maintenance algorithms
    (Section VI-B, citing Gupta-Mumick) re-run query fragments over delta
    rows instead of stored tables.
    """

    def __init__(self, rows: Iterable[Row], label: str = "<rows>") -> None:
        self._rows = list(rows)
        self.label = label

    def rows(self, source: TableProvider) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def output_columns(self, source: TableProvider) -> set[str] | None:
        out: set[str] = set()
        for row in self._rows:
            out.update(k for k in row if not k.startswith("__"))
        return out

    def __repr__(self) -> str:
        return f"RowSource({self.label}, n={len(self._rows)})"


class Select(Plan):
    """Selection: keep rows whose predicate evaluates to TRUE."""

    def __init__(self, child: Plan, predicate: Expression) -> None:
        self.child = child
        self.predicate = predicate

    def rows(self, source: TableProvider) -> Iterator[Row]:
        predicate = self.predicate
        for row in self.child.rows(source):
            if predicate.eval(row) is True:
                yield row

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_columns(self, source: TableProvider) -> set[str] | None:
        return self.child.output_columns(source)

    def __repr__(self) -> str:
        return f"Select({self.predicate!r}, {self.child!r})"


class Project(Plan):
    """Projection with computed items: ``[(output_name, expression), ...]``."""

    def __init__(self, child: Plan, items: Sequence[tuple[str, Expression]]) -> None:
        if not items:
            raise DatabaseError("projection needs at least one item")
        self.child = child
        self.items = list(items)

    def rows(self, source: TableProvider) -> Iterator[Row]:
        items = self.items
        for row in self.child.rows(source):
            yield {name: expr.eval(row) for name, expr in items}

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_columns(self, source: TableProvider) -> set[str] | None:
        return {name for name, _ in self.items}

    def __repr__(self) -> str:
        names = [name for name, _ in self.items]
        return f"Project({names}, {self.child!r})"


class KeepAll(Plan):
    """Identity projection that strips hidden engine fields.

    ``SELECT * FROM t`` compiles to this so users never see ``__tid__``
    unless they ask for it.
    """

    def __init__(self, child: Plan) -> None:
        self.child = child

    def rows(self, source: TableProvider) -> Iterator[Row]:
        for row in self.child.rows(source):
            yield {
                k: v
                for k, v in row.items()
                if not k.startswith("__") and "." not in k
            }

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_columns(self, source: TableProvider) -> set[str] | None:
        below = self.child.output_columns(source)
        if below is None:
            return None
        return {c for c in below if not c.startswith("__") and "." not in c}


class Product(Plan):
    """Cartesian product.  Right side is materialized once."""

    def __init__(self, left: Plan, right: Plan) -> None:
        self.left = left
        self.right = right

    def rows(self, source: TableProvider) -> Iterator[Row]:
        right_rows = self.right.to_list(source)
        for lrow in self.left.rows(source):
            for rrow in right_rows:
                yield {**lrow, **rrow}

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)


class HashJoin(Plan):
    """Equi-join implemented by building a hash table on the right input."""

    def __init__(
        self,
        left: Plan,
        right: Plan,
        left_on: str,
        right_on: str,
        how: str = "inner",
    ) -> None:
        if how not in ("inner", "left"):
            raise DatabaseError(f"unsupported join type {how!r}")
        self.left = left
        self.right = right
        self.left_on = left_on
        self.right_on = right_on
        self.how = how

    def rows(self, source: TableProvider) -> Iterator[Row]:
        buckets: dict[Any, list[Row]] = {}
        right_key = ColumnRef(self.right_on)
        right_cols: set[str] = set()
        for rrow in self.right.rows(source):
            key = right_key.eval(rrow)
            right_cols.update(k for k in rrow if not k.startswith("__"))
            if key is None:
                continue
            buckets.setdefault(key, []).append(rrow)
        if self.how == "left" and not right_cols:
            # Empty right input: derive padding columns from the right
            # plan's own output shape (works for subqueries/derived plans,
            # not just stored-table scans), falling back to the catalog.
            derived = self.right.output_columns(source)
            if derived:
                right_cols = {c for c in derived if not c.startswith("__")}
            else:
                right_cols = self._schema_columns(source)
        left_key = ColumnRef(self.left_on)
        null_pad = {c: None for c in right_cols}
        for lrow in self.left.rows(source):
            key = left_key.eval(lrow)
            matches = buckets.get(key, ()) if key is not None else ()
            if matches:
                for rrow in matches:
                    yield {**lrow, **rrow}
            elif self.how == "left":
                yield {**null_pad, **lrow}

    def _schema_columns(self, source: TableProvider) -> set[str]:
        """Right-side column names (plain + qualified) from the catalog."""
        child = self.right
        if not isinstance(child, (Scan, IndexScan, CompositeIndexScan, RangeIndexScan)):
            return set()
        try:
            schema = source.table(child.table_name).schema
        except UnknownTableError:
            # Unknown name -> no padding columns; genuinely broken
            # catalogs must not be silently flattened to an empty pad.
            return set()
        columns = set(schema.column_names)
        alias = getattr(child, "alias", None)
        if alias:
            columns |= {f"{alias}.{c}" for c in schema.column_names}
        return columns

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def output_columns(self, source: TableProvider) -> set[str] | None:
        left = self.left.output_columns(source)
        right = self.right.output_columns(source)
        if left is None or right is None:
            return None
        return left | right

    def __repr__(self) -> str:
        return (
            f"HashJoin({self.left!r} {self.left_on} = "
            f"{self.right_on} {self.right!r}, how={self.how})"
        )


class IndexNestedLoopJoin(Plan):
    """Equi-join probing the right table's hash index once per left row.

    Chosen by the planner when the outer (left) side is estimated to be
    much smaller than the inner table: it avoids materializing a hash
    table over the whole inner side.  Degrades to a HashJoin when the
    source cannot serve the index (isolation-filtered tables).
    """

    def __init__(
        self,
        left: Plan,
        right_table: str,
        left_on: str,
        right_on: str,
        right_column: str,
        right_alias: str | None = None,
        how: str = "inner",
    ) -> None:
        if how not in ("inner", "left"):
            raise DatabaseError(f"unsupported join type {how!r}")
        self.left = left
        self.right_table = right_table
        self.left_on = left_on
        self.right_on = right_on
        self.right_column = right_column  # unqualified index column
        self.right_alias = right_alias
        self.how = how

    def _hash_join(self) -> HashJoin:
        return HashJoin(
            self.left,
            Scan(self.right_table, alias=self.right_alias),
            self.left_on,
            self.right_on,
            how=self.how,
        )

    def rows(self, source: TableProvider) -> Iterator[Row]:
        table = source.table(self.right_table)
        find = getattr(table, "find_hash_index", None)
        index = find(self.right_column) if find is not None else None
        if index is None:
            yield from self._hash_join().rows(source)
            return
        left_key = ColumnRef(self.left_on)
        null_pad: Row = {}
        if self.how == "left":
            columns = _scan_columns(source, self.right_table, self.right_alias)
            null_pad = {c: None for c in (columns or ())}
        get = table.get
        alias = self.right_alias
        for lrow in self.left.rows(source):
            key = left_key.eval(lrow)
            matched = False
            if key is not None:
                for tid in sorted(index.lookup(key)):
                    rrow = get(tid)
                    if rrow is None:
                        continue
                    matched = True
                    if alias is not None:
                        rrow = _qualify_row(rrow, alias)
                    yield {**lrow, **rrow}
            if not matched and self.how == "left":
                yield {**null_pad, **lrow}

    def children(self) -> tuple[Plan, ...]:
        return (self.left,)

    def base_tables(self) -> set[str]:
        return self.left.base_tables() | {self.right_table}

    def output_columns(self, source: TableProvider) -> set[str] | None:
        left = self.left.output_columns(source)
        right = _scan_columns(source, self.right_table, self.right_alias)
        if left is None or right is None:
            return None
        return left | right

    def __repr__(self) -> str:
        return (
            f"IndexNestedLoopJoin({self.left!r} {self.left_on} = "
            f"{self.right_table}.{self.right_column}, how={self.how})"
        )


@dataclass(frozen=True)
class AggSpec:
    """One aggregate output: ``func([DISTINCT] arg) AS name``.

    ``func`` is one of COUNT, SUM, AVG, MIN, MAX; ``arg is None`` means
    ``COUNT(*)``.  With ``distinct=True`` duplicate argument values are
    folded once (``COUNT(DISTINCT x)`` and friends).
    """

    func: str
    arg: Expression | None
    name: str
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.func not in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
            raise DatabaseError(f"unknown aggregate {self.func!r}")
        if self.arg is None and self.func != "COUNT":
            raise DatabaseError(f"{self.func} requires an argument")
        if self.distinct and self.arg is None:
            raise DatabaseError("DISTINCT requires an aggregate argument")


class _AggState:
    """Running state for one aggregate within one group."""

    __slots__ = (
        "count",
        "total",
        "minimum",
        "maximum",
        "seen",
        "summable",
        "comparable",
    )

    def __init__(self, distinct: bool = False) -> None:
        self.count = 0
        self.total: Any = 0
        self.minimum: Any = None
        self.maximum: Any = None
        # _DedupSet so COUNT(DISTINCT x) survives unhashable cell values
        # (lists/dicts in ANY-typed columns) via its linear fallback.
        self.seen: "_DedupSet | None" = _DedupSet() if distinct else None
        self.summable = True
        self.comparable = True

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.seen is not None and not self.seen.add(value):
            return
        self.count += 1
        if self.summable:
            try:
                self.total += value
            except TypeError:
                # Non-numeric input poisons SUM/AVG for the whole group:
                # both yield NULL instead of a partial (wrong) total.
                self.summable = False
                self.total = None
        if self.comparable:
            try:
                if self.minimum is None or value < self.minimum:
                    self.minimum = value
                if self.maximum is None or value > self.maximum:
                    self.maximum = value
            except TypeError:
                # Mutually incomparable values (e.g. int vs str): MIN/MAX
                # have no defined answer for the group, so yield NULL.
                self.comparable = False
                self.minimum = None
                self.maximum = None

    def result(self, func: str) -> Any:
        if func == "COUNT":
            return self.count
        if self.count == 0:
            return None
        if func == "SUM":
            return self.total if self.summable else None
        if func == "AVG":
            return self.total / self.count if self.summable else None
        if func == "MIN":
            return self.minimum if self.comparable else None
        return self.maximum if self.comparable else None


class Aggregate(Plan):
    """GROUP BY + aggregates.  Empty ``group_by`` yields one global row."""

    def __init__(
        self,
        child: Plan,
        group_by: Sequence[str],
        aggregates: Sequence[AggSpec],
        having: Expression | None = None,
    ) -> None:
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        self.having = having

    def rows(self, source: TableProvider) -> Iterator[Row]:
        groups: dict[tuple[Any, ...], tuple[Row, list[_AggState], int]] = {}
        group_refs = [ColumnRef(g) for g in self.group_by]
        for row in self.child.rows(source):
            key = tuple(ref.eval(row) for ref in group_refs)
            entry = groups.get(key)
            if entry is None:
                entry = (
                    row,
                    [_AggState(s.distinct) for s in self.aggregates],
                    0,
                )
                groups[key] = entry
            first_row, states, star = entry
            groups[key] = (first_row, states, star + 1)
            for spec, state in zip(self.aggregates, states):
                if spec.arg is not None:
                    state.add(spec.arg.eval(row))
        if not groups and not self.group_by:
            # Global aggregate over an empty input still yields one row.
            groups[()] = ({}, [_AggState(s.distinct) for s in self.aggregates], 0)
        for key, (first_row, states, star) in groups.items():
            out: Row = {g: v for g, v in zip(self.group_by, key)}
            for spec, state in zip(self.aggregates, states):
                if spec.func == "COUNT" and spec.arg is None:
                    out[spec.name] = star
                else:
                    out[spec.name] = state.result(spec.func)
            if self.having is None or evaluate_predicate(self.having, out):
                yield out

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_columns(self, source: TableProvider) -> set[str] | None:
        return set(self.group_by) | {s.name for s in self.aggregates}


def sort_key_total(value: Any) -> tuple[Any, ...]:
    """Total, deterministic ordering key over heterogeneous cell values.

    Values are ranked by type class first -- NULL, numbers, strings,
    bytes, sequences, mappings, everything else -- then compared within
    the class, so a column holding both ints and strs (schema-less ANY
    columns) sorts deterministically instead of crashing on ``int < str``.
    Within a homogeneous comparable column the ordering is identical to
    plain value comparison, which keeps existing results byte-stable.
    The vectorized sort uses the same key, so both engines agree.
    """
    if value is None:
        return (0, 0)
    if isinstance(value, numbers.Number) and not isinstance(value, complex):
        # bool/int/float/Decimal/Fraction all inter-compare numerically.
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    if isinstance(value, bytes):
        return (3, value)
    if isinstance(value, (tuple, list)):
        return (4, [sort_key_total(v) for v in value])
    if isinstance(value, dict):
        return (5, sorted((str(k), sort_key_total(v)) for k, v in value.items()))
    return (6, type(value).__name__, repr(value))


class Sort(Plan):
    """ORDER BY.  NULLs sort first ascending, last descending.

    Ordering is total: mixed-type key columns rank by type class (via
    :func:`sort_key_total`) instead of raising ``TypeError``.
    """

    def __init__(self, child: Plan, keys: Sequence[tuple[str, bool]]) -> None:
        self.child = child
        self.keys = list(keys)

    def rows(self, source: TableProvider) -> Iterator[Row]:
        rows = self.child.to_list(source)
        # Stable multi-key sort: apply keys right-to-left.
        for name, ascending in reversed(self.keys):
            ref = ColumnRef(name)

            def sort_key(row: Row, ref: ColumnRef = ref) -> tuple[Any, ...]:
                return sort_key_total(ref.eval(row))

            rows.sort(key=sort_key, reverse=not ascending)
        return iter(rows)

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_columns(self, source: TableProvider) -> set[str] | None:
        return self.child.output_columns(source)


class Limit(Plan):
    """LIMIT/OFFSET."""

    def __init__(self, child: Plan, count: int, offset: int = 0) -> None:
        if count < 0 or offset < 0:
            raise DatabaseError("LIMIT/OFFSET must be non-negative")
        self.child = child
        self.count = count
        self.offset = offset

    def rows(self, source: TableProvider) -> Iterator[Row]:
        it = self.child.rows(source)
        for _ in range(self.offset):
            try:
                next(it)
            except StopIteration:
                return
        for i, row in enumerate(it):
            if i >= self.count:
                return
            yield row

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_columns(self, source: TableProvider) -> set[str] | None:
        return self.child.output_columns(source)


def _row_key(row: Row) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted((k, v) for k, v in row.items() if not k.startswith("__")))


class _DedupSet:
    """Set-semantics membership that tolerates unhashable keys.

    Hashable keys take the O(1) set path; a key whose hash raises
    ``TypeError`` (rows holding lists/dicts in ANY-typed columns) falls
    back to a linear equality scan over the unhashable tail.  Dedup is
    by ``==`` either way, matching what a plain set does for hashables.
    """

    __slots__ = ("_seen", "_linear")

    def __init__(self) -> None:
        self._seen: set[Any] = set()
        self._linear: list[Any] = []

    def add(self, key: Any) -> bool:
        """Record ``key``; returns True when it was not seen before."""
        try:
            if key in self._seen:
                return False
            self._seen.add(key)
            return True
        except TypeError:
            if key in self._linear:
                return False
            self._linear.append(key)
            return True

    def __contains__(self, key: Any) -> bool:
        try:
            return key in self._seen
        except TypeError:
            return key in self._linear

    def __len__(self) -> int:
        return len(self._seen) + len(self._linear)


class Distinct(Plan):
    """Duplicate elimination over visible columns."""

    def __init__(self, child: Plan) -> None:
        self.child = child

    def rows(self, source: TableProvider) -> Iterator[Row]:
        seen = _DedupSet()
        for row in self.child.rows(source):
            if seen.add(_row_key(row)):
                yield row

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_columns(self, source: TableProvider) -> set[str] | None:
        return self.child.output_columns(source)


class Union(Plan):
    """UNION (set) or UNION ALL (bag)."""

    def __init__(self, left: Plan, right: Plan, all: bool = False) -> None:
        self.left = left
        self.right = right
        self.all = all

    def rows(self, source: TableProvider) -> Iterator[Row]:
        if self.all:
            yield from self.left.rows(source)
            yield from self.right.rows(source)
            return
        seen = _DedupSet()
        for row in self.left.rows(source):
            if seen.add(_row_key(row)):
                yield row
        for row in self.right.rows(source):
            if seen.add(_row_key(row)):
                yield row

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def output_columns(self, source: TableProvider) -> set[str] | None:
        return self.left.output_columns(source)


class Difference(Plan):
    """Set difference (EXCEPT)."""

    def __init__(self, left: Plan, right: Plan) -> None:
        self.left = left
        self.right = right

    def rows(self, source: TableProvider) -> Iterator[Row]:
        exclude = _DedupSet()
        for r in self.right.rows(source):
            exclude.add(_row_key(r))
        seen = _DedupSet()
        for row in self.left.rows(source):
            key = _row_key(row)
            if key not in exclude and seen.add(key):
                yield row

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def output_columns(self, source: TableProvider) -> set[str] | None:
        return self.left.output_columns(source)


class MapRows(Plan):
    """Apply an arbitrary row transformation (procedure escape hatch)."""

    def __init__(self, child: Plan, fn: Callable[[Row], Row], label: str = "map") -> None:
        self.child = child
        self.fn = fn
        self.label = label

    def rows(self, source: TableProvider) -> Iterator[Row]:
        fn = self.fn
        for row in self.child.rows(source):
            yield fn(row)

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)


def plan_node_label(plan: Plan) -> str:
    """One operator's EXPLAIN label: type name plus operator detail.

    This is the exact text :func:`format_plan` puts on the operator's
    line (sans indentation and row suffix), shared with
    :func:`operator_rows` so plan-level and span-level views of the same
    query agree character for character.
    """
    custom = getattr(plan, "explain_label", None)
    if custom is not None:
        # Vectorized operators (repro.db.vector) label themselves; the
        # duck-typed hook keeps this module free of an import cycle.
        return custom
    label = type(plan).__name__
    detail = ""
    if isinstance(plan, Scan):
        detail = f" {plan.table_name}" + (f" AS {plan.alias}" if plan.alias else "")
    elif isinstance(plan, IndexScan):
        detail = f" {plan.table_name}.{plan.column} = {plan.value!r}"
    elif isinstance(plan, CompositeIndexScan):
        pairs = ", ".join(
            f"{c} = {v!r}" for c, v in zip(plan.columns, plan.values)
        )
        detail = f" {plan.table_name}: {pairs}"
    elif isinstance(plan, RangeIndexScan):
        detail = f" {plan.table_name}.{plan.column} in {plan.bounds_repr()}"
    elif isinstance(plan, Select):
        detail = f" {plan.predicate!r}"
    elif isinstance(plan, Project):
        detail = f" {[name for name, _ in plan.items]}"
    elif isinstance(plan, HashJoin):
        detail = f" {plan.left_on} = {plan.right_on} ({plan.how})"
    elif isinstance(plan, IndexNestedLoopJoin):
        detail = (
            f" {plan.left_on} = {plan.right_table}.{plan.right_column}"
            f" ({plan.how})"
        )
    elif isinstance(plan, Aggregate):
        aggs = [f"{s.func}({'DISTINCT ' if s.distinct else ''}...) AS {s.name}"
                for s in plan.aggregates]
        detail = f" group_by={plan.group_by} aggs={aggs}"
    elif isinstance(plan, Sort):
        detail = f" {plan.keys}"
    elif isinstance(plan, Limit):
        detail = f" {plan.count} offset {plan.offset}"
    elif isinstance(plan, Union):
        detail = " ALL" if plan.all else ""
    elif isinstance(plan, RowSource):
        detail = f" {plan.label}"
    return f"{label}{detail}"


def operator_rows(plan: Plan, counters: dict[int, int]) -> list[tuple[str, int]]:
    """``(label, rows)`` per operator, in :func:`format_plan` line order.

    The bridge between EXPLAIN ANALYZE and the tracing layer: executing
    an instrumented plan fills ``counters``; this flattens them into the
    same pre-order walk ``format_plan`` renders, so span attributes and
    the printed plan describe the operators identically.
    """
    out = [(plan_node_label(plan), counters.get(id(plan), 0))]
    for child in plan.children():
        out.extend(operator_rows(child, counters))
    return out


def format_plan(
    plan: Plan, indent: int = 0, counters: dict[int, int] | None = None
) -> str:
    """Render a plan tree, one operator per line (EXPLAIN output).

    When ``counters`` (from :func:`instrument_plan`) is given, each line is
    suffixed with ``(rows=N)`` -- the number of rows the operator produced
    during execution (EXPLAIN ANALYZE output).
    """
    pad = "  " * indent
    suffix = ""
    if counters is not None:
        suffix = f" (rows={counters.get(id(plan), 0)})"
    lines = [f"{pad}{plan_node_label(plan)}{suffix}"]
    for child in plan.children():
        lines.append(format_plan(child, indent + 1, counters))
    return "\n".join(lines)


class _Counted(Plan):
    """Wrapper that counts the rows an operator yields (EXPLAIN ANALYZE)."""

    def __init__(self, inner: Plan, original_id: int, counters: dict[int, int]) -> None:
        self.inner = inner
        self.original_id = original_id
        self.counters = counters

    def rows(self, source: TableProvider) -> Iterator[Row]:
        counters = self.counters
        key = self.original_id
        for row in self.inner.rows(source):
            counters[key] = counters.get(key, 0) + 1
            yield row

    def children(self) -> tuple[Plan, ...]:
        return self.inner.children()

    def base_tables(self) -> set[str]:
        return self.inner.base_tables()

    def output_columns(self, source: TableProvider) -> set[str] | None:
        return self.inner.output_columns(source)


def instrument_plan(plan: Plan) -> tuple[Plan, dict[int, int]]:
    """Wrap every operator of ``plan`` with a row counter.

    Returns ``(instrumented_plan, counters)``.  Executing the instrumented
    plan fills ``counters`` keyed by ``id(original_node)``, so the counts
    can be rendered back onto the *original* tree via
    ``format_plan(plan, counters=counters)``.  The original tree is left
    untouched (nodes are shallow-copied before their child links are
    rewritten).
    """
    counters: dict[int, int] = {}

    def wrap(node: Plan) -> Plan:
        attach = getattr(node, "attach_counters", None)
        if attach is not None:
            # Vectorized subtrees count rows chunk-wise inside their own
            # operators (keyed by the original node ids, so format_plan
            # on the untouched tree still lines up); the wrapper clone
            # only counts the subtree's final output.
            return _Counted(attach(counters), id(node), counters)
        clone = copy.copy(node)
        for attr in ("child", "left", "right"):
            sub = getattr(clone, attr, None)
            if isinstance(sub, Plan):
                setattr(clone, attr, wrap(sub))
        return _Counted(clone, id(node), counters)

    return wrap(plan), counters


#: Operators that reach rows through an index rather than a table scan.
_INDEXED_OPERATORS = (IndexScan, CompositeIndexScan, RangeIndexScan, IndexNestedLoopJoin)


def plan_access_kind(plan: Plan) -> str:
    """``"vectorized"``/``"routed"``/``"scan"`` access classification.

    ``"vectorized"`` when the plan executes on the columnar batch engine,
    ``"routed"`` when any operator uses an index, else ``"scan"``.  The
    observability layer tags every executed SELECT with this, so a
    metrics snapshot shows at a glance whether hot statements are being
    served by the vectorized engine, the router, or full scans.
    """
    stack: list[Plan] = [plan]
    while stack:
        node = stack.pop()
        if getattr(node, "engine", None) == "vectorized":
            return "vectorized"
        if isinstance(node, _INDEXED_OPERATORS):
            return "routed"
        stack.extend(node.children())
    return "scan"
