"""Statement and plan caching for the SQL fast path.

``Database.execute`` re-parsed every SQL string on every call; for the hot
statements of the sync/notification loops (Sections VI-C/VI-D run the same
handful of queries thousands of times) parsing and planning dominate the
cost of the actual row work.  Two LRU caches, both keyed on the raw SQL
text, remove that:

* the **statement cache** maps SQL text -> parsed AST.  ASTs are frozen
  dataclasses and depend only on the text, so this cache never needs
  invalidation.
* the **plan cache** maps SQL text -> optimized algebra plan.  Only
  *cachable* SELECTs are stored: no ``?`` parameters (bound to literals at
  plan time) and no ``IN (SELECT ...)`` subqueries (materialized to a data
  snapshot at plan time).  Plans name tables but resolve them at execution,
  so the cache is evicted wholesale on CREATE/DROP TABLE; index creation
  after caching leaves plans stale-but-correct (they keep their full-scan
  shape until evicted) because every routed leaf falls back gracefully.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

from .sql.ast import (
    SelectStmt,
    SqlBetween,
    SqlBinary,
    SqlCall,
    SqlExpr,
    SqlIn,
    SqlIsNull,
    SqlLike,
    SqlParam,
    SqlUnary,
)


class LRUCache:
    """Thread-safe least-recently-used cache with hit/miss accounting."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Any | None:
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def info(self) -> dict[str, int]:
        return {
            "size": len(self._data),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
        }


def _expr_cachable(expr: SqlExpr | None) -> bool:
    if expr is None:
        return True
    if isinstance(expr, SqlParam):
        return False
    if isinstance(expr, SqlIn):
        if expr.subquery is not None:
            return False
        return _expr_cachable(expr.operand) and all(
            _expr_cachable(v) for v in expr.values or ()
        )
    if isinstance(expr, SqlUnary):
        return _expr_cachable(expr.operand)
    if isinstance(expr, SqlBinary):
        return _expr_cachable(expr.left) and _expr_cachable(expr.right)
    if isinstance(expr, SqlIsNull):
        return _expr_cachable(expr.operand)
    if isinstance(expr, SqlBetween):
        return (
            _expr_cachable(expr.operand)
            and _expr_cachable(expr.low)
            and _expr_cachable(expr.high)
        )
    if isinstance(expr, SqlLike):
        return _expr_cachable(expr.operand) and _expr_cachable(expr.pattern)
    if isinstance(expr, SqlCall):
        return all(_expr_cachable(a) for a in expr.args)
    return True  # literals and column refs


def plan_cachable(stmt: SelectStmt) -> bool:
    """True when the compiled plan depends only on the SQL text.

    ``?`` parameters are baked into the plan as literals, and ``IN
    (SELECT ...)`` subqueries are materialized to a value-set snapshot at
    plan time -- both make the plan call-specific, so such statements are
    replanned on every execution.
    """
    exprs: list[SqlExpr | None] = [item.expr for item in stmt.items]
    exprs += [stmt.where, stmt.having, stmt.limit, stmt.offset]
    exprs += list(stmt.group_by)
    exprs += [order.expr for order in stmt.order_by]
    if not all(_expr_cachable(e) for e in exprs):
        return False
    if stmt.compound is not None and not plan_cachable(stmt.compound[1]):
        return False
    return True
