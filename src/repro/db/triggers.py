"""Statement-level triggers.

"EdiFlow compiles the UP (update propagation) statements into
statement-level triggers which it installs in the underlying DBMS"
(Section VI-B), and the R_D -> R_M synchronization protocol installs
"CREATE, UPDATE and DELETE triggers monitoring changes to the persistent
table" (Section VI-C).  This module is that trigger facility.

A trigger fires once per *statement*, after the statement completes,
receiving the full :class:`~repro.db.table.ChangeSet`.  Triggers may run
further statements against the database (the database re-enters through
the same public API); recursive firing is permitted but bounded by a
depth limit to catch accidental loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import DatabaseError
from ..obs.runtime import OBS
from .table import ChangeSet

#: Events a trigger can subscribe to.
EVENTS = ("insert", "update", "delete")

TriggerFn = Callable[[ChangeSet], None]


@dataclass
class Trigger:
    """One installed trigger."""

    name: str
    table: str
    events: tuple[str, ...]
    fn: TriggerFn
    enabled: bool = True

    def matches(self, change: ChangeSet) -> bool:
        if not self.enabled or change.table != self.table:
            return False
        ops = change.operations
        return any(event in ops for event in self.events)


class TriggerManager:
    """Registry and dispatcher for statement-level triggers."""

    #: Triggers may cascade (a trigger writes a table that has triggers);
    #: the Notification chain of Section VI-C is exactly two levels deep.
    #: Anything past this depth is almost certainly an unintended loop.
    MAX_DEPTH = 16

    def __init__(self) -> None:
        self._triggers: dict[str, Trigger] = {}
        self._by_table: dict[str, list[Trigger]] = {}
        self._depth = 0

    def create(
        self,
        name: str,
        table: str,
        events: str | tuple[str, ...],
        fn: TriggerFn,
    ) -> Trigger:
        """Install a trigger.  ``events`` is one of/a tuple of
        ``'insert' | 'update' | 'delete'``."""
        if name in self._triggers:
            raise DatabaseError(f"trigger {name!r} already exists")
        if isinstance(events, str):
            events = (events,)
        for event in events:
            if event not in EVENTS:
                raise DatabaseError(f"unknown trigger event {event!r}")
        trigger = Trigger(name=name, table=table, events=tuple(events), fn=fn)
        self._triggers[name] = trigger
        self._by_table.setdefault(table, []).append(trigger)
        return trigger

    def drop(self, name: str) -> None:
        trigger = self._triggers.pop(name, None)
        if trigger is None:
            raise DatabaseError(f"no trigger named {name!r}")
        self._by_table[trigger.table].remove(trigger)

    def drop_for_table(self, table: str) -> None:
        """Remove every trigger on ``table`` (used by DROP TABLE)."""
        for trigger in self._by_table.pop(table, []):
            self._triggers.pop(trigger.name, None)

    def enable(self, name: str, enabled: bool = True) -> None:
        try:
            self._triggers[name].enabled = enabled
        except KeyError:
            raise DatabaseError(f"no trigger named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._triggers)

    def fire(self, change: ChangeSet) -> None:
        """Dispatch a change set to every matching trigger."""
        if change.is_empty():
            return
        triggers = self._by_table.get(change.table)
        if not triggers:
            return
        if OBS.enabled:
            with OBS.tracer.span(
                "db.trigger", tags={"table": change.table, "triggers": len(triggers)}
            ) as span:
                self._fire(change, triggers)
            OBS.metrics.histogram("db.trigger_ms", table=change.table).observe(
                span.duration_ms
            )
            return
        self._fire(change, triggers)

    def _fire(self, change: ChangeSet, triggers: list[Trigger]) -> None:
        if self._depth >= self.MAX_DEPTH:
            raise DatabaseError(
                f"trigger cascade deeper than {self.MAX_DEPTH} on table "
                f"{change.table!r}; aborting to avoid an infinite loop"
            )
        self._depth += 1
        try:
            # Copy: a trigger may install/drop triggers while firing.
            for trigger in list(triggers):
                if trigger.matches(change):
                    trigger.fn(change)
        finally:
            self._depth -= 1
