"""Write-ahead log: append-only JSON-lines with per-record CRC framing.

The paper delegates durability to "a standard DBMS"; our embedded engine
earns it here.  Every committed transaction is framed as

    begin(txn) -> op(txn, ops=[...]) -> commit(txn, clock)

one record per line (the op record carries the commit's whole operation
list, so encoding cost is one JSON serialization per *commit*, not per
row), each line carrying a CRC-32 of its payload::

    <crc:08x> <compact-json>\\n

so recovery can detect *exactly* where a torn tail begins: the first
line whose CRC mismatches, whose JSON does not parse, or which lacks its
trailing newline marks the cut point, and everything after it is
discarded (:func:`read_wal` returns the byte offset to truncate at).
Records after the cut belong to the crash; records before it are intact
by construction.

Fsync policy decides when a commit is *durable*:

* ``"always"``  -- fsync after every commit record (no window; encode,
  write and fsync all happen on the committing thread).
* ``"interval"`` -- group commit with a dedicated log-writer thread:
  the committing thread only enqueues the records; the writer encodes,
  writes, flushes, and fsyncs when ``group_commits`` commits or
  ``group_interval_ms`` accumulate, whichever first.  Backpressure
  blocks commits once ``group_commits`` are in flight, so a crash --
  power loss *or* process kill -- loses at most that window.  Under
  crash injection the writer thread is not started and every step runs
  synchronously on the committing thread, keeping injection
  deterministic and its exceptions catchable.
* ``"never"``   -- encode + write + flush on the committing thread,
  fsync left to the OS page cache (a process kill loses nothing, a
  power loss may lose everything since the last checkpoint).

Crash points (see :mod:`repro.faults`) are declared at every boundary a
real process can die at: before a record is written (``wal.append``),
mid-record with only a prefix of its bytes on disk (``wal.append`` with
``torn_bytes``), after the write but before the policy fsync
(``wal.post_append``), and at the fsync itself (``wal.fsync``).  Plans
with ``power_loss=True`` additionally truncate the file back to the last
fsynced offset when they fire -- the page cache never hit the platter.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Optional

from ..errors import DatabaseError
from ..faults import CrashInjector
from ..obs.runtime import OBS

try:  # pragma: no cover - availability depends on the environment
    import orjson as _orjson

    # Keep the strict "refuses loudly" contract: orjson would otherwise
    # serialize datetimes/dataclasses that snapshots (stdlib json) reject.
    _ORJSON_OPTS = _orjson.OPT_PASSTHROUGH_DATETIME | _orjson.OPT_PASSTHROUGH_DATACLASS
except ImportError:  # pragma: no cover - exercised on bare containers
    _orjson = None  # type: ignore[assignment]
    _ORJSON_OPTS = 0

__all__ = [
    "FSYNC_ALWAYS",
    "FSYNC_INTERVAL",
    "FSYNC_NEVER",
    "WalRecord",
    "WriteAheadLog",
    "fsync_dir",
    "read_wal",
]

FSYNC_ALWAYS = "always"
FSYNC_INTERVAL = "interval"
FSYNC_NEVER = "never"
_POLICIES = (FSYNC_ALWAYS, FSYNC_INTERVAL, FSYNC_NEVER)

# Record kinds (single letters: the WAL is the hot write path).
KIND_BEGIN = "b"
KIND_OP = "o"
KIND_COMMIT = "c"
KIND_DDL = "d"

#: Queue sentinel marking a commit boundary for the log-writer thread.
_COMMIT = object()


def _as_database_error(exc: BaseException) -> DatabaseError:
    if isinstance(exc, DatabaseError):
        return exc
    return DatabaseError(f"WAL writer thread failed: {exc!r}")


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so a just-created/renamed entry survives power loss."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL record plus where it ends in the file."""

    payload: dict[str, Any]
    end_offset: int

    @property
    def kind(self) -> str:
        return self.payload["k"]


def encode_record(payload: dict[str, Any]) -> bytes:
    """Frame one record: CRC-32 of the compact JSON, space, JSON, newline.

    Serialization is the WAL's dominant CPU cost, so the C encoder
    (orjson, when present) does the bulk work; both produce the same
    compact UTF-8 JSON and either side can read the other's records.
    """
    data: Optional[bytes] = None
    if _orjson is not None:
        try:
            data = _orjson.dumps(payload, option=_ORJSON_OPTS)
        except TypeError:
            data = None  # legal-but-exotic values (e.g. big ints): stdlib rules
    if data is None:
        try:
            body = json.dumps(payload, separators=(",", ":"), ensure_ascii=False)
        except TypeError as exc:
            raise DatabaseError(
                f"WAL record holds a value that is not JSON-serializable: {exc}"
            ) from None
        data = body.encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(data), data)


def _decode_line(line: bytes) -> Optional[dict[str, Any]]:
    """Decode one framed line; None when the frame is damaged."""
    if len(line) < 10 or line[8:9] != b" " or not line.endswith(b"\n"):
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    data = line[9:-1]
    if zlib.crc32(data) != crc:
        return None
    try:
        payload = _orjson.loads(data) if _orjson is not None else json.loads(data)
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(payload, dict) or "k" not in payload:
        return None
    return payload


def read_wal(path: str | Path) -> tuple[list[WalRecord], int]:
    """Read every intact record of a WAL file.

    Returns ``(records, good_offset)`` where ``good_offset`` is the byte
    position of the first damaged record (file size when the log is
    clean).  Reading stops at the first bad-CRC, unparsable, or partial
    line -- everything beyond it is a torn tail.
    """
    records: list[WalRecord] = []
    offset = 0
    with open(path, "rb") as infile:
        for line in infile:
            payload = _decode_line(line)
            if payload is None:
                break
            offset += len(line)
            records.append(WalRecord(payload, offset))
    return records, offset


def truncate_torn_tail(path: str | Path, good_offset: int) -> int:
    """Cut a WAL file back to its last intact record.

    Returns the number of bytes removed.  fsyncs the file so the
    truncation itself is durable (a recovery that truncates and then
    crashes must not resurrect the tail).
    """
    size = os.path.getsize(path)
    if size <= good_offset:
        return 0
    fd = os.open(str(path), os.O_RDWR)
    try:
        os.ftruncate(fd, good_offset)
        os.fsync(fd)
    finally:
        os.close(fd)
    return size - good_offset


class WriteAheadLog:
    """Appender for one WAL segment file.

    Not thread-safe by itself -- the owning
    :class:`~repro.db.durability.DurabilityManager` serializes access.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: str = FSYNC_ALWAYS,
        group_commits: int = 8,
        group_interval_ms: float = 5.0,
        crash: Optional[CrashInjector] = None,
    ) -> None:
        if fsync not in _POLICIES:
            raise DatabaseError(
                f"unknown fsync policy {fsync!r} (expected one of {_POLICIES})"
            )
        self.path = Path(path)
        self.fsync_policy = fsync
        self.group_commits = max(1, group_commits)
        self.group_interval_ms = group_interval_ms
        self.crash = crash
        self._file = open(self.path, "ab")
        self._offset = self._file.tell()
        self._synced_offset = self._offset
        self._flushed_offset = self._offset
        self._unsynced_commits = 0
        self._last_sync = time.monotonic()
        self.closed = False
        # Counters (tests, benchmarks and the dashboard read these).
        self.appends = 0
        self.commits = 0
        self.syncs = 0
        self.bytes_written = 0
        # Group commit runs on a dedicated log-writer thread: committing
        # threads enqueue payloads and return; the writer owns encode,
        # write(2), flush and both fsync triggers.  Crash injection keeps
        # everything synchronous instead (the injector must fire on the
        # committing thread to be deterministic and catchable).
        self._sync_lock = threading.Lock()
        self._cv = threading.Condition()
        self._pending: deque[Any] = deque()
        self._pending_commits = 0
        self._stop = False
        self._writer_error: Optional[BaseException] = None
        self._writer: Optional[threading.Thread] = None
        if fsync == FSYNC_INTERVAL and crash is None:
            self._writer = threading.Thread(
                target=self._writer_loop, name="wal-writer", daemon=True
            )
            self._writer.start()

    # ------------------------------------------------------------------
    @property
    def offset(self) -> int:
        """Bytes written so far (buffered + durable)."""
        return self._offset

    @property
    def synced_offset(self) -> int:
        """Bytes known durable (covered by an fsync)."""
        return self._synced_offset

    # ------------------------------------------------------------------
    def _die(self, plan: Any) -> None:
        """Apply a crash plan's mechanics and raise the simulated death."""
        assert self.crash is not None
        self._file.flush()
        if plan.power_loss:
            # The page cache never reached the platter: everything past
            # the last fsync is gone.
            os.ftruncate(self._file.fileno(), self._synced_offset)
        self._file.close()
        self.closed = True
        raise self.crash.crash(plan)

    def _write(self, data: bytes) -> None:
        self._file.write(data)
        self._offset += len(data)
        self.bytes_written += len(data)
        self.appends += 1

    def append(self, payload: dict[str, Any]) -> None:
        """Append one record (no durability decision -- see :meth:`commit_point`)."""
        if self._writer is not None:
            # Log-writer mode: hand the payload over.  Payload leaves are
            # freshly-projected immutable scalars (see ``_columnar``), so
            # deferring the encode cannot observe later mutations.  No
            # wake-up here: every append is followed by a commit_point
            # (or DDL commit) that notifies once for the whole batch.
            with self._cv:
                self._pending.append(payload)
            return
        data = encode_record(payload)
        if self.crash is not None:
            plan = self.crash.check("wal.append")
            if plan is not None:
                if plan.torn_bytes is not None:
                    torn = data[: max(1, min(plan.torn_bytes, len(data) - 1))]
                    self._file.write(torn)
                self._die(plan)
        self._write(data)
        if self.crash is not None:
            plan = self.crash.check("wal.post_append")
            if plan is not None:
                self._die(plan)

    def commit_point(self) -> None:
        """A transaction just committed: make it durable per policy."""
        self.commits += 1
        if self._writer is not None:
            # Enqueue the commit boundary; block only when group_commits
            # are already in flight, so the loss window of a crash of ANY
            # kind stays bounded by the configured group.
            with self._cv:
                self._pending.append(_COMMIT)
                self._pending_commits += 1
                self._cv.notify_all()
                while (
                    self._pending_commits >= self.group_commits
                    and self._writer_error is None
                    and not self._stop
                ):
                    self._cv.wait(0.05)
                if self._writer_error is not None:
                    raise _as_database_error(self._writer_error)
            return
        # Hand the commit's records over to the OS: a *process* crash (as
        # opposed to power loss) must never lose committed data the engine
        # already handed over -- the same contract write(2) gives a DBMS.
        self._file.flush()
        self._flushed_offset = self._offset
        if self.fsync_policy == FSYNC_NEVER:
            return
        self._unsynced_commits += 1
        if self.fsync_policy == FSYNC_ALWAYS:
            self.sync()
            return
        # Group commit under crash injection: both triggers run
        # synchronously on the committing thread.
        elapsed_ms = (time.monotonic() - self._last_sync) * 1000.0
        if (
            self._unsynced_commits >= self.group_commits
            or elapsed_ms >= self.group_interval_ms
        ):
            self.sync()

    def drain(self) -> None:
        """Block until the log-writer thread has written everything queued."""
        if self._writer is None:
            return
        with self._cv:
            while self._pending and self._writer_error is None:
                self._cv.wait(0.05)
            if self._writer_error is not None:
                raise _as_database_error(self._writer_error)

    def sync(self) -> None:
        """fsync the segment (crash point ``wal.fsync`` sits here)."""
        if self.crash is not None:
            plan = self.crash.check("wal.fsync")
            if plan is not None:
                # The dropped-fsync fault: die *instead of* syncing.
                self._die(plan)
        self.drain()
        started = time.perf_counter()
        synced = False
        with self._sync_lock:
            if not self.closed and self._synced_offset != self._offset:
                self._file.flush()
                self._flushed_offset = self._offset
                os.fsync(self._file.fileno())
                self._synced_offset = self._offset
                self.syncs += 1
                synced = True
            self._unsynced_commits = 0
            self._last_sync = time.monotonic()
        if synced and OBS.enabled:
            OBS.metrics.counter("wal.fsyncs").inc()
            OBS.metrics.histogram("wal.sync_ms").observe(
                (time.perf_counter() - started) * 1000.0
            )

    def _writer_loop(self) -> None:
        """The log writer: encode, write, flush, and fsync per policy.

        Sole writer of the segment file while running -- committing
        threads never touch it, they enqueue through :meth:`append` /
        :meth:`commit_point` and are woken once their records are down.
        """
        interval_s = max(self.group_interval_ms, 1.0) / 1000.0
        while True:
            with self._cv:
                while not self._pending and not self._stop:
                    if not self._cv.wait(timeout=interval_s):
                        break  # idle: let the time trigger below run
                batch = list(self._pending)
            commits = 0
            try:
                for payload in batch:
                    if payload is _COMMIT:
                        commits += 1
                        self._unsynced_commits += 1
                    else:
                        self._write(encode_record(payload))
                if batch:
                    self._file.flush()
                    self._flushed_offset = self._offset
                elapsed_ms = (time.monotonic() - self._last_sync) * 1000.0
                if self._flushed_offset > self._synced_offset and (
                    self._unsynced_commits >= self.group_commits
                    or elapsed_ms >= self.group_interval_ms
                ):
                    self._fsync_from_writer()
            except BaseException as exc:  # surface on the next commit/drain
                with self._cv:
                    self._writer_error = exc
                    self._cv.notify_all()
                return
            with self._cv:
                for _ in batch:
                    self._pending.popleft()
                self._pending_commits -= commits
                self._cv.notify_all()
                if self._stop and not self._pending:
                    return

    def _fsync_from_writer(self) -> None:
        started = time.perf_counter()
        with self._sync_lock:
            if self.closed:
                return
            os.fsync(self._file.fileno())
            self._synced_offset = self._flushed_offset
            self._unsynced_commits = 0
            self._last_sync = time.monotonic()
            self.syncs += 1
        if OBS.enabled:
            OBS.metrics.counter("wal.fsyncs").inc()
            OBS.metrics.histogram("wal.sync_ms").observe(
                (time.perf_counter() - started) * 1000.0
            )

    def close(self) -> None:
        if self.closed:
            return
        if self._writer is not None:
            with self._cv:
                self._stop = True
                self._cv.notify_all()
            self._writer.join(timeout=10.0)
            self._writer = None
        if self.fsync_policy != FSYNC_NEVER:
            self.sync()
        else:
            self._file.flush()
        with self._sync_lock:
            self._file.close()
            self.closed = True

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog({self.path.name!r}, policy={self.fsync_policy}, "
            f"appends={self.appends}, commits={self.commits}, syncs={self.syncs})"
        )


# ----------------------------------------------------------------------
# Transaction grouping (used by recovery)
def committed_transactions(
    records: list[WalRecord],
) -> Iterator[tuple[int, list[dict[str, Any]]]]:
    """Group records into complete ``begin..commit`` transactions.

    Yields ``(commit_clock, ops)`` in commit order.  DDL records are
    auto-committed and yielded as single-op transactions.  A ``begin``
    without its ``commit`` (the crash's in-flight transaction) is
    dropped -- WAL recovery is redo-only over committed work.
    """
    open_txns: dict[int, list[dict[str, Any]]] = {}
    for record in records:
        payload = record.payload
        kind = payload["k"]
        if kind == KIND_BEGIN:
            open_txns[payload["x"]] = []
        elif kind == KIND_OP:
            ops = open_txns.get(payload["x"])
            if ops is not None:
                # The writer coalesces a whole commit's operations into
                # one record (one JSON encode per commit, not per row);
                # single-op records remain readable for hand-built logs.
                if "ops" in payload:
                    ops.extend(payload["ops"])
                else:
                    ops.append(payload)
        elif kind == KIND_COMMIT:
            ops = open_txns.pop(payload["x"], None)
            if ops is not None:
                yield payload.get("clk", 0), ops
        elif kind == KIND_DDL:
            yield payload.get("clk", 0), [payload]
