"""The embedded database facade.

:class:`Database` plays the role Oracle 11g / MySQL 5 play in the paper's
deployment (Section VI-D): persistent relations, a SQL interface,
statement-level triggers, and a logical clock stamping every tuple --
everything the EdiFlow layers above (workflow, propagation, isolation,
synchronization) require of "a standard DBMS".

All public methods are thread-safe behind one reentrant lock: the
synchronization server (Section VI-C) serves remote clients from threads.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from ..errors import DatabaseError, SchemaError, UnknownTableError
from ..obs.runtime import OBS
from .algebra import (
    Plan,
    format_plan,
    instrument_plan,
    operator_rows,
    plan_access_kind,
)
from .expression import Expression
from .plancache import LRUCache, plan_cachable
from .routing import matching_tids
from .schema import HIDDEN_FIELDS, TID, Column, ForeignKey, TableSchema
from .sql.ast import (
    CreateTableStmt,
    DeleteStmt,
    DropTableStmt,
    ExplainStmt,
    InsertStmt,
    SelectStmt,
    Statement,
    UpdateStmt,
)
from .sql.parser import parse
from .sql.planner import _Scope, lower_expr, plan_select
from .table import ChangeSet, Table
from .transactions import Transaction, TransactionContext
from .triggers import TriggerManager
from .types import type_from_name


class Result:
    """Outcome of one statement.

    For SELECT: ``rows`` holds the result (list of dicts).  For mutations:
    ``rowcount`` is the number of affected rows and ``rows`` is empty.
    """

    def __init__(self, rows: list[dict[str, Any]] | None = None, rowcount: int = 0) -> None:
        self.rows = rows if rows is not None else []
        self.rowcount = rowcount

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """First column of the first row (or None on empty results)."""
        if not self.rows:
            return None
        return next(iter(self.rows[0].values()))

    def column(self, name: str) -> list[Any]:
        return [row[name] for row in self.rows]


class Database:
    """An embedded, in-process relational database.

    Parameters
    ----------
    name:
        Purely informational label (shows up in repr and snapshots).
    """

    def __init__(self, name: str = "ediflow") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._triggers = TriggerManager()
        self._clock = 0
        self._lock = threading.RLock()
        self._current_transaction: Transaction | None = None
        self._trigger_counter = 0
        # Durability hooks (see repro.db.durability): commit hooks see
        # every committed statement batch *before* triggers fire; DDL
        # hooks see create/drop table.  Empty lists cost one truth test
        # per statement.
        self._commit_hooks: list[Callable[[list[ChangeSet]], None]] = []
        self._ddl_hooks: list[Callable[[str, TableSchema | None, str], None]] = []
        # SQL fast path: text -> AST (never invalidated) and text -> plan
        # (evicted on DDL); see repro.db.plancache for the cachability rules.
        self._statement_cache = LRUCache(capacity=512)
        self._plan_cache = LRUCache(capacity=256)
        # Vectorized execution (repro.db.vector).  "auto" lets the router
        # vectorize unrouted plans over tables of at least vector_min_rows
        # rows; "row"/"vector" force one engine; "oracle" runs both and
        # diffs (the row/vector equivalence oracle).
        self._engine_mode = "auto"
        self.vector_min_rows = 4096
        # Lineage capture (repro.lineage).  Off by default -- queries pay
        # nothing until enable_lineage() installs a manager.
        self._lineage: Any = None
        # Slow-path attributor (repro.obs.slowlog).  Off by default --
        # traced statements pay one attribute check until
        # enable_slowlog() installs a log.
        self._slowlog: Any = None

    # ------------------------------------------------------------------
    # Lineage
    @property
    def lineage(self) -> Any:
        """The installed :class:`~repro.lineage.manager.LineageManager`,
        or None when lineage capture is disabled (the default)."""
        return self._lineage

    def enable_lineage(
        self, sample: int = 256, store: Any = True
    ) -> Any:
        """Turn on tuple lineage capture; returns the manager.

        ``sample`` captures every Nth SELECT (deterministically); pass
        ``sample=1`` to capture everything.  ``store`` keeps the default
        :class:`~repro.lineage.store.LineageStore` persisting captures as
        ``sys_lineage_*`` tables in this database, ``store=False`` skips
        persistence, or pass a configured store instance.  Idempotent in
        the sense that calling it again replaces the manager (fresh
        counters, same tables).
        """
        from ..lineage.manager import LineageManager

        with self._lock:
            self._lineage = LineageManager(self, sample=sample, store=store)
            return self._lineage

    def disable_lineage(self) -> None:
        """Stop capturing lineage (sys_lineage_* tables are left as-is)."""
        with self._lock:
            self._lineage = None

    # ------------------------------------------------------------------
    # Slow-path attribution
    def slowlog(self) -> Any:
        """The installed :class:`~repro.obs.slowlog.SlowLog`, or None
        when slow-path capture is disabled (the default)."""
        return self._slowlog

    def enable_slowlog(self, budget_ms: float = 50.0, **kwargs: Any) -> Any:
        """Record over-budget statements/spans into ``sys_slowlog``.

        Creates a :class:`~repro.obs.slowlog.SlowLog` on this database:
        any traced statement slower than ``budget_ms`` is persisted with
        its EXPLAIN ANALYZE operator rows, and (via a tracer hook) any
        other over-budget span with its profile stacks.  Requires
        tracing (``obs.enable()``) to see statements.  Returns the log.
        """
        from ..obs.slowlog import SlowLog

        with self._lock:
            if self._slowlog is not None:
                return self._slowlog
            self._slowlog = SlowLog(self, budget_ms=budget_ms, **kwargs)
            return self._slowlog

    def disable_slowlog(self) -> None:
        """Stop slow-path capture (sys_slowlog rows are left as-is)."""
        with self._lock:
            log, self._slowlog = self._slowlog, None
        if log is not None:
            log.close()

    def query_lineage(
        self, sql: str, params: Sequence[Any] = ()
    ) -> tuple[list[dict[str, Any]], list[tuple]]:
        """Run a SELECT with unconditional lineage capture.

        Returns ``(rows, lineage)`` where ``lineage[i]`` is the tuple of
        ``(table, tid)`` pairs behind ``rows[i]``.  Requires
        :meth:`enable_lineage`.
        """
        if self._lineage is None:
            raise DatabaseError(
                "lineage capture is disabled; call enable_lineage() first"
            )
        with self._lock:
            plan = self.plan(sql, params)
            return self._lineage.capture(sql, plan)

    def backward_lineage(self, view_name: str, key: Any) -> set[tuple[str, Any]]:
        """Base ``(table, tid)`` pairs behind one output key of a
        lineage-enabled IVM view ("why is this group here")."""
        if self._lineage is None:
            raise DatabaseError(
                "lineage capture is disabled; call enable_lineage() first"
            )
        return self._lineage.backward(view_name, key)

    def forward_lineage(
        self, table: str, tids: Iterable[Any]
    ) -> dict[str, set[Any]]:
        """Which outputs of every lineage-enabled view do these base
        tuples feed ("where did this row go")."""
        if self._lineage is None:
            raise DatabaseError(
                "lineage capture is disabled; call enable_lineage() first"
            )
        return self._lineage.forward(table, tids)

    @property
    def engine_mode(self) -> str:
        return self._engine_mode

    def set_engine(self, mode: str) -> None:
        """Select the query engine: ``auto``, ``row``, ``vector``, ``oracle``.

        Cached plans keep the engine decision made when they were
        planned, so switching clears the plan cache.
        """
        if mode not in ("auto", "row", "vector", "oracle"):
            raise DatabaseError(
                f"unknown engine mode {mode!r}; "
                "expected auto, row, vector, or oracle"
            )
        with self._lock:
            self._engine_mode = mode
            self._plan_cache.clear()

    @property
    def lock(self) -> threading.RLock:
        """The database's global lock.

        Triggers fire while it is held, so any subsystem that must take
        both this lock and its own (the notification center's batching
        flush, the purge path) acquires *this one first* to keep a single
        global order and stay deadlock-free.
        """
        return self._lock

    # ------------------------------------------------------------------
    # Clock
    def now(self) -> int:
        """Current logical time (does not advance the clock)."""
        with self._lock:
            return self._clock

    def tick(self) -> int:
        """Advance and return the logical clock.

        Every row mutation calls this, so creation/update timestamps are
        unique and totally ordered -- the property time-based isolation
        (Section VI-A) depends on.
        """
        with self._lock:
            self._clock += 1
            return self._clock

    def restore_clock(self, value: int) -> None:
        """Reset the logical clock to a recovered value.

        Recovery code only (snapshot load, WAL replay): sets the clock so
        that post-restart timestamps continue strictly after every
        pre-crash timestamp.  Never lowers the clock below its current
        value -- time-based isolation depends on monotonicity.
        """
        with self._lock:
            self._clock = max(self._clock, int(value))

    # ------------------------------------------------------------------
    # Schema management
    def create_table(
        self,
        name: str,
        columns: Sequence[Column] | None = None,
        primary_key: str | None = None,
        unique: Iterable[Sequence[str] | str] = (),
        foreign_keys: Iterable[ForeignKey] = (),
        schema: TableSchema | None = None,
        if_not_exists: bool = False,
    ) -> Table:
        """Create a table from a schema or from column definitions."""
        with self._lock:
            if schema is None:
                if columns is None:
                    raise SchemaError("create_table needs columns or a schema")
                schema = TableSchema(
                    name,
                    columns,
                    primary_key=primary_key,
                    unique=unique,
                    foreign_keys=foreign_keys,
                )
            if schema.name in self._tables:
                if if_not_exists:
                    return self._tables[schema.name]
                raise SchemaError(f"table {schema.name!r} already exists")
            table = Table(schema, self.tick)
            self._tables[schema.name] = table
            self._plan_cache.clear()
            if self._ddl_hooks:
                self._notify_ddl("create", schema, schema.name)
            return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        with self._lock:
            if name not in self._tables:
                if if_exists:
                    return
                raise UnknownTableError(f"no table named {name!r}")
            del self._tables[name]
            self._triggers.drop_for_table(name)
            self._plan_cache.clear()
            if self._ddl_hooks:
                self._notify_ddl("drop", None, name)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------
    # Triggers
    def on(
        self,
        table: str,
        events: str | tuple[str, ...],
        fn: Callable[[ChangeSet], None],
        name: str | None = None,
    ) -> str:
        """Install a statement-level trigger; returns its name."""
        with self._lock:
            self.table(table)  # validate existence
            if name is None:
                self._trigger_counter += 1
                name = f"trg_{table}_{self._trigger_counter}"
            self._triggers.create(name, table, events, fn)
            return name

    def drop_trigger(self, name: str) -> None:
        with self._lock:
            self._triggers.drop(name)

    def trigger_names(self) -> list[str]:
        return self._triggers.names()

    # ------------------------------------------------------------------
    # Transactions
    def transaction(self) -> TransactionContext:
        """Context manager for an atomic statement batch."""
        return TransactionContext(self)

    def in_transaction(self) -> bool:
        return self._current_transaction is not None

    def _dispatch(self, change: ChangeSet) -> None:
        """Route a change set to triggers now, or defer to commit."""
        if change.is_empty():
            return
        transaction = self._current_transaction
        if transaction is not None:
            transaction.defer_triggers(change)
        else:
            # Auto-commit: the statement IS the transaction.  Durability
            # hooks run first -- write-ahead means the log records a
            # change before any downstream effect becomes observable.
            if self._commit_hooks:
                self._notify_commit([change])
            self._triggers.fire(change)

    # ------------------------------------------------------------------
    # Durability hooks
    def add_commit_hook(self, hook: Callable[[list[ChangeSet]], None]) -> None:
        """Register a hook receiving every committed statement batch.

        Hooks run once per commit -- with the single change set of an
        auto-committed statement, or with the ordered list of change
        sets of an explicit transaction -- *before* triggers fire.  A
        raising hook aborts the commit's downstream effects (triggers
        never observe a change the log refused), so hooks must only
        raise for genuine durability failures.
        """
        with self._lock:
            self._commit_hooks.append(hook)

    def remove_commit_hook(self, hook: Callable[[list[ChangeSet]], None]) -> None:
        with self._lock:
            if hook in self._commit_hooks:
                self._commit_hooks.remove(hook)

    def add_ddl_hook(self, hook: Callable[[str, TableSchema | None, str], None]) -> None:
        """Register a hook called as ``hook(op, schema, name)`` on DDL.

        ``op`` is ``"create"`` (schema given) or ``"drop"`` (schema None).
        """
        with self._lock:
            self._ddl_hooks.append(hook)

    def remove_ddl_hook(self, hook: Callable[[str, TableSchema | None, str], None]) -> None:
        with self._lock:
            if hook in self._ddl_hooks:
                self._ddl_hooks.remove(hook)

    def _notify_commit(self, changes: list[ChangeSet]) -> None:
        for hook in list(self._commit_hooks):
            hook(changes)

    def _notify_ddl(self, op: str, schema: TableSchema | None, name: str) -> None:
        for hook in list(self._ddl_hooks):
            hook(op, schema, name)

    # ------------------------------------------------------------------
    # Programmatic mutations
    def _write_span(self, op: str, table_name: str):
        """A ``db.write`` span for one mutation statement (obs enabled)."""
        return OBS.tracer.span("db.write", tags={"table": table_name, "op": op})

    def _record_write(self, op: str, table_name: str, span: Any, rows: int) -> None:
        span.set_tag("rows", rows)
        OBS.metrics.counter("db.writes", table=table_name, op=op).inc()

    def insert(self, table_name: str, values: Mapping[str, Any]) -> dict[str, Any]:
        """Insert one row; fires insert triggers; returns the stored row."""
        if OBS.enabled:
            with self._write_span("insert", table_name) as span:
                row = self._insert_impl(table_name, values)
                self._record_write("insert", table_name, span, 1)
                return row
        return self._insert_impl(table_name, values)

    def _insert_impl(self, table_name: str, values: Mapping[str, Any]) -> dict[str, Any]:
        with self._lock:
            table = self.table(table_name)
            row = table.insert(values)
            if self._current_transaction is not None:
                self._current_transaction.record_insert(table_name, row)
            change = ChangeSet(table_name, inserted=[row])
            self._dispatch(change)
            return row

    def insert_many(
        self, table_name: str, rows: Iterable[Mapping[str, Any]]
    ) -> list[dict[str, Any]]:
        """Insert many rows as ONE statement: triggers fire once.

        This is the write path the Figure-8 experiment exercises -- a batch
        of tuples arrives and a single statement-level trigger notification
        is emitted for the whole batch.
        """
        if OBS.enabled:
            with self._write_span("insert", table_name) as span:
                inserted = self._insert_many_impl(table_name, rows)
                self._record_write("insert", table_name, span, len(inserted))
                return inserted
        return self._insert_many_impl(table_name, rows)

    def _insert_many_impl(
        self, table_name: str, rows: Iterable[Mapping[str, Any]]
    ) -> list[dict[str, Any]]:
        with self._lock:
            table = self.table(table_name)
            inserted: list[dict[str, Any]] = []
            try:
                for values in rows:
                    inserted.append(table.insert(values))
            except Exception:
                # Statement atomicity: undo the partial batch.
                for row in reversed(inserted):
                    table.delete_row(row[TID])
                raise
            if self._current_transaction is not None:
                for row in inserted:
                    self._current_transaction.record_insert(table_name, row)
            self._dispatch(ChangeSet(table_name, inserted=inserted))
            return inserted

    def update(
        self,
        table_name: str,
        changes: Mapping[str, Any],
        where: Expression | None = None,
    ) -> int:
        """Update all rows matching ``where``; returns the affected count."""
        if OBS.enabled:
            with self._write_span("update", table_name) as span:
                count = self._update_impl(table_name, changes, where)
                self._record_write("update", table_name, span, count)
                return count
        return self._update_impl(table_name, changes, where)

    def _update_impl(
        self,
        table_name: str,
        changes: Mapping[str, Any],
        where: Expression | None = None,
    ) -> int:
        with self._lock:
            table = self.table(table_name)
            matching = matching_tids(table, where)
            updated: list[tuple[dict[str, Any], dict[str, Any]]] = []
            for tid in matching:
                before, after = table.update_row(tid, changes)
                updated.append((before, after))
                if self._current_transaction is not None:
                    self._current_transaction.record_update(table_name, before, after)
            self._dispatch(ChangeSet(table_name, updated=updated))
            return len(updated)

    def update_by_tid(
        self, table_name: str, tid: int, changes: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Point update through the tid (used by sync write-back)."""
        if OBS.enabled:
            with self._write_span("update", table_name) as span:
                after = self._update_by_tid_impl(table_name, tid, changes)
                self._record_write("update", table_name, span, 1)
                return after
        return self._update_by_tid_impl(table_name, tid, changes)

    def _update_by_tid_impl(
        self, table_name: str, tid: int, changes: Mapping[str, Any]
    ) -> dict[str, Any]:
        with self._lock:
            table = self.table(table_name)
            before, after = table.update_row(tid, changes)
            if self._current_transaction is not None:
                self._current_transaction.record_update(table_name, before, after)
            self._dispatch(ChangeSet(table_name, updated=[(before, after)]))
            return after

    def delete(self, table_name: str, where: Expression | None = None) -> int:
        """Delete all rows matching ``where``; returns the affected count."""
        if OBS.enabled:
            with self._write_span("delete", table_name) as span:
                count = self._delete_impl(table_name, where)
                self._record_write("delete", table_name, span, count)
                return count
        return self._delete_impl(table_name, where)

    def _delete_impl(self, table_name: str, where: Expression | None = None) -> int:
        with self._lock:
            table = self.table(table_name)
            matching = matching_tids(table, where)
            deleted: list[dict[str, Any]] = []
            for tid in matching:
                row = table.delete_row(tid)
                deleted.append(row)
                if self._current_transaction is not None:
                    self._current_transaction.record_delete(table_name, row)
            self._dispatch(ChangeSet(table_name, deleted=deleted))
            return len(deleted)

    def delete_by_tids(self, table_name: str, tids: Iterable[int]) -> int:
        """Delete specific rows by tid (used by deferred physical deletes)."""
        if OBS.enabled:
            with self._write_span("delete", table_name) as span:
                count = self._delete_by_tids_impl(table_name, tids)
                self._record_write("delete", table_name, span, count)
                return count
        return self._delete_by_tids_impl(table_name, tids)

    def _delete_by_tids_impl(self, table_name: str, tids: Iterable[int]) -> int:
        with self._lock:
            table = self.table(table_name)
            deleted: list[dict[str, Any]] = []
            for tid in tids:
                if tid in table:
                    row = table.delete_row(tid)
                    deleted.append(row)
                    if self._current_transaction is not None:
                        self._current_transaction.record_delete(table_name, row)
            self._dispatch(ChangeSet(table_name, deleted=deleted))
            return len(deleted)

    # ------------------------------------------------------------------
    # SQL interface
    def execute(self, sql: str, params: Sequence[Any] = ()) -> Result:
        """Parse and run one SQL statement.

        ``?`` placeholders are bound to ``params`` positionally.  Parsed
        ASTs are cached on the SQL text, so a hot statement tokenizes
        once; parameter-free SELECT plans are cached too (see
        :mod:`repro.db.plancache`).
        """
        if OBS.enabled:
            return self._execute_traced(sql, params)
        return self._execute_impl(sql, params)

    def _execute_impl(self, sql: str, params: Sequence[Any] = ()) -> Result:
        """The uninstrumented fast path (``execute`` minus observability).

        Benchmarks call this directly as the no-obs baseline when
        asserting the disabled-instrumentation overhead stays negligible.
        """
        statement = self._statement_cache.get(sql)
        if statement is None:
            statement = parse(sql)
            self._statement_cache.put(sql, statement)
        if isinstance(statement, SelectStmt):
            with self._lock:
                plan = self._plan_cache.get(sql)
                if plan is None:
                    plan = plan_select(statement, self, params)
                    if plan_cachable(statement):
                        self._plan_cache.put(sql, plan)
                if self._lineage is not None:
                    captured = self._lineage.maybe_capture(sql, plan)
                    if captured is not None:
                        return Result(rows=captured)
                return Result(rows=plan.to_list(self))
        return self.execute_statement(statement, params)

    def _execute_traced(self, sql: str, params: Sequence[Any]) -> Result:
        """``execute`` with per-statement spans and cache-hit counters."""
        metrics = OBS.metrics
        statement = self._statement_cache.get(sql)
        if statement is None:
            metrics.counter("db.statement_cache", result="miss").inc()
            statement = parse(sql)
            self._statement_cache.put(sql, statement)
        else:
            metrics.counter("db.statement_cache", result="hit").inc()
        kind = type(statement).__name__.removesuffix("Stmt").lower()
        select_plan = None
        with OBS.tracer.span("db.execute", tags={"kind": kind}) as span:
            if isinstance(statement, SelectStmt):
                with self._lock:
                    plan = self._plan_cache.get(sql)
                    if plan is None:
                        metrics.counter("db.plan_cache", result="miss").inc()
                        plan = plan_select(statement, self, params)
                        if plan_cachable(statement):
                            self._plan_cache.put(sql, plan)
                    else:
                        metrics.counter("db.plan_cache", result="hit").inc()
                    span.set_tag("access", plan_access_kind(plan))
                    select_plan = plan
                    captured = (
                        self._lineage.maybe_capture(sql, plan)
                        if self._lineage is not None
                        else None
                    )
                    if captured is not None:
                        span.set_tag("lineage", True)
                        result = Result(rows=captured)
                    else:
                        result = Result(rows=plan.to_list(self))
                    span.set_tag("rows", len(result.rows))
            else:
                result = self.execute_statement(statement, params)
                span.set_tag("rows", result.rowcount)
        metrics.counter("db.statements", kind=kind).inc()
        metrics.histogram("db.execute_ms", kind=kind).observe(span.duration_ms)
        if self._slowlog is not None:
            self._slowlog.maybe_record_query(sql, span, select_plan)
        return result

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[dict[str, Any]]:
        """Shorthand: run a SELECT and return its rows."""
        return self.execute(sql, params).rows

    def cache_info(self) -> dict[str, dict[str, int]]:
        """Hit/miss/size counters for the statement and plan caches."""
        return {
            "statements": self._statement_cache.info(),
            "plans": self._plan_cache.info(),
        }

    def install_metrics(self, registry: Any = None) -> None:
        """Expose this database's cache counters as live gauges.

        Folds :meth:`cache_info` into the observability registry (the
        process-wide one by default) as callable gauges evaluated at
        snapshot/dump time, labelled by database name.  Idempotent per
        (registry, db-name) because gauge registration replaces the
        series.
        """
        registry = registry if registry is not None else OBS.metrics

        def reader(section: str, field: str):
            return lambda: self.cache_info()[section][field]

        for section in ("statements", "plans"):
            for metric_field in ("hits", "misses", "size"):
                registry.gauge_fn(
                    f"db.cache.{section}.{metric_field}",
                    reader(section, metric_field),
                    db=self.name,
                )

    def execute_statement(self, statement: Statement, params: Sequence[Any] = ()) -> Result:
        with self._lock:
            if isinstance(statement, SelectStmt):
                plan = plan_select(statement, self, params)
                return Result(rows=plan.to_list(self))
            if isinstance(statement, ExplainStmt):
                return self._execute_explain(statement, params)
            if isinstance(statement, InsertStmt):
                return self._execute_insert(statement, params)
            if isinstance(statement, UpdateStmt):
                return self._execute_update(statement, params)
            if isinstance(statement, DeleteStmt):
                return self._execute_delete(statement, params)
            if isinstance(statement, CreateTableStmt):
                return self._execute_create(statement)
            if isinstance(statement, DropTableStmt):
                self.drop_table(statement.table, if_exists=statement.if_exists)
                return Result()
            raise DatabaseError(f"unsupported statement {statement!r}")

    def plan(self, sql: str, params: Sequence[Any] = ()) -> Plan:
        """Compile a SELECT to an algebra plan without executing it."""
        statement = parse(sql)
        if not isinstance(statement, SelectStmt):
            raise DatabaseError("plan() accepts SELECT statements only")
        return plan_select(statement, self, params)

    def explain(
        self, sql: str, params: Sequence[Any] = (), analyze: bool = False
    ) -> str:
        """Human-readable plan tree for a SELECT (EXPLAIN-style).

        With ``analyze=True`` the query is actually executed through row
        counters and each operator line gains a ``(rows=N)`` suffix --
        the SQL forms ``EXPLAIN SELECT ...`` / ``EXPLAIN ANALYZE SELECT
        ...`` return the same text one line per row.
        """
        plan = self.plan(sql, params)
        if not analyze:
            return format_plan(plan)
        instrumented, counters = instrument_plan(plan)
        if OBS.enabled:
            with OBS.tracer.span(
                "db.explain", tags={"analyze": True}
            ) as span:
                with self._lock:
                    for _ in instrumented.rows(self):
                        pass
                self._annotate_explain_span(span, plan, counters)
        else:
            with self._lock:
                for _ in instrumented.rows(self):
                    pass
        return format_plan(plan, counters=counters)

    @staticmethod
    def _annotate_explain_span(
        span: Any, plan: Plan, counters: dict[int, int]
    ) -> None:
        """Attach EXPLAIN ANALYZE operator counters to ``span``.

        One event per operator, in ``format_plan`` line order with the
        exact same labels, so the span-level view of the query agrees
        with the printed plan (and persists to ``sys_span_events``).
        """
        operators = operator_rows(plan, counters)
        span.set_tag("operators", len(operators))
        for index, (label, rows) in enumerate(operators):
            span.add_event(
                "explain.operator", index=index, operator=label, rows=rows
            )

    def _execute_explain(self, stmt: ExplainStmt, params: Sequence[Any]) -> Result:
        plan = plan_select(stmt.select, self, params)
        if stmt.lineage:
            return self._execute_explain_lineage(plan)
        if stmt.analyze:
            instrumented, counters = instrument_plan(plan)
            for _ in instrumented.rows(self):
                pass
            text = format_plan(plan, counters=counters)
            if OBS.enabled:
                # EXPLAIN ANALYZE through SQL runs inside the db.execute
                # statement span; hang the counters off it.
                span = OBS.tracer.current_span()
                if span is not None:
                    self._annotate_explain_span(span, plan, counters)
        else:
            text = format_plan(plan)
        return Result(rows=[{"plan": line} for line in text.splitlines()])

    def _execute_explain_lineage(self, plan: Plan) -> Result:
        """EXPLAIN LINEAGE: run the query with capture, one row per edge.

        Works whether or not :meth:`enable_lineage` has been called --
        capture here is explicit and unconditional, and nothing is
        persisted (use ``enable_lineage`` + sampling for that).
        """
        from ..lineage.capture import capture_plan

        rows, lins = capture_plan(plan, self)
        out: list[dict[str, Any]] = []
        for out_row, pairs in enumerate(lins):
            for src_table, src_tid in pairs:
                out.append(
                    {
                        "out_row": out_row,
                        "src_table": src_table,
                        "src_tid": src_tid,
                    }
                )
        return Result(rows=out)

    # -- statement executors --------------------------------------------
    def _execute_insert(self, stmt: InsertStmt, params: Sequence[Any]) -> Result:
        table = self.table(stmt.table)
        columns = stmt.columns or table.schema.column_names
        scope = _Scope(self, params)
        rows_to_insert: list[dict[str, Any]] = []
        if stmt.select is not None:
            select_rows = plan_select(stmt.select, self, params).to_list(self)
            for src in select_rows:
                if stmt.columns:
                    values = list(src.values())
                    if len(values) != len(columns):
                        raise DatabaseError(
                            "INSERT ... SELECT column count mismatch: "
                            f"{len(columns)} target(s), {len(values)} value(s)"
                        )
                    rows_to_insert.append(dict(zip(columns, values)))
                else:
                    rows_to_insert.append(
                        {k: v for k, v in src.items() if k not in HIDDEN_FIELDS}
                    )
        else:
            for value_tuple in stmt.rows:
                if len(value_tuple) != len(columns):
                    raise DatabaseError(
                        f"INSERT column count mismatch: {len(columns)} "
                        f"column(s), {len(value_tuple)} value(s)"
                    )
                rows_to_insert.append(
                    {
                        column: lower_expr(expr, scope).eval({})
                        for column, expr in zip(columns, value_tuple)
                    }
                )
        inserted = self.insert_many(stmt.table, rows_to_insert)
        return Result(rowcount=len(inserted))

    def _execute_update(self, stmt: UpdateStmt, params: Sequence[Any]) -> Result:
        # SET expressions evaluate per row, so this path cannot delegate
        # to update(); it gets the same db.write span independently.
        if OBS.enabled:
            with self._write_span("update", stmt.table) as span:
                result = self._execute_update_impl(stmt, params)
                self._record_write("update", stmt.table, span, result.rowcount)
                return result
        return self._execute_update_impl(stmt, params)

    def _execute_update_impl(self, stmt: UpdateStmt, params: Sequence[Any]) -> Result:
        scope = _Scope(self, params)
        scope.add_table(stmt.table, None)
        where = lower_expr(stmt.where, scope) if stmt.where is not None else None
        table = self.table(stmt.table)
        # Assignments may reference the row (SET x = x + 1), so evaluate
        # per row before applying.
        assignment_exprs = [
            (name, lower_expr(expr, scope)) for name, expr in stmt.assignments
        ]
        matching = matching_tids(table, where)
        updated: list[tuple[dict[str, Any], dict[str, Any]]] = []
        for tid in matching:
            row = table.get(tid)
            assert row is not None
            changes = {name: expr.eval(row) for name, expr in assignment_exprs}
            before, after = table.update_row(tid, changes)
            updated.append((before, after))
            if self._current_transaction is not None:
                self._current_transaction.record_update(stmt.table, before, after)
        self._dispatch(ChangeSet(stmt.table, updated=updated))
        return Result(rowcount=len(updated))

    def _execute_delete(self, stmt: DeleteStmt, params: Sequence[Any]) -> Result:
        scope = _Scope(self, params)
        scope.add_table(stmt.table, None)
        where = lower_expr(stmt.where, scope) if stmt.where is not None else None
        count = self.delete(stmt.table, where)
        return Result(rowcount=count)

    def _execute_create(self, stmt: CreateTableStmt) -> Result:
        columns: list[Column] = []
        primary_key: str | None = None
        unique: list[str] = []
        foreign_keys: list[ForeignKey] = []
        for cdef in stmt.columns:
            columns.append(
                Column(
                    name=cdef.name,
                    type=type_from_name(cdef.type_name),
                    nullable=not (cdef.not_null or cdef.primary_key),
                )
            )
            if cdef.primary_key:
                if primary_key is not None:
                    raise SchemaError("multiple PRIMARY KEY columns")
                primary_key = cdef.name
            if cdef.unique:
                unique.append(cdef.name)
            if cdef.references is not None:
                foreign_keys.append(
                    ForeignKey(cdef.name, cdef.references[0], cdef.references[1])
                )
        self.create_table(
            stmt.table,
            columns,
            primary_key=primary_key,
            unique=unique,
            foreign_keys=foreign_keys,
            if_not_exists=stmt.if_not_exists,
        )
        return Result()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Database {self.name!r} tables={self.table_names()}>"
