"""Embedded relational engine -- the DBMS substrate EdiFlow runs on.

Public surface::

    from repro.db import Database, Column, TableSchema, col
    from repro.db import INTEGER, FLOAT, TEXT, BOOLEAN, TIMESTAMP, ANY

    db = Database()
    db.execute("CREATE TABLE authors (id INTEGER PRIMARY KEY, name TEXT)")
    db.execute("INSERT INTO authors (id, name) VALUES (?, ?)", [1, "Noack"])
    rows = db.query("SELECT name FROM authors WHERE id = 1")
"""

from .algebra import (
    AggSpec,
    format_plan,
    instrument_plan,
    Aggregate,
    CompositeIndexScan,
    Difference,
    Distinct,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    KeepAll,
    Limit,
    MapRows,
    Plan,
    Product,
    Project,
    RangeIndexScan,
    RowSource,
    Scan,
    Select,
    Sort,
    Union,
    sort_key_total,
)
from .columnar import CHUNK_ROWS, ColumnStore, value_tag
from .database import Database, Result
from .durability import DurabilityManager, RecoveryInfo, open_durable, recover
from .plancache import LRUCache
from .routing import matching_tids, optimize_plan
from .expression import (
    ColumnRef,
    Expression,
    Lambda,
    Literal,
    col,
)
from .persistence import load_snapshot, save_snapshot
from .schema import CREATED_AT, TID, UPDATED_AT, Column, ForeignKey, TableSchema
from .table import ChangeSet, Table
from .types import ANY, BOOLEAN, FLOAT, INTEGER, TEXT, TIMESTAMP, ColumnType
from .vector import Batch, Unvectorizable, Vectorized, batch_rows, rows_to_batch, vectorize_plan
from .wal import (
    FSYNC_ALWAYS,
    FSYNC_INTERVAL,
    FSYNC_NEVER,
    WalRecord,
    WriteAheadLog,
    read_wal,
    truncate_torn_tail,
)

__all__ = [
    "ANY",
    "AggSpec",
    "Aggregate",
    "BOOLEAN",
    "Batch",
    "CHUNK_ROWS",
    "CREATED_AT",
    "ChangeSet",
    "Column",
    "ColumnStore",
    "ColumnRef",
    "ColumnType",
    "CompositeIndexScan",
    "Database",
    "Difference",
    "Distinct",
    "DurabilityManager",
    "Expression",
    "FLOAT",
    "FSYNC_ALWAYS",
    "FSYNC_INTERVAL",
    "FSYNC_NEVER",
    "ForeignKey",
    "HashJoin",
    "INTEGER",
    "IndexNestedLoopJoin",
    "IndexScan",
    "KeepAll",
    "LRUCache",
    "Lambda",
    "Limit",
    "Literal",
    "MapRows",
    "Plan",
    "Product",
    "Project",
    "RangeIndexScan",
    "RecoveryInfo",
    "Result",
    "RowSource",
    "Scan",
    "Select",
    "Sort",
    "TEXT",
    "TID",
    "TIMESTAMP",
    "Table",
    "TableSchema",
    "UPDATED_AT",
    "Union",
    "Unvectorizable",
    "Vectorized",
    "WalRecord",
    "WriteAheadLog",
    "batch_rows",
    "col",
    "format_plan",
    "instrument_plan",
    "load_snapshot",
    "matching_tids",
    "open_durable",
    "optimize_plan",
    "read_wal",
    "recover",
    "rows_to_batch",
    "save_snapshot",
    "sort_key_total",
    "truncate_torn_tail",
    "value_tag",
    "vectorize_plan",
]
