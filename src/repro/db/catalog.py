"""System catalog: schema metadata exposed as queryable tables.

Mirrors the paper's observation that "by issuing a query to the database,
one can determine which are the completed activity instances in process P"
(Section IV-B) -- all engine metadata is itself relational.  The catalog
is computed on demand from live state, so it can never drift.
"""

from __future__ import annotations

from typing import Any

from .database import Database


def catalog_tables(database: Database) -> list[dict[str, Any]]:
    """One row per table: name, column count, row count, primary key."""
    out = []
    for name in database.table_names():
        table = database.table(name)
        out.append(
            {
                "table_name": name,
                "column_count": len(table.schema.columns),
                "row_count": len(table),
                "primary_key": table.schema.primary_key,
            }
        )
    return out


def catalog_columns(database: Database) -> list[dict[str, Any]]:
    """One row per column of every table."""
    out = []
    for name in database.table_names():
        table = database.table(name)
        for position, column in enumerate(table.schema.columns):
            out.append(
                {
                    "table_name": name,
                    "column_name": column.name,
                    "position": position,
                    "type": column.type.name,
                    "nullable": column.nullable,
                    "default": column.default,
                }
            )
    return out


def catalog_foreign_keys(database: Database) -> list[dict[str, Any]]:
    """One row per declared foreign key."""
    out = []
    for name in database.table_names():
        table = database.table(name)
        for fk in table.schema.foreign_keys:
            out.append(
                {
                    "table_name": name,
                    "column_name": fk.column,
                    "ref_table": fk.ref_table,
                    "ref_column": fk.ref_column,
                }
            )
    return out


def catalog_triggers(database: Database) -> list[dict[str, Any]]:
    """One row per installed trigger."""
    manager = database._triggers
    out = []
    for name in manager.names():
        trigger = manager._triggers[name]
        out.append(
            {
                "trigger_name": name,
                "table_name": trigger.table,
                "events": ",".join(trigger.events),
                "enabled": trigger.enabled,
            }
        )
    return out
