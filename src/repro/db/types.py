"""Column types for the embedded relational engine.

The paper's process model is defined over "a set of atomic data types T"
(Section V).  We provide the small set a visual-analytics workload needs:
integers, floats, text, booleans, and timestamps.  Timestamps are logical
(monotonically increasing integers drawn from the database clock) so that
time-based isolation (Section VI-A) is deterministic and testable.

Each type knows how to validate and coerce Python values.  ``None`` is the
SQL NULL and is accepted by every type; nullability is enforced at the
schema level, not here.
"""

from __future__ import annotations

from typing import Any

from ..errors import TypeMismatchError


class ColumnType:
    """Base class for column types.

    Subclasses define :attr:`name` (the SQL spelling) and implement
    :meth:`coerce`, which either returns a value of the canonical Python
    representation or raises :class:`TypeMismatchError`.
    """

    name: str = "ANY"

    def coerce(self, value: Any) -> Any:
        """Return ``value`` converted to this type's canonical representation.

        ``None`` always passes through (NULL is typeless).
        """
        return value

    def validate(self, value: Any) -> Any:
        """Coerce ``value``, raising :class:`TypeMismatchError` on failure."""
        if value is None:
            return None
        return self.coerce(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class IntegerType(ColumnType):
    """64-bit-style integer column (Python int, unbounded)."""

    name = "INTEGER"

    def coerce(self, value: Any) -> int:
        if isinstance(value, bool):
            # bool is an int subclass but we refuse the silent confusion.
            raise TypeMismatchError(f"expected INTEGER, got boolean {value!r}")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value, 10)
            except ValueError:
                pass
        raise TypeMismatchError(f"expected INTEGER, got {value!r}")


class FloatType(ColumnType):
    """Double-precision float column."""

    name = "FLOAT"

    def coerce(self, value: Any) -> float:
        if isinstance(value, bool):
            raise TypeMismatchError(f"expected FLOAT, got boolean {value!r}")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                pass
        raise TypeMismatchError(f"expected FLOAT, got {value!r}")


class TextType(ColumnType):
    """Unicode string column."""

    name = "TEXT"

    def coerce(self, value: Any) -> str:
        if isinstance(value, str):
            return value
        raise TypeMismatchError(f"expected TEXT, got {value!r}")


class BooleanType(ColumnType):
    """Boolean column.  Accepts 0/1 integers for SQL friendliness."""

    name = "BOOLEAN"

    def coerce(self, value: Any) -> bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        raise TypeMismatchError(f"expected BOOLEAN, got {value!r}")


class TimestampType(ColumnType):
    """Logical timestamp column.

    Values are non-negative integers drawn from the database's logical
    clock (:meth:`repro.db.database.Database.now`).  Using logical time
    keeps the isolation and notification machinery fully deterministic.
    """

    name = "TIMESTAMP"

    def coerce(self, value: Any) -> int:
        if isinstance(value, bool):
            raise TypeMismatchError(f"expected TIMESTAMP, got boolean {value!r}")
        if isinstance(value, int):
            if value < 0:
                raise TypeMismatchError(f"timestamp must be >= 0, got {value!r}")
            return value
        raise TypeMismatchError(f"expected TIMESTAMP, got {value!r}")


class AnyType(ColumnType):
    """Untyped column; accepts any Python value.

    Used for opaque payloads carried by black-box procedures (Section V):
    the engine never interprets these values, so constraining them would
    only get in the way.
    """

    name = "ANY"


#: Canonical singletons -- schemas compare types by identity of class,
#: so sharing instances keeps things cheap and hashable.
INTEGER = IntegerType()
FLOAT = FloatType()
TEXT = TextType()
BOOLEAN = BooleanType()
TIMESTAMP = TimestampType()
ANY = AnyType()

_BY_NAME = {
    "INTEGER": INTEGER,
    "INT": INTEGER,
    "BIGINT": INTEGER,
    "FLOAT": FLOAT,
    "REAL": FLOAT,
    "DOUBLE": FLOAT,
    "TEXT": TEXT,
    "VARCHAR": TEXT,
    "STRING": TEXT,
    "BOOLEAN": BOOLEAN,
    "BOOL": BOOLEAN,
    "TIMESTAMP": TIMESTAMP,
    "ANY": ANY,
}


def type_from_name(name: str) -> ColumnType:
    """Resolve a SQL type name (case-insensitive) to a :class:`ColumnType`.

    Raises :class:`TypeMismatchError` for unknown names.
    """
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise TypeMismatchError(f"unknown column type {name!r}") from None


def infer_type(value: Any) -> ColumnType:
    """Infer a column type from a sample Python value.

    Used by ad-hoc table creation helpers (e.g. loading rows from an
    application generator without an explicit schema).
    """
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return TEXT
    return ANY
