"""Tuple-lineage capture for both query engines.

Backward lineage of an output row is the set of base tuples that
contributed to it -- represented as ``(table, tid)`` pairs.  Capture
happens *inside* the operators, where tids are nearly free (the Smoke
insight): the vectorized engine threads a ``lin`` sidecar array through
each :class:`~repro.db.vector.Batch`, and this module provides the
row-engine counterpart -- a recursive interpreter that mirrors every
:mod:`repro.db.algebra` operator's exact row construction while carrying
per-row lineage alongside.

Both paths feed :func:`capture_plan`, which canonicalizes each row's
lineage (sorted, deduplicated ``(table, tid)`` tuples) so the two
engines can be compared byte-for-byte by the lineage oracle tests.

Lineage semantics per operator:

* scans seed ``((table, tid),)`` from the hidden tid column;
* selection/projection/sort/limit pass lineage through unchanged;
* joins concatenate left and right lineage per emitted combo (an
  unmatched LEFT-join row keeps only its left lineage);
* aggregation unions the lineage of every input row of the group;
* DISTINCT/UNION keep the first occurrence's lineage (the duplicate
  that was actually emitted), matching which physical row survived;
* EXCEPT output rows come from the left input only, so they carry left
  lineage (the right side is why-*not* provenance, out of scope);
* RowSource and MapRows leaves contribute empty lineage (their rows do
  not come from a stored table).
"""

from __future__ import annotations

from typing import Any, Iterator

from ..db.algebra import (
    Aggregate,
    CompositeIndexScan,
    Difference,
    Distinct,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    KeepAll,
    Limit,
    MapRows,
    Plan,
    Product,
    Project,
    RangeIndexScan,
    Row,
    RowSource,
    Scan,
    Select,
    Sort,
    TableProvider,
    Union,
    _AggState,
    _DedupSet,
    _qualify_row,
    _row_key,
    _scan_columns,
    evaluate_predicate,
    sort_key_total,
)
from ..db.expression import ColumnRef
from ..db.schema import TID

#: One output row's lineage: ``(table, tid)`` pairs.
Lineage = tuple[tuple[str, Any], ...]

_EMPTY: Lineage = ()


def canon_lineage(pairs: Any) -> Lineage:
    """Canonical form: sorted, deduplicated ``(table, tid)`` tuple.

    Both engines accumulate lineage in whatever order their operators
    visit inputs; canonicalization makes the representations comparable
    byte-for-byte and gives set semantics (a base tuple contributes once
    however many operator paths touched it).
    """
    return tuple(sorted(set(pairs)))


def _capture_leaf(
    plan: Plan, table_name: str, source: TableProvider
) -> Iterator[tuple[Row, Lineage]]:
    """Scans yield internal rows that still carry ``__tid__`` (hidden
    keys survive alias qualification), so leaf lineage is one dict get."""
    for row in plan.rows(source):
        tid = row.get(TID)
        yield row, (((table_name, tid),) if tid is not None else _EMPTY)


def _capture_hash_join(
    plan: HashJoin, source: TableProvider
) -> Iterator[tuple[Row, Lineage]]:
    buckets: dict[Any, list[tuple[Row, Lineage]]] = {}
    right_key = ColumnRef(plan.right_on)
    right_cols: set[str] = set()
    for rrow, rlin in _capture(plan.right, source):
        key = right_key.eval(rrow)
        right_cols.update(k for k in rrow if not k.startswith("__"))
        if key is None:
            continue
        buckets.setdefault(key, []).append((rrow, rlin))
    if plan.how == "left" and not right_cols:
        derived = plan.right.output_columns(source)
        if derived:
            right_cols = {c for c in derived if not c.startswith("__")}
        else:
            right_cols = plan._schema_columns(source)
    left_key = ColumnRef(plan.left_on)
    null_pad = {c: None for c in right_cols}
    for lrow, llin in _capture(plan.left, source):
        key = left_key.eval(lrow)
        matches = buckets.get(key, ()) if key is not None else ()
        if matches:
            for rrow, rlin in matches:
                yield {**lrow, **rrow}, llin + rlin
        elif plan.how == "left":
            yield {**null_pad, **lrow}, llin


def _capture_index_join(
    plan: IndexNestedLoopJoin, source: TableProvider
) -> Iterator[tuple[Row, Lineage]]:
    table = source.table(plan.right_table)
    find = getattr(table, "find_hash_index", None)
    index = find(plan.right_column) if find is not None else None
    if index is None:
        yield from _capture_hash_join(plan._hash_join(), source)
        return
    left_key = ColumnRef(plan.left_on)
    null_pad: Row = {}
    if plan.how == "left":
        columns = _scan_columns(source, plan.right_table, plan.right_alias)
        null_pad = {c: None for c in (columns or ())}
    get = table.get
    alias = plan.right_alias
    rtable = plan.right_table
    for lrow, llin in _capture(plan.left, source):
        key = left_key.eval(lrow)
        matched = False
        if key is not None:
            for tid in sorted(index.lookup(key)):
                rrow = get(tid)
                if rrow is None:
                    continue
                matched = True
                if alias is not None:
                    rrow = _qualify_row(rrow, alias)
                yield {**lrow, **rrow}, llin + ((rtable, tid),)
        if not matched and plan.how == "left":
            yield {**null_pad, **lrow}, llin


def _capture_aggregate(
    plan: Aggregate, source: TableProvider
) -> Iterator[tuple[Row, Lineage]]:
    groups: dict[tuple[Any, ...], tuple[Row, list[_AggState], int]] = {}
    glins: dict[tuple[Any, ...], list[tuple[str, Any]]] = {}
    group_refs = [ColumnRef(g) for g in plan.group_by]
    for row, lin in _capture(plan.child, source):
        key = tuple(ref.eval(row) for ref in group_refs)
        entry = groups.get(key)
        if entry is None:
            entry = (row, [_AggState(s.distinct) for s in plan.aggregates], 0)
            groups[key] = entry
            glins[key] = []
        first_row, states, star = entry
        groups[key] = (first_row, states, star + 1)
        glins[key].extend(lin)
        for spec, state in zip(plan.aggregates, states):
            if spec.arg is not None:
                state.add(spec.arg.eval(row))
    if not groups and not plan.group_by:
        groups[()] = ({}, [_AggState(s.distinct) for s in plan.aggregates], 0)
        glins[()] = []
    for key, (first_row, states, star) in groups.items():
        out: Row = {g: v for g, v in zip(plan.group_by, key)}
        for spec, state in zip(plan.aggregates, states):
            if spec.func == "COUNT" and spec.arg is None:
                out[spec.name] = star
            else:
                out[spec.name] = state.result(spec.func)
        if plan.having is None or evaluate_predicate(plan.having, out):
            yield out, tuple(glins[key])


def _capture(
    plan: Plan, source: TableProvider
) -> Iterator[tuple[Row, Lineage]]:
    """Recursive row-engine capture: ``(row, lineage)`` per output row,
    in exactly the order (and with exactly the dicts) ``plan.rows()``
    would produce."""
    if isinstance(plan, (Scan, IndexScan, CompositeIndexScan, RangeIndexScan)):
        yield from _capture_leaf(plan, plan.table_name, source)
        return
    if isinstance(plan, RowSource):
        for row in plan.rows(source):
            yield row, _EMPTY
        return
    if isinstance(plan, Select):
        predicate = plan.predicate
        for row, lin in _capture(plan.child, source):
            if predicate.eval(row) is True:
                yield row, lin
        return
    if isinstance(plan, Project):
        items = plan.items
        for row, lin in _capture(plan.child, source):
            yield {name: expr.eval(row) for name, expr in items}, lin
        return
    if isinstance(plan, KeepAll):
        for row, lin in _capture(plan.child, source):
            yield {
                k: v
                for k, v in row.items()
                if not k.startswith("__") and "." not in k
            }, lin
        return
    if isinstance(plan, Product):
        right_pairs = list(_capture(plan.right, source))
        for lrow, llin in _capture(plan.left, source):
            for rrow, rlin in right_pairs:
                yield {**lrow, **rrow}, llin + rlin
        return
    if isinstance(plan, HashJoin):
        yield from _capture_hash_join(plan, source)
        return
    if isinstance(plan, IndexNestedLoopJoin):
        yield from _capture_index_join(plan, source)
        return
    if isinstance(plan, Aggregate):
        yield from _capture_aggregate(plan, source)
        return
    if isinstance(plan, Sort):
        pairs = list(_capture(plan.child, source))
        # Stable multi-key sort right-to-left over the row component,
        # identical to Sort.rows (lineage rides along untouched).
        for name, ascending in reversed(plan.keys):
            ref = ColumnRef(name)
            pairs.sort(
                key=lambda p, ref=ref: sort_key_total(ref.eval(p[0])),
                reverse=not ascending,
            )
        yield from pairs
        return
    if isinstance(plan, Limit):
        it = _capture(plan.child, source)
        for _ in range(plan.offset):
            try:
                next(it)
            except StopIteration:
                return
        for i, pair in enumerate(it):
            if i >= plan.count:
                return
            yield pair
        return
    if isinstance(plan, Distinct):
        seen = _DedupSet()
        for row, lin in _capture(plan.child, source):
            if seen.add(_row_key(row)):
                yield row, lin
        return
    if isinstance(plan, Union):
        if plan.all:
            yield from _capture(plan.left, source)
            yield from _capture(plan.right, source)
            return
        seen = _DedupSet()
        for row, lin in _capture(plan.left, source):
            if seen.add(_row_key(row)):
                yield row, lin
        for row, lin in _capture(plan.right, source):
            if seen.add(_row_key(row)):
                yield row, lin
        return
    if isinstance(plan, Difference):
        exclude = _DedupSet()
        for r in plan.right.rows(source):
            exclude.add(_row_key(r))
        seen = _DedupSet()
        for row, lin in _capture(plan.left, source):
            key = _row_key(row)
            if key not in exclude and seen.add(key):
                yield row, lin
        return
    if isinstance(plan, MapRows):
        fn = plan.fn
        for row, lin in _capture(plan.child, source):
            yield fn(row), lin
        return
    # Unknown operator (custom Plan subclass): rows are still correct,
    # lineage degrades to empty rather than guessing.
    for row in plan.rows(source):
        yield row, _EMPTY


def row_capture(
    plan: Plan, source: TableProvider
) -> tuple[list[Row], list[Lineage]]:
    """Execute ``plan`` on the row engine with per-row lineage capture.

    Returns ``(rows, lineages)`` in lockstep; lineages are raw
    accumulation order (callers canonicalize via :func:`canon_lineage`).
    """
    rows: list[Row] = []
    lins: list[Lineage] = []
    for row, lin in _capture(plan, source):
        rows.append(row)
        lins.append(lin)
    return rows, lins


def capture_plan(
    plan: Plan, source: TableProvider
) -> tuple[list[Row], list[Lineage]]:
    """Execute ``plan`` with lineage capture on whichever engine it targets.

    A :class:`~repro.db.vector.Vectorized` plan runs its batch pipeline
    with the ``lin`` sidecar enabled (falling back to the row capture
    interpreter exactly where ``to_list`` would fall back); anything else
    takes the row interpreter.  Lineage comes back canonicalized.
    """
    to_list_lineage = getattr(plan, "to_list_lineage", None)
    if to_list_lineage is not None:
        rows, lins = to_list_lineage(source)
    else:
        rows, lins = row_capture(plan, source)
    return rows, [canon_lineage(lin) for lin in lins]
