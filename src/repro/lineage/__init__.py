"""Fine-grained tuple lineage: capture, storage, and provenance queries.

Backward lineage ("why is this output row here") is captured inside the
query operators of both engines -- tid sidecar arrays in the vectorized
batches, a mirroring interpreter on the row engine -- and persisted as
queryable ``sys_lineage_*`` system tables.  Incrementally maintained
views keep a live bidirectional lineage index, which powers forward
lineage ("which outputs does this base tuple feed"): cross-view
brushing-and-linking and the dashboard's "why is this point here" panel
are both lineage queries over that index.
"""

from .brushing import CrossViewLinker
from .capture import Lineage, canon_lineage, capture_plan, row_capture
from .manager import LineageManager
from .store import (
    LINEAGE_TABLES,
    SYS_LINEAGE_EDGES,
    SYS_LINEAGE_QUERIES,
    LineageStore,
)
from .views import ViewLineage

__all__ = [
    "CrossViewLinker",
    "Lineage",
    "LineageManager",
    "LineageStore",
    "LINEAGE_TABLES",
    "SYS_LINEAGE_EDGES",
    "SYS_LINEAGE_QUERIES",
    "ViewLineage",
    "canon_lineage",
    "capture_plan",
    "row_capture",
]
