"""Cross-view brushing-and-linking as a forward-lineage query.

The paper's visual analytics loop needs linked selections: brushing a set
of marks in one view highlights the *related* marks in every other view.
With per-view lineage indexes this is a pure provenance query -- no
per-chart join logic:

1. map the brushed ``obj_ids`` back to base-table tids (the brushed
   component is bound to a base table, typically the table its marks were
   built from);
2. ``LineageManager.forward(table, tids)`` asks every lineage-enabled
   view which of its output groups those base tuples feed;
3. map each view's output keys to the obj_ids of the component rendering
   it, and flip their ``selected`` flags in the
   :class:`~repro.vis.attributes.VisualAttributesStore`.

The store's reactive machinery then propagates the highlight to every
subscribed renderer, exactly as if the user had clicked each mark.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from ..db.schema import TID
from ..errors import LineageError


def _default_view_key(key: Any) -> Any:
    """Unwrap 1-tuple group keys: views keyed on one column render marks
    whose obj_id is that column's value, not a tuple wrapping it."""
    if isinstance(key, tuple) and len(key) == 1:
        return key[0]
    return key


class CrossViewLinker:
    """Routes brushed selections across components via forward lineage.

    Components are bound either to a **base table** (brush *sources*: their
    obj_ids identify base rows via a key column) or to a **lineage-enabled
    view** (brush *targets*: their obj_ids are derived from the view's
    group keys).  :meth:`brush` takes a selection on a table-bound
    component and returns -- after updating the visual attributes store --
    the obj_ids now selected on every linked component.
    """

    def __init__(self, database: Any, store: Any) -> None:
        manager = getattr(database, "lineage", None)
        if manager is None:
            raise LineageError(
                "cross-view brushing needs lineage enabled; call "
                "Database.enable_lineage() first"
            )
        self.database = database
        self.manager = manager
        self.store = store
        self._tables: dict[str, tuple[str, str]] = {}
        self._views: dict[str, tuple[str, Callable[[Any], Any]]] = {}

    # ------------------------------------------------------------------
    def bind_table(self, component_id: str, table: str, key: str = "id") -> None:
        """Bind a component whose marks are rows of ``table``; ``key`` is
        the column whose value is the mark's obj_id."""
        self._tables[component_id] = (table, key)

    def bind_view(
        self,
        component_id: str,
        view_name: str,
        key: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        """Bind a component rendering a lineage-enabled view; ``key`` maps
        a view output key to that component's obj_id (default unwraps
        1-tuples)."""
        self.manager.view(view_name)  # raises LineageError if unknown
        self._views[component_id] = (view_name, key or _default_view_key)

    def bound_components(self) -> list[str]:
        return sorted(self._tables) + sorted(self._views)

    # ------------------------------------------------------------------
    def _tids_for(self, table: str, key: str, obj_ids: Iterable[Any]) -> list[Any]:
        wanted = set(obj_ids)
        tids = []
        for row in self.database.table(table).rows():
            if row.get(key) in wanted:
                tids.append(row[TID])
        return tids

    def brush(
        self, source_component: str, obj_ids: Iterable[Any]
    ) -> dict[str, list[Any]]:
        """Select ``obj_ids`` on ``source_component`` and propagate the
        selection to every view-bound component via forward lineage.

        Returns ``{component_id: [selected obj_ids]}`` for every component
        the brush touched (the source included).
        """
        try:
            table, key = self._tables[source_component]
        except KeyError:
            raise LineageError(
                f"component {source_component!r} is not table-bound "
                f"(bound: {self.bound_components()})"
            ) from None
        obj_ids = list(obj_ids)
        selected: dict[str, list[Any]] = {}
        self.store.select(source_component, obj_ids)
        selected[source_component] = sorted(obj_ids, key=repr)
        tids = self._tids_for(table, key, obj_ids)
        fwd = self.manager.forward(table, tids)
        for cid, (view_name, key_fn) in self._views.items():
            objs = sorted((key_fn(k) for k in fwd.get(view_name, ())), key=repr)
            if objs:
                self.store.select(cid, objs)
            selected[cid] = objs
        return selected

    def clear(self) -> dict[str, int]:
        """Deselect everything on every bound component."""
        out = {}
        for cid in self.bound_components():
            ids = [
                item.obj_id
                for item in self.store.read(cid)
                if getattr(item, "selected", False)
            ]
            out[cid] = self.store.select(cid, ids, selected=False) if ids else 0
        return out
