"""Bidirectional lineage index for incrementally maintained views.

An IVM view under lineage tracking records, for every output key, the
multiset of base sources (``(table, tid)`` pairs) that currently
contribute to it.  The index is counted so incremental delta application
composes: inserting a contribution increments, deleting decrements, and
a source disappears from the index exactly when its last contribution is
retracted -- after any interleaving of recomputes and deltas the index
equals what a full recompute would build.

``backward(key)`` answers "why is this output here" (contributing base
tuples); ``forward(src)`` answers "which outputs does this base tuple
feed" (the brushing-and-linking direction).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Hashable, Iterable

Source = tuple[str, Any]


class ViewLineage:
    """Counted many-to-many index between view output keys and sources."""

    __slots__ = ("_by_key", "_by_src")

    def __init__(self) -> None:
        self._by_key: dict[Hashable, Counter] = {}
        self._by_src: dict[Source, Counter] = {}

    def clear(self) -> None:
        self._by_key.clear()
        self._by_src.clear()

    def add(self, key: Hashable, sources: Iterable[Source]) -> None:
        """Record one output contribution of ``sources`` under ``key``."""
        fwd = self._by_key.get(key)
        if fwd is None:
            fwd = self._by_key[key] = Counter()
        for src in sources:
            fwd[src] += 1
            back = self._by_src.get(src)
            if back is None:
                back = self._by_src[src] = Counter()
            back[key] += 1

    def remove(self, key: Hashable, sources: Iterable[Source]) -> None:
        """Retract one contribution previously recorded with :meth:`add`.

        Unknown keys/sources are ignored rather than raised: a view whose
        lineage tracking was enabled mid-life legitimately sees deletes
        for contributions recorded before tracking started.
        """
        fwd = self._by_key.get(key)
        for src in sources:
            if fwd is not None and fwd.get(src, 0) > 0:
                fwd[src] -= 1
                if not fwd[src]:
                    del fwd[src]
            back = self._by_src.get(src)
            if back is not None and back.get(key, 0) > 0:
                back[key] -= 1
                if not back[key]:
                    del back[key]
                if not back:
                    del self._by_src[src]
        if fwd is not None and not fwd:
            del self._by_key[key]

    def backward(self, key: Hashable) -> set[Source]:
        """Base ``(table, tid)`` sources currently feeding ``key``."""
        fwd = self._by_key.get(key)
        return set(fwd) if fwd else set()

    def forward(self, src: Source) -> set[Hashable]:
        """Output keys the base tuple ``src`` currently contributes to."""
        back = self._by_src.get(src)
        return set(back) if back else set()

    def forward_many(self, srcs: Iterable[Source]) -> set[Hashable]:
        out: set[Hashable] = set()
        for src in srcs:
            out |= self.forward(src)
        return out

    def keys(self) -> set[Hashable]:
        return set(self._by_key)

    def sources(self) -> set[Source]:
        return set(self._by_src)

    def __len__(self) -> int:
        return len(self._by_key)
