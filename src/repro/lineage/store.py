"""Queryable lineage system tables, following the TelemetrySink pattern.

Captured query lineage is persisted into two system tables so provenance
is itself a relation -- queryable, joinable, watchable through the same
machinery as any other table:

``sys_lineage_queries``
    one row per recorded capture: ``query_id`` (monotonic), logical
    timestamp, SQL text, executing engine, output row count, edge count.
``sys_lineage_edges``
    one row per (output row, base tuple) edge: ``query_id``, ``out_row``
    (0-based output position), ``src_table``, ``src_tid``.

Guards mirror the telemetry sink's:

* **recursion guard** -- a capture whose plan reads any ``sys_*`` table
  (the lineage tables themselves, telemetry tables, a dashboard
  refreshing its mirrors) is never recorded; recording it would make
  every provenance query spawn provenance of its own.  Skips are counted
  in ``guard_skipped``.
* **bounded retention** -- only the most recent ``retention`` recorded
  queries are kept; older query rows and their edges are deleted on the
  way in, so the tables stay bounded on long-running workloads.
* **edge cap** -- a single capture contributes at most
  ``max_edges_per_query`` edges (oldest output rows first); truncation
  is flagged on the query row rather than silently dropped.

Deterministic *query* sampling (capture every Nth SELECT) lives in
:class:`~repro.lineage.manager.LineageManager`, which decides what to
capture; the store only persists what it is handed.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Optional

from ..db.database import Database
from ..db.expression import col
from ..db.schema import Column
from ..db.types import ANY, INTEGER, TEXT
from ..obs.runtime import OBS

__all__ = [
    "SYS_LINEAGE_EDGES",
    "SYS_LINEAGE_QUERIES",
    "LINEAGE_TABLES",
    "LineageStore",
]

SYS_LINEAGE_QUERIES = "sys_lineage_queries"
SYS_LINEAGE_EDGES = "sys_lineage_edges"

LINEAGE_TABLES = (SYS_LINEAGE_QUERIES, SYS_LINEAGE_EDGES)


class LineageStore:
    """Persists captured lineage as bounded, guarded system tables.

    Parameters
    ----------
    database:
        Where the lineage tables live.  Typically the workload database
        itself (lineage next to the data it describes); a dedicated
        database also works and keeps lineage writes off the workload's
        trigger path.
    retention:
        Keep at most this many recent recorded queries (default 64).
    max_edges_per_query:
        Edge cap per recorded capture (default 1000 -- keeps the
        sampled in-band write small and the edges table bounded at
        ``retention * max_edges_per_query`` rows).
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        retention: int = 64,
        max_edges_per_query: int = 1_000,
    ) -> None:
        if retention < 1:
            raise ValueError(f"retention must be >= 1, got {retention}")
        if max_edges_per_query < 1:
            raise ValueError(
                f"max_edges_per_query must be >= 1, got {max_edges_per_query}"
            )
        self.database = database if database is not None else Database("lineage")
        self.retention = retention
        self.max_edges_per_query = max_edges_per_query
        self._install_schema()
        self._next_query_id = 1
        self._recorded: deque[int] = deque()
        # Lifetime counters (tests and the dashboard read these).
        self.queries_stored = 0
        self.edges_stored = 0
        self.guard_skipped = 0
        self.truncated = 0
        self.pruned = 0

    def _install_schema(self) -> None:
        db = self.database
        if not db.has_table(SYS_LINEAGE_QUERIES):
            db.create_table(
                SYS_LINEAGE_QUERIES,
                [
                    Column("query_id", INTEGER, nullable=False),
                    Column("ts", INTEGER, nullable=False),
                    Column("sql", TEXT, nullable=False),
                    Column("engine", TEXT, nullable=False),
                    Column("rows", INTEGER, nullable=False),
                    Column("edges", INTEGER, nullable=False),
                    Column("truncated", INTEGER, nullable=False),
                ],
            )
            db.table(SYS_LINEAGE_QUERIES).create_index(
                "ix_sys_lineage_queries_id", ("query_id",), sorted=True
            )
        if not db.has_table(SYS_LINEAGE_EDGES):
            db.create_table(
                SYS_LINEAGE_EDGES,
                [
                    Column("query_id", INTEGER, nullable=False),
                    Column("out_row", INTEGER, nullable=False),
                    Column("src_table", TEXT, nullable=False),
                    Column("src_tid", ANY, nullable=False),
                ],
            )
            table = db.table(SYS_LINEAGE_EDGES)
            table.create_index("ix_sys_lineage_edges_query", ("query_id",))
            table.create_index("ix_sys_lineage_edges_table", ("src_table",))

    # ------------------------------------------------------------------
    @staticmethod
    def guarded(base_tables: Iterable[str]) -> bool:
        """True when a plan over ``base_tables`` must not be recorded."""
        return any(name.startswith("sys_") for name in base_tables)

    def record(
        self,
        sql: str,
        engine: str,
        lins: list[tuple],
        base_tables: Iterable[str],
    ) -> Optional[int]:
        """Persist one capture; returns its query_id, or None when guarded.

        ``lins`` is the canonicalized per-output-row lineage from
        :func:`~repro.lineage.capture.capture_plan`.
        """
        if self.guarded(base_tables):
            self.guard_skipped += 1
            return None
        query_id = self._next_query_id
        self._next_query_id += 1
        edge_rows: list[dict[str, Any]] = []
        truncated = 0
        cap = self.max_edges_per_query
        for out_row, pairs in enumerate(lins):
            if len(edge_rows) + len(pairs) > cap:
                truncated = 1
                break
            for src_table, src_tid in pairs:
                edge_rows.append(
                    {
                        "query_id": query_id,
                        "out_row": out_row,
                        "src_table": src_table,
                        "src_tid": src_tid,
                    }
                )
        db = self.database
        with OBS.tracer.suppress():
            db.insert(
                SYS_LINEAGE_QUERIES,
                {
                    "query_id": query_id,
                    "ts": db.now(),
                    "sql": sql,
                    "engine": engine,
                    "rows": len(lins),
                    "edges": len(edge_rows),
                    "truncated": truncated,
                },
            )
            if edge_rows:
                db.insert_many(SYS_LINEAGE_EDGES, edge_rows)
            self._recorded.append(query_id)
            self._prune()
        self.queries_stored += 1
        self.edges_stored += len(edge_rows)
        self.truncated += truncated
        return query_id

    def _prune(self) -> None:
        """Retention: drop the oldest recorded queries past the bound.

        One equality delete per dropped query_id -- equality routes
        through the hash index, so pruning costs O(dropped edges), not a
        full scan of the edges table per capture.
        """
        dropped = []
        while len(self._recorded) > self.retention:
            dropped.append(self._recorded.popleft())
        for query_id in dropped:
            doomed = col("query_id") == query_id
            self.database.delete(SYS_LINEAGE_EDGES, doomed)
            self.database.delete(SYS_LINEAGE_QUERIES, doomed)
        self.pruned += len(dropped)

    # ------------------------------------------------------------------
    def edges_for(self, query_id: int) -> list[dict[str, Any]]:
        """All lineage edges of one recorded query, in output-row order."""
        return self.database.query(
            f"SELECT out_row, src_table, src_tid FROM {SYS_LINEAGE_EDGES} "
            f"WHERE query_id = ? ORDER BY out_row",
            [query_id],
        )

    def backward(self, query_id: int, out_row: int) -> set[tuple[str, Any]]:
        """Base ``(table, tid)`` pairs behind one output row of a query."""
        rows = self.database.query(
            f"SELECT src_table, src_tid FROM {SYS_LINEAGE_EDGES} "
            f"WHERE query_id = ? AND out_row = ?",
            [query_id, out_row],
        )
        return {(r["src_table"], r["src_tid"]) for r in rows}

    def latest_query_id(self) -> Optional[int]:
        return self._recorded[-1] if self._recorded else None

    def counters(self) -> dict[str, int]:
        """Lifetime store counters (tests, dashboard, debugging)."""
        return {
            "queries_stored": self.queries_stored,
            "edges_stored": self.edges_stored,
            "guard_skipped": self.guard_skipped,
            "truncated": self.truncated,
            "pruned": self.pruned,
        }
