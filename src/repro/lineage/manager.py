"""Per-database lineage coordination: sampling, persistence, view lookup.

The manager is what :meth:`Database.enable_lineage` installs.  It owns

* the **capture policy** for ordinary SELECT traffic: deterministic
  every-Nth sampling (capturing a query costs roughly 10x executing it,
  so the default ``sample=256`` keeps amortized overhead well under the
  10% columnar-bench gate; ``sample=1`` captures everything);
* the optional :class:`~repro.lineage.store.LineageStore` that persists
  sampled captures as ``sys_lineage_*`` rows;
* the registry of lineage-enabled IVM views, which answer
  :meth:`backward`/:meth:`forward` provenance queries (the
  brushing-and-linking direction) without re-running anything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Optional

from ..errors import LineageError
from ..obs.runtime import OBS
from .capture import Lineage, capture_plan
from .store import LineageStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..db.algebra import Plan, Row
    from ..db.database import Database


class LineageManager:
    """Sampled lineage capture + provenance query surface for one database."""

    def __init__(
        self,
        database: "Database",
        sample: int = 256,
        store: "LineageStore | bool | None" = True,
    ) -> None:
        if sample < 1:
            raise ValueError(f"sample must be >= 1, got {sample}")
        self.database = database
        self.sample = sample
        if store is True or store is None:
            self.store: Optional[LineageStore] = LineageStore(database)
        elif store is False:
            self.store = None
        else:
            self.store = store
        self._select_counter = 0
        self._views: dict[str, Any] = {}
        # Lifetime counters.
        self.captures = 0
        self.sampled_out = 0

    # ------------------------------------------------------------------
    # Capture path (called from Database.execute on SELECTs)
    def maybe_capture(self, sql: str, plan: "Plan") -> "Optional[list[Row]]":
        """Sampled in-band capture hook.

        Returns the result rows when this statement was sampled (capture
        produces exactly the rows normal execution would, so the caller
        uses them directly and the query runs once), or None when the
        statement was sampled out -- the caller executes normally.
        """
        self._select_counter += 1
        if (self._select_counter - 1) % self.sample:
            self.sampled_out += 1
            return None
        # Never capture provenance of sys_* reads, even unsampled: the
        # store would refuse to record them anyway, and the dashboard's
        # own mirror refreshes must not pay the capture tax.
        base_tables = plan.base_tables()
        if any(name.startswith("sys_") for name in base_tables):
            self.sampled_out += 1
            return None
        rows, lins = capture_plan(plan, self.database)
        self.captures += 1
        if self.store is not None:
            self.store.record(sql, getattr(plan, "engine", "row"), lins, base_tables)
        return rows

    def capture(self, sql: str, plan: "Plan", record: bool = True) -> "tuple[list[Row], list[Lineage]]":
        """Unconditional capture (EXPLAIN LINEAGE / ``query_lineage``)."""
        rows, lins = capture_plan(plan, self.database)
        self.captures += 1
        if record and self.store is not None:
            self.store.record(
                sql, getattr(plan, "engine", "row"), lins, plan.base_tables()
            )
        return rows, lins

    # ------------------------------------------------------------------
    # Lineage-enabled IVM views
    def register_view(self, view: Any) -> None:
        if getattr(view, "lineage", None) is None:
            raise LineageError(
                f"view {view.name!r} has no lineage index; call "
                "enable_lineage() on the view before registering it"
            )
        self._views[view.name] = view
        if OBS.enabled:
            OBS.metrics.counter("lineage.views_registered").inc()

    def unregister_view(self, name: str) -> None:
        self._views.pop(name, None)

    def view(self, name: str) -> Any:
        try:
            return self._views[name]
        except KeyError:
            raise LineageError(
                f"no lineage-enabled view named {name!r} "
                f"(registered: {sorted(self._views)})"
            ) from None

    def views(self) -> dict[str, Any]:
        return dict(self._views)

    def backward(self, view_name: str, key: Any) -> set[tuple[str, Any]]:
        """Base ``(table, tid)`` pairs behind one output key of a view."""
        return self.view(view_name).lineage.backward(key)

    def forward(
        self, table: str, tids: Iterable[Any]
    ) -> dict[str, set[Any]]:
        """Which outputs of every registered view do these base tuples feed?

        Returns ``{view_name: {output keys}}`` with empty views omitted.
        """
        srcs = [(table, tid) for tid in tids]
        out: dict[str, set[Any]] = {}
        for name, view in self._views.items():
            keys = view.lineage.forward_many(srcs)
            if keys:
                out[name] = keys
        return out

    def counters(self) -> dict[str, int]:
        out = {
            "captures": self.captures,
            "sampled_out": self.sampled_out,
            "views": len(self._views),
        }
        if self.store is not None:
            out.update(self.store.counters())
        return out
