"""Execution monitoring: inspect the advancement of every process.

"It also may be necessary to log and allow inspecting the advancement of
each execution of the application" (Section I).  Everything here is
derived by querying the core instance tables -- the monitor adds no
state of its own, so it can run against a live engine or a loaded
snapshot equally well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..core import datamodel
from ..db.database import Database


@dataclass(frozen=True)
class ActivityTrace:
    """One activity instance's recorded advancement."""

    activity_instance_id: int
    activity_name: str
    status: str
    start: Optional[int]
    end: Optional[int]
    user: Optional[str]

    @property
    def duration(self) -> Optional[int]:
        """Logical-clock ticks from start to end (None while running)."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start


@dataclass(frozen=True)
class ProcessTrace:
    """One process instance with its activity timeline."""

    process_instance_id: int
    process_name: str
    status: str
    start: Optional[int]
    end: Optional[int]
    activities: tuple[ActivityTrace, ...]

    @property
    def duration(self) -> Optional[int]:
        if self.start is None or self.end is None:
            return None
        return self.end - self.start


class ProcessMonitor:
    """Read-only inspection over the core tables."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # ------------------------------------------------------------------
    def _process_names(self) -> dict[int, str]:
        return {
            row["id"]: row["name"]
            for row in self.database.table(datamodel.T_PROCESS).scan()
        }

    def _activity_names(self) -> dict[int, str]:
        return {
            row["id"]: row["name"]
            for row in self.database.table(datamodel.T_ACTIVITY).scan()
        }

    def _user_names(self) -> dict[int, str]:
        return {
            row["id"]: row["name"]
            for row in self.database.table(datamodel.T_USER).scan()
        }

    # ------------------------------------------------------------------
    def trace(self, process_instance_id: int) -> ProcessTrace:
        """Full timeline of one process instance."""
        instance = self.database.table(datamodel.T_PROCESS_INSTANCE).by_key(
            process_instance_id
        )
        if instance is None:
            raise KeyError(f"no process instance {process_instance_id}")
        activity_names = self._activity_names()
        user_names = self._user_names()
        activities = []
        for row in self.database.table(datamodel.T_ACTIVITY_INSTANCE).rows():
            if row["process_instance_id"] != process_instance_id:
                continue
            activities.append(
                ActivityTrace(
                    activity_instance_id=row["id"],
                    activity_name=activity_names.get(row["activity_id"], "?"),
                    status=row["status"],
                    start=row["start"],
                    end=row["end"],
                    user=user_names.get(row["user_id"]),
                )
            )
        activities.sort(key=lambda a: (a.start is None, a.start or 0))
        return ProcessTrace(
            process_instance_id=process_instance_id,
            process_name=self._process_names().get(instance["process_id"], "?"),
            status=instance["status"],
            start=instance["start"],
            end=instance["end"],
            activities=tuple(activities),
        )

    def history(self, process_name: Optional[str] = None) -> list[ProcessTrace]:
        """All process instances (optionally of one definition), oldest first."""
        process_names = self._process_names()
        traces = []
        for row in self.database.table(datamodel.T_PROCESS_INSTANCE).rows():
            name = process_names.get(row["process_id"], "?")
            if process_name is not None and name != process_name:
                continue
            traces.append(self.trace(row["id"]))
        traces.sort(key=lambda t: (t.start is None, t.start or 0))
        return traces

    def running(self) -> list[ProcessTrace]:
        """Process instances currently running."""
        return [t for t in self.history() if t.status == datamodel.RUNNING]

    # ------------------------------------------------------------------
    def activity_statistics(self) -> dict[str, dict[str, Any]]:
        """Per activity name: instance count and duration statistics."""
        activity_names = self._activity_names()
        durations: dict[str, list[int]] = {}
        counts: dict[str, int] = {}
        for row in self.database.table(datamodel.T_ACTIVITY_INSTANCE).scan():
            name = activity_names.get(row["activity_id"], "?")
            counts[name] = counts.get(name, 0) + 1
            if row["start"] is not None and row["end"] is not None:
                durations.setdefault(name, []).append(row["end"] - row["start"])
        out: dict[str, dict[str, Any]] = {}
        for name, count in counts.items():
            spans = durations.get(name, [])
            out[name] = {
                "instances": count,
                "completed": len(spans),
                "mean_duration": sum(spans) / len(spans) if spans else None,
                "max_duration": max(spans) if spans else None,
            }
        return out

    def format_trace(self, process_instance_id: int) -> str:
        """Human-readable timeline (for logs and REPL inspection)."""
        trace = self.trace(process_instance_id)
        lines = [
            f"process {trace.process_name!r} instance {trace.process_instance_id}: "
            f"{trace.status}"
            + (f" (t={trace.start}..{trace.end})" if trace.start is not None else "")
        ]
        for activity in trace.activities:
            span = ""
            if activity.start is not None:
                end = activity.end if activity.end is not None else "…"
                span = f" t={activity.start}..{end}"
            who = f" by {activity.user}" if activity.user else ""
            lines.append(
                f"  [{activity.status:<11}] {activity.activity_name}{span}{who}"
            )
        return "\n".join(lines)
