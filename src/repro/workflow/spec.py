"""XML process specifications.

"EdiFlow processes are specified in a simple XML syntax, closely
resembling the XML WfMC syntax XPDL" (Section VI-D).  This module parses
that syntax into :class:`~repro.workflow.model.ProcessDefinition` objects
and serializes definitions back to XML (round-trip tested).

Example::

    <process name="elections">
      <configuration driver="embedded" uri="memory://" user="analyst"/>
      <constant name="min_votes" type="INTEGER" value="100"/>
      <variable name="party" type="TEXT" initial="DEM"/>
      <relation name="votes" primaryKey="id">
        <column name="id" type="INTEGER"/>
        <column name="state" type="TEXT"/>
        <column name="count" type="INTEGER"/>
      </relation>
      <function name="aggregate" classpath="myapp.procs:AggregateVotes"/>
      <body>
        <sequence>
          <activity name="ask" type="askUser" prompt="Party?" variable="party"/>
          <activity name="agg" type="callFunction" procedure="aggregate">
            <input table="votes"/>
            <output table="votes_agg"/>
          </activity>
        </sequence>
      </body>
      <propagation relation="votes" activity="agg" scope="ra"/>
    </process>
"""

from __future__ import annotations

import importlib
from typing import Any, Optional
from xml.etree import ElementTree as ET

from ..errors import RetryError, SpecificationError
from ..retry import RetryPolicy
from .model import (
    Activity,
    ActivityNode,
    AndSplitJoin,
    AskUser,
    Assign,
    CallProcedure,
    ConditionalNode,
    Configuration,
    Constant,
    OrBranch,
    OrSplitJoin,
    ProcessDefinition,
    ProcessNode,
    RelationDecl,
    RunQuery,
    SequenceNode,
    UpdatePropagation,
    UpdateTable,
    Variable,
)
from .procedures import Procedure, ProcedureRegistry


def _typed_value(text: Optional[str], type_name: str) -> Any:
    if text is None:
        return None
    upper = type_name.upper()
    if upper in ("INTEGER", "INT", "TIMESTAMP"):
        return int(text)
    if upper in ("FLOAT", "REAL", "DOUBLE"):
        return float(text)
    if upper in ("BOOLEAN", "BOOL"):
        return text.strip().lower() in ("true", "1", "yes")
    return text


def _bool_attr(element: ET.Element, name: str, default: bool = False) -> bool:
    raw = element.get(name)
    if raw is None:
        return default
    return raw.strip().lower() in ("true", "1", "yes")


def parse_process(xml_text: str) -> ProcessDefinition:
    """Parse an XML process specification."""
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise SpecificationError(f"invalid process XML: {exc}") from None
    return parse_process_element(root)


def parse_process_file(path: str) -> ProcessDefinition:
    with open(path, encoding="utf-8") as infile:
        return parse_process(infile.read())


def parse_process_element(root: ET.Element) -> ProcessDefinition:
    if root.tag != "process":
        raise SpecificationError(f"expected <process>, found <{root.tag}>")
    name = root.get("name")
    if not name:
        raise SpecificationError("<process> needs a name attribute")

    configuration = Configuration()
    config_el = root.find("configuration")
    if config_el is not None:
        configuration = Configuration(
            driver=config_el.get("driver", "embedded"),
            uri=config_el.get("uri", "memory://"),
            user=config_el.get("user", ""),
        )

    constants = []
    for el in root.findall("constant"):
        cname = el.get("name")
        if not cname:
            raise SpecificationError("<constant> needs a name")
        ctype = el.get("type", "TEXT")
        constants.append(Constant(cname, _typed_value(el.get("value"), ctype)))

    variables = []
    for el in root.findall("variable"):
        vname = el.get("name")
        if not vname:
            raise SpecificationError("<variable> needs a name")
        vtype = el.get("type", "ANY")
        variables.append(
            Variable(vname, vtype, initial=_typed_value(el.get("initial"), vtype))
        )

    relations = []
    for el in root.findall("relation"):
        rname = el.get("name")
        if not rname:
            raise SpecificationError("<relation> needs a name")
        columns = tuple(
            (c.get("name", ""), c.get("type", "ANY")) for c in el.findall("column")
        )
        for cname, _ in columns:
            if not cname:
                raise SpecificationError(f"relation {rname!r}: column needs a name")
        relations.append(
            RelationDecl(
                name=rname,
                columns=columns,
                primary_key=el.get("primaryKey"),
                temporary=_bool_attr(el, "temporary"),
            )
        )

    procedures = []
    classpaths: dict[str, str] = {}
    for el in root.findall("function"):
        fname = el.get("name")
        if not fname:
            raise SpecificationError("<function> needs a name")
        procedures.append(fname)
        classpath = el.get("classpath")
        if classpath:
            classpaths[fname] = classpath

    body_el = root.find("body")
    if body_el is None or len(body_el) != 1:
        raise SpecificationError("<process> needs a <body> with exactly one child")
    body = _parse_node(body_el[0])

    propagations = []
    for el in root.findall("propagation"):
        relation = el.get("relation")
        activity = el.get("activity")
        scope = el.get("scope")
        if not (relation and activity and scope):
            raise SpecificationError(
                "<propagation> needs relation, activity and scope attributes"
            )
        propagations.append(UpdatePropagation(relation, activity, scope))

    definition = ProcessDefinition(
        name=name,
        body=body,
        relations=relations,
        variables=variables,
        constants=constants,
        procedures=procedures,
        propagations=propagations,
        configuration=configuration,
    )
    definition.classpaths = classpaths  # type: ignore[attr-defined]
    return definition


def _parse_node(element: ET.Element) -> ProcessNode:
    tag = element.tag
    if tag == "sequence":
        return SequenceNode([_parse_node(child) for child in element])
    if tag in ("and-split-join", "and"):
        return AndSplitJoin(
            [_parse_node(child) for child in element],
            parallel=_bool_attr(element, "parallel"),
        )
    if tag in ("or-split-join", "or"):
        branches = []
        for child in element:
            if child.tag != "branch":
                raise SpecificationError(
                    f"<{tag}> children must be <branch>, found <{child.tag}>"
                )
            if len(child) != 1:
                raise SpecificationError("<branch> needs exactly one child node")
            branches.append(OrBranch(child.get("condition"), _parse_node(child[0])))
        return OrSplitJoin(branches)
    if tag == "if":
        condition = element.get("condition")
        if condition is None:
            raise SpecificationError("<if> needs a condition attribute")
        if len(element) != 1:
            raise SpecificationError("<if> needs exactly one child node")
        return ConditionalNode(condition, _parse_node(element[0]))
    if tag == "activity":
        return ActivityNode(_parse_activity(element))
    raise SpecificationError(f"unknown process node <{tag}>")


def _parse_activity(element: ET.Element) -> Activity:
    name = element.get("name")
    if not name:
        raise SpecificationError("<activity> needs a name")
    kind = element.get("type")
    common = {
        "group": element.get("group"),
        "detached": _bool_attr(element, "detached"),
        "fresh_snapshot": _bool_attr(element, "freshSnapshot"),
    }
    if kind == "askUser":
        prompt = element.get("prompt", "")
        variable = element.get("variable")
        if not variable:
            raise SpecificationError(f"askUser activity {name!r} needs a variable")
        return AskUser(name, prompt, variable, **common)
    if kind == "assign":
        variable = element.get("variable")
        if not variable:
            raise SpecificationError(f"assign activity {name!r} needs a variable")
        vtype = element.get("valueType", "TEXT")
        return Assign(name, variable, _typed_value(element.get("value"), vtype), **common)
    if kind == "update":
        sql = element.get("sql") or (element.text or "").strip()
        if not sql:
            raise SpecificationError(f"update activity {name!r} needs sql")
        params = tuple(p.get("value", "") for p in element.findall("param"))
        return UpdateTable(name, sql, params, **common)
    if kind == "runQuery":
        sql = element.get("sql") or (element.text or "").strip()
        if not sql:
            raise SpecificationError(f"runQuery activity {name!r} needs sql")
        params = tuple(p.get("value", "") for p in element.findall("param"))
        return RunQuery(
            name,
            sql,
            params,
            into_variable=element.get("intoVariable"),
            into_table=element.get("intoTable"),
            **common,
        )
    if kind == "callFunction":
        procedure = element.get("procedure")
        if not procedure:
            raise SpecificationError(
                f"callFunction activity {name!r} needs a procedure"
            )
        inputs = tuple(i.get("table", "") for i in element.findall("input"))
        outputs = tuple(o.get("table", "") for o in element.findall("output"))
        read_write = tuple(
            rw.get("table", "") for rw in element.findall("readWrite")
        )
        retry_el = element.find("retry")
        retry = None
        if retry_el is not None:
            try:
                # Validate eagerly so a bad spec fails at parse time, but
                # store the plain mapping (round-trippable to XML).
                retry = dict(retry_el.attrib)
                RetryPolicy.from_options(retry)
            except RetryError as exc:
                raise SpecificationError(
                    f"bad retry declaration on activity {name!r}: {exc}"
                ) from None
        return CallProcedure(
            name,
            procedure,
            inputs=inputs,
            read_write=read_write,
            outputs=outputs,
            retry=retry,
            **common,
        )
    raise SpecificationError(f"unknown activity type {kind!r} for {name!r}")


# ---------------------------------------------------------------------------
# Serialization (definition -> XML)


def serialize_process(definition: ProcessDefinition) -> str:
    """Serialize a definition back to the XML syntax (round-trippable for
    definitions expressible in the XML subset)."""
    root = ET.Element("process", {"name": definition.name})
    config = definition.configuration
    ET.SubElement(
        root,
        "configuration",
        {"driver": config.driver, "uri": config.uri, "user": config.user},
    )
    for constant in definition.constants:
        ET.SubElement(
            root,
            "constant",
            {
                "name": constant.name,
                "type": _python_type_name(constant.value),
                "value": "" if constant.value is None else str(constant.value),
            },
        )
    for variable in definition.variables:
        attrs = {"name": variable.name, "type": variable.type_name}
        if variable.initial is not None:
            attrs["initial"] = str(variable.initial)
        ET.SubElement(root, "variable", attrs)
    for relation in definition.relations:
        rel_el = ET.SubElement(root, "relation", {"name": relation.name})
        if relation.primary_key:
            rel_el.set("primaryKey", relation.primary_key)
        if relation.temporary:
            rel_el.set("temporary", "true")
        for cname, ctype in relation.columns:
            ET.SubElement(rel_el, "column", {"name": cname, "type": ctype})
    for proc in definition.procedures:
        ET.SubElement(root, "function", {"name": proc})
    body_el = ET.SubElement(root, "body")
    body_el.append(_serialize_node(definition.body))
    for up in definition.propagations:
        ET.SubElement(
            root,
            "propagation",
            {"relation": up.relation, "activity": up.activity, "scope": up.scope},
        )
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def _python_type_name(value: Any) -> str:
    if isinstance(value, bool):
        return "BOOLEAN"
    if isinstance(value, int):
        return "INTEGER"
    if isinstance(value, float):
        return "FLOAT"
    return "TEXT"


def _serialize_node(node: ProcessNode) -> ET.Element:
    if isinstance(node, SequenceNode):
        el = ET.Element("sequence")
        for step in node.steps:
            el.append(_serialize_node(step))
        return el
    if isinstance(node, AndSplitJoin):
        el = ET.Element("and-split-join")
        if node.parallel:
            el.set("parallel", "true")
        for branch in node.branches:
            el.append(_serialize_node(branch))
        return el
    if isinstance(node, OrSplitJoin):
        el = ET.Element("or-split-join")
        for branch in node.branches:
            branch_el = ET.SubElement(el, "branch")
            if isinstance(branch.condition, str):
                branch_el.set("condition", branch.condition)
            branch_el.append(_serialize_node(branch.body))
        return el
    if isinstance(node, ConditionalNode):
        el = ET.Element("if")
        if isinstance(node.condition, str):
            el.set("condition", node.condition)
        el.append(_serialize_node(node.body))
        return el
    if isinstance(node, ActivityNode):
        return _serialize_activity(node.activity)
    raise SpecificationError(f"cannot serialize node {node!r}")


def _serialize_activity(activity: Activity) -> ET.Element:
    el = ET.Element("activity", {"name": activity.name})
    if activity.group:
        el.set("group", activity.group)
    if activity.detached:
        el.set("detached", "true")
    if activity.fresh_snapshot:
        el.set("freshSnapshot", "true")
    if isinstance(activity, AskUser):
        el.set("type", "askUser")
        el.set("prompt", activity.prompt)
        el.set("variable", activity.variable)
    elif isinstance(activity, Assign):
        el.set("type", "assign")
        el.set("variable", activity.variable)
        el.set("value", str(activity.expression))
        el.set("valueType", _python_type_name(activity.expression))
    elif isinstance(activity, UpdateTable):
        el.set("type", "update")
        el.set("sql", activity.sql)
        for param in activity.params:
            ET.SubElement(el, "param", {"value": str(param)})
    elif isinstance(activity, RunQuery):
        el.set("type", "runQuery")
        el.set("sql", activity.sql)
        if activity.into_variable:
            el.set("intoVariable", activity.into_variable)
        if activity.into_table:
            el.set("intoTable", activity.into_table)
        for param in activity.params:
            ET.SubElement(el, "param", {"value": str(param)})
    elif isinstance(activity, CallProcedure):
        el.set("type", "callFunction")
        el.set("procedure", activity.procedure)
        for table in activity.inputs:
            if isinstance(table, str):
                ET.SubElement(el, "input", {"table": table})
        for table in activity.read_write:
            ET.SubElement(el, "readWrite", {"table": table})
        for table in activity.outputs:
            ET.SubElement(el, "output", {"table": table})
        retry = activity.options.get("retry")
        if isinstance(retry, dict):
            ET.SubElement(
                el, "retry", {key: str(value) for key, value in retry.items()}
            )
        elif isinstance(retry, RetryPolicy):
            ET.SubElement(
                el,
                "retry",
                {
                    "maxAttempts": str(retry.max_attempts),
                    "baseDelay": str(retry.base_delay),
                    "multiplier": str(retry.multiplier),
                    "maxDelay": str(retry.max_delay),
                    "jitter": str(retry.jitter),
                },
            )
    else:
        raise SpecificationError(f"cannot serialize activity {activity!r}")
    return el


# ---------------------------------------------------------------------------
# Classpath loading (the OSGi-flavored part of Section VI-D)


def load_procedures(
    definition: ProcessDefinition, registry: ProcedureRegistry
) -> list[str]:
    """Import and register procedures declared with a ``classpath``.

    A classpath is ``package.module:ClassName``; the class must subclass
    :class:`~repro.workflow.procedures.Procedure` and be constructible
    with no arguments.  Returns the names registered.
    """
    registered = []
    classpaths = getattr(definition, "classpaths", {})
    for name, classpath in classpaths.items():
        if name in registry:
            continue
        module_name, _, class_name = classpath.partition(":")
        if not class_name:
            raise SpecificationError(
                f"classpath {classpath!r} must look like module:ClassName"
            )
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise SpecificationError(
                f"cannot import module {module_name!r}: {exc}"
            ) from None
        try:
            cls = getattr(module, class_name)
        except AttributeError:
            raise SpecificationError(
                f"module {module_name!r} has no attribute {class_name!r}"
            ) from None
        if not (isinstance(cls, type) and issubclass(cls, Procedure)):
            raise SpecificationError(
                f"{classpath!r} is not a Procedure subclass"
            )
        instance = cls()
        instance.name = name
        registry.register(instance, name=name)
        registered.append(name)
    return registered
