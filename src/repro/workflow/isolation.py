"""Isolation between concurrent processes (Section VI-A of the paper).

Three mechanisms:

**Time-based isolation.**  Every tuple carries a creation timestamp; an
instance with snapshot time ``t`` sees only tuples created at or before
``t``.  By default the snapshot is taken at *process-instance* start
("each process operates on exactly the data which was available when the
process started"); activities marked ``fresh_snapshot`` re-snapshot at
activity start (UP option 2).

**Deletion tables.**  A process instance deleting from ``R`` does not
physically remove tuples: they are recorded in ``R_deleted`` as
``(tid, t_del, pid, process_end)``.  Queries are rewritten:

* for the deleting instance ``p3``:
  ``... WHERE tid NOT IN (SELECT tid FROM R_deleted WHERE pid = p3)``
* for instances started at ``t0 > p3.end``:
  ``... WHERE tid NOT IN (SELECT tid FROM R_deleted WHERE process_end < t0)``

**Deferred physical deletion.**  When the deleting process ends, tuples
are physically removed once every process instance started before that
end has itself terminated (the ``wait`` sets of the paper).

**Process/activity-based isolation** rides on provenance relationships
(``createdBy``): :meth:`IsolationManager.own_rows` filters a relation to
the tuples created by a given process instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional, Sequence

from ..core import datamodel
from ..db.database import Database, Result
from ..db.expression import Expression, col
from ..db.routing import matching_tids
from ..db.schema import CREATED_AT, TID, Column
from ..db.sql.ast import DeleteStmt, InsertStmt, SelectStmt
from ..db.sql.parser import parse
from ..db.sql.planner import _Scope, lower_expr, plan_select
from ..db.table import Table
from ..db.types import INTEGER, TIMESTAMP
from ..errors import IsolationError

Row = dict[str, Any]


@dataclass
class IsolationContext:
    """Visibility parameters of one executing instance.

    ``snapshot_time=None`` means "see everything" (used by propagation
    handlers that must observe fresh data).  ``own_tids`` maps table name
    to the tids this process instance itself wrote -- a process always
    sees its own writes, regardless of the snapshot.
    """

    process_instance_id: int
    start_time: int
    snapshot_time: Optional[int]
    own_tids: Optional[dict[str, set[int]]] = None

    @classmethod
    def unrestricted(cls, process_instance_id: int = 0, start_time: int = 0) -> "IsolationContext":
        return cls(process_instance_id, start_time, None)

    def owns(self, table: str, tid: int) -> bool:
        if self.own_tids is None:
            return False
        tids = self.own_tids.get(table)
        return tids is not None and tid in tids

    def record_own(self, table: str, tids: Iterable[int]) -> None:
        if self.own_tids is not None:
            self.own_tids.setdefault(table, set()).update(tids)


class _IsolatedTable:
    """Read-only view of a table filtered by an isolation context."""

    def __init__(self, table: Table, manager: "IsolationManager", ctx: IsolationContext) -> None:
        self._table = table
        self._manager = manager
        self._ctx = ctx
        self.schema = table.schema
        self.name = table.name

    def rows(self) -> Iterator[Row]:
        hidden = self._manager.hidden_tids(self._table.name, self._ctx)
        snapshot = self._ctx.snapshot_time
        ctx = self._ctx
        name = self._table.name
        table = self._table
        if snapshot is None:
            for row in table.rows():
                if row[TID] not in hidden:
                    yield row
            return
        # Snapshot isolation, with the instance's own writes always
        # visible (they necessarily carry timestamps past the snapshot).
        # The per-table creation-timestamp index bounds the scan to the
        # snapshot range instead of filtering every stored row.
        find = getattr(table, "find_sorted_index", None)
        created_index = find(CREATED_AT) if find is not None else None
        if created_index is not None:
            candidates = set(created_index.range(None, snapshot))
            own = (ctx.own_tids or {}).get(name, ())
            candidates.update(tid for tid in own if tid in table)
            for tid in sorted(candidates):
                if tid in hidden:
                    continue
                row = table.get(tid)
                if row is not None:
                    yield row
            return
        for row in table.rows():
            tid = row[TID]
            if tid in hidden:
                continue
            if row[CREATED_AT] <= snapshot or ctx.owns(name, tid):
                yield row

    def scan(self) -> Iterator[Row]:
        return self.rows()

    def __len__(self) -> int:
        return sum(1 for _ in self.rows())


class _IsolatedSource:
    """Database adapter handing out isolated tables to the planner."""

    def __init__(self, manager: "IsolationManager", ctx: IsolationContext) -> None:
        self._manager = manager
        self._ctx = ctx

    def table(self, name: str) -> Any:
        table = self._manager.database.table(name)
        if self._manager.is_managed(name):
            return _IsolatedTable(table, self._manager, self._ctx)
        return table


class IsolationManager:
    """Implements deletion tables, query rewriting, and deferred deletes."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._managed: set[str] = set()
        # pid -> set of tables it deleted from (to resolve at process end)
        self._pending_deletes: dict[int, set[str]] = {}
        # Running process instances: pid -> start_time (maintained by engine)
        self._running: dict[int, int] = {}

    # -- registration ------------------------------------------------------
    def manage(self, table: str) -> None:
        """Put ``table`` under isolation management (creates ``R_deleted``)."""
        if table in self._managed:
            return
        self.database.table(table)  # must exist
        deletion = datamodel.deletion_table_name(table)
        if not self.database.has_table(deletion):
            self.database.create_table(
                deletion,
                [
                    Column("tid", INTEGER, nullable=False),
                    Column("t_del", TIMESTAMP, nullable=False),
                    Column("pid", INTEGER, nullable=False),
                    Column("process_end", TIMESTAMP),
                ],
            )
        # hidden_tids probes by pid (the deleting instance's own entries)
        # and by process_end range (finished-before-start entries); index
        # both so visibility checks stay sublinear in the deletion log.
        deletion_table = self.database.table(deletion)
        if not deletion_table.has_index(f"ix_{deletion}_pid"):
            deletion_table.create_index(f"ix_{deletion}_pid", ("pid",))
        if not deletion_table.has_index(f"ix_{deletion}_end"):
            deletion_table.create_index(
                f"ix_{deletion}_end", ("process_end",), sorted=True
            )
        self._managed.add(table)

    def is_managed(self, table: str) -> bool:
        return table in self._managed

    def managed_tables(self) -> list[str]:
        return sorted(self._managed)

    # -- engine lifecycle hooks ---------------------------------------------
    def process_started(self, pid: int, start_time: int) -> None:
        self._running[pid] = start_time

    def process_ended(self, pid: int) -> None:
        """Stamp the instance's deletions and attempt physical deletion."""
        self._running.pop(pid, None)
        end_time = self.database.tick()
        tables = self._pending_deletes.pop(pid, set())
        for table in tables:
            deletion = datamodel.deletion_table_name(table)
            self.database.update(
                deletion, {"process_end": end_time}, col("pid") == pid
            )
        for table in self._managed:
            self.collect_garbage(table)

    # -- visibility ---------------------------------------------------------
    def hidden_tids(self, table: str, ctx: IsolationContext) -> set[int]:
        """Tids of ``table`` that ``ctx`` must not see.

        A tuple is hidden when (a) this very instance deleted it, or
        (b) the deleting process finished before this instance started.
        """
        if table not in self._managed:
            return set()
        deletion = datamodel.deletion_table_name(table)
        deletion_table = self.database.table(deletion)
        pid_index = deletion_table.find_hash_index("pid")
        end_index = deletion_table.find_sorted_index("process_end")
        hidden: set[int] = set()
        if pid_index is not None and end_index is not None:
            # (a) own deletions: hash probe on pid.  (b) deletions whose
            # process finished before this instance started: sorted-index
            # range on process_end (NULL ends are unindexed, matching the
            # explicit None check of the scan path).
            for entry_tid in pid_index.lookup(ctx.process_instance_id):
                entry = deletion_table.get(entry_tid)
                if entry is not None:
                    hidden.add(entry["tid"])
            for entry_tid in end_index.range(
                None, ctx.start_time, include_high=False
            ):
                entry = deletion_table.get(entry_tid)
                if entry is not None:
                    hidden.add(entry["tid"])
            return hidden
        for entry in deletion_table.scan():
            if entry["pid"] == ctx.process_instance_id:
                hidden.add(entry["tid"])
            elif (
                entry["process_end"] is not None
                and entry["process_end"] < ctx.start_time
            ):
                hidden.add(entry["tid"])
        return hidden

    def visible_rows(self, table: str, ctx: IsolationContext) -> list[Row]:
        base = self.database.table(table)
        return list(_IsolatedTable(base, self, ctx).rows())

    def own_rows(self, table: str, process_instance_id: int) -> list[Row]:
        """Process-based isolation: tuples created by one process instance.

        Resolved through provenance records ("such isolation is easily
        enforced using relationships between the application relations and
        the ActivityInstance table", Section VI-A).
        """
        prov = self.database.table(datamodel.T_PROVENANCE)
        instances = self.database.table(datamodel.T_ACTIVITY_INSTANCE)
        activity_ids = {
            row["id"]
            for row in instances.scan()
            if row["process_instance_id"] == process_instance_id
        }
        tids = {
            row["entity_tid"]
            for row in prov.scan()
            if row["entity_table"] == table
            and row["activity_instance_id"] in activity_ids
        }
        base = self.database.table(table)
        return [row for row in base.rows() if row[TID] in tids]

    # -- statement interface --------------------------------------------------
    def query(self, sql: str, params: Sequence[Any], ctx: IsolationContext) -> list[Row]:
        """Run a SELECT with isolation applied at every scan."""
        statement = parse(sql)
        if not isinstance(statement, SelectStmt):
            raise IsolationError("isolation.query() accepts SELECT only")
        source = _IsolatedSource(self, ctx)
        plan = plan_select(statement, source, params)
        return plan.to_list(source)

    def execute(self, sql: str, params: Sequence[Any], ctx: IsolationContext) -> Result:
        """Run any statement; SELECTs are isolated, DELETEs deferred."""
        statement = parse(sql)
        if isinstance(statement, SelectStmt):
            return Result(rows=self.query(sql, params, ctx))
        if isinstance(statement, InsertStmt) and ctx.own_tids is not None:
            # Record inserted tids so the instance sees its own writes.
            collected: list[int] = []
            trigger = self.database.on(
                statement.table,
                "insert",
                lambda change: collected.extend(r[TID] for r in change.inserted),
            )
            try:
                result = self.database.execute_statement(statement, params)
            finally:
                self.database.drop_trigger(trigger)
            ctx.record_own(statement.table, collected)
            # Surface what landed so the caller (ProcessEnv.execute) can
            # write durable createdBy provenance -- in-memory own_tids
            # alone would not survive a crash + recover().
            result.inserted_table = statement.table
            result.inserted_tids = collected
            return result
        if isinstance(statement, DeleteStmt) and statement.table in self._managed:
            scope = _Scope(self.database, params)
            scope.add_table(statement.table, None)
            where = (
                lower_expr(statement.where, scope)
                if statement.where is not None
                else None
            )
            count = self.logical_delete(statement.table, where, ctx)
            return Result(rowcount=count)
        return self.database.execute_statement(statement, params)

    def logical_delete(
        self, table: str, where: Expression | None, ctx: IsolationContext
    ) -> int:
        """Record deletions in ``R_deleted`` instead of removing rows."""
        if table not in self._managed:
            raise IsolationError(f"table {table!r} is not isolation-managed")
        base = self.database.table(table)
        already_hidden = self.hidden_tids(table, ctx)
        now = self.database.tick()
        deletion = datamodel.deletion_table_name(table)
        entries = []
        for tid in matching_tids(base, where):
            if tid in already_hidden:
                continue
            entries.append(
                {
                    "tid": tid,
                    "t_del": now,
                    "pid": ctx.process_instance_id,
                    "process_end": None,
                }
            )
        if entries:
            self.database.insert_many(deletion, entries)
            self._pending_deletes.setdefault(ctx.process_instance_id, set()).add(table)
        return len(entries)

    # -- SQL text rewriting (the paper's presentation of the mechanism) ----
    def rewrite_select_star(self, table: str, ctx: IsolationContext) -> str:
        """Produce the rewritten SQL of Section VI-A for ``SELECT * FROM R``.

        For the deleting instance:
            ``... WHERE __tid__ NOT IN (SELECT tid FROM R_deleted WHERE pid = <p>)``
        For a later-started instance:
            ``... WHERE __tid__ NOT IN (SELECT tid FROM R_deleted WHERE process_end < <t0>)``

        The executable path uses :meth:`query`; this method exists so the
        rewriting is observable/testable in the paper's own terms.
        """
        deletion = datamodel.deletion_table_name(table)
        if ctx.process_instance_id in self._pending_deletes and table in self._pending_deletes[ctx.process_instance_id]:
            return (
                f"SELECT * FROM {table} WHERE __tid__ NOT IN "
                f"(SELECT tid FROM {deletion} WHERE pid = {ctx.process_instance_id})"
            )
        return (
            f"SELECT * FROM {table} WHERE __tid__ NOT IN "
            f"(SELECT tid FROM {deletion} WHERE process_end < {ctx.start_time})"
        )

    # -- deferred physical deletion -----------------------------------------
    def collect_garbage(self, table: str) -> int:
        """Physically delete tuples whose deletion no running instance can
        still observe; returns the number of tuples removed.

        A deletion entry is collectible once its ``process_end`` is set and
        no running process instance started before that end.
        """
        if table not in self._managed:
            return 0
        deletion = datamodel.deletion_table_name(table)
        running_starts = list(self._running.values())
        collectible: list[int] = []
        entry_tids: list[int] = []
        for entry in self.database.table(deletion).scan():
            end = entry["process_end"]
            if end is None:
                continue
            if any(start < end for start in running_starts):
                continue  # someone may still rely on seeing the tuple
            collectible.append(entry["tid"])
            entry_tids.append(entry[TID])
        if not collectible:
            return 0
        removed = self.database.delete_by_tids(table, collectible)
        self.database.delete_by_tids(deletion, entry_tids)
        return removed
