"""Black-box procedures and the environment they run in.

Procedures are "computation units implemented by some external, black-box
software" (Section V): clustering, layout, statistics.  The engine only
knows their table signature

    p : R_1, ..., R_l, T^w_1, ..., T^w_m  ->  S_1, ..., S_n

and, optionally, their *delta handlers*: ``p_h,r`` invoked while ``p`` is
running and ``p_h,f`` invoked after ``p`` finished (Section V).

The concrete interface mirrors the paper's EdiflowProcess Java interface
(Section VI-D): ``initialize()``, ``run(env)``, ``update(env)`` and
``get_name()`` -- here ``update`` is split into the two handlers, and
``run`` receives the evaluated inputs explicitly.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from ..db.database import Database
from ..errors import ProcedureError, WorkflowError
from ..ivm.delta import Delta
from ..retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover
    from .engine import WorkflowEngine
    from .isolation import IsolationContext, IsolationManager

Row = dict[str, Any]
Tables = list[list[Row]]


class ProcessEnv:
    """Everything a procedure may touch while executing.

    An instance is created per activity-instance execution and handed to
    the procedure, exactly like the paper's ``ProcessEnv`` is "passed as a
    parameter to a newly created instance of a procedure" (Section VI-D).
    """

    def __init__(
        self,
        engine: "WorkflowEngine",
        process_instance_id: int,
        activity_instance_id: Optional[int],
        isolation: "IsolationContext",
        variables: dict[str, Any],
        constants: dict[str, Any],
    ) -> None:
        self.engine = engine
        self.database: Database = engine.database
        self.process_instance_id = process_instance_id
        self.activity_instance_id = activity_instance_id
        self.isolation = isolation
        self.variables = variables
        self.constants = constants

    # -- scalar scope -----------------------------------------------------
    def lookup(self, name: str) -> Any:
        """Resolve a variable or constant by name."""
        if name in self.variables:
            return self.variables[name]
        if name in self.constants:
            return self.constants[name]
        raise WorkflowError(f"unknown variable or constant {name!r}")

    def assign(self, name: str, value: Any) -> None:
        if name in self.constants:
            raise WorkflowError(f"cannot assign to constant {name!r}")
        self.variables[name] = value
        # Write-through to the core tables so a crashed enactment resumes
        # with the variable values it had (see WorkflowEngine.recover).
        self.engine.persist_variable(self.process_instance_id, name, value)

    def resolve_params(self, params: Sequence[Any]) -> list[Any]:
        """Replace ``$name`` placeholders in a parameter list."""
        resolved = []
        for param in params:
            if isinstance(param, str) and param.startswith("$"):
                resolved.append(self.lookup(param[1:]))
            else:
                resolved.append(param)
        return resolved

    def resolve_sql(self, sql: str, params: Sequence[Any]) -> tuple[str, list[Any]]:
        """Rewrite ``$name`` references inside SQL text to bound parameters.

        ``SELECT * FROM t WHERE n > $k`` becomes ``... WHERE n > ?`` with
        the variable's value appended after the caller's own parameters.
        Dollar signs inside string literals are left alone.
        """
        resolved_params = self.resolve_params(params)
        if "$" not in sql:
            return sql, resolved_params
        out: list[str] = []
        extra: list[Any] = []
        i = 0
        n = len(sql)
        in_string = False
        while i < n:
            ch = sql[i]
            if ch == "'":
                in_string = not in_string
                out.append(ch)
                i += 1
                continue
            if ch == "$" and not in_string:
                j = i + 1
                while j < n and (sql[j].isalnum() or sql[j] == "_"):
                    j += 1
                name = sql[i + 1 : j]
                if not name:
                    raise WorkflowError(f"dangling '$' in SQL: {sql!r}")
                out.append("?")
                extra.append(self.lookup(name))
                i = j
                continue
            out.append(ch)
            i += 1
        return "".join(out), resolved_params + extra

    # -- data access (isolation-aware) -------------------------------------
    def query(self, sql: str, params: Sequence[Any] = ()) -> list[Row]:
        """Run a SELECT through this instance's isolation context."""
        sql, bound = self.resolve_sql(sql, params)
        return self.engine.isolation.query(sql, bound, self.isolation)

    def read_table(self, table: str) -> list[Row]:
        """All rows of ``table`` visible to this instance."""
        return self.engine.isolation.visible_rows(table, self.isolation)

    def execute(self, sql: str, params: Sequence[Any] = ()) -> Any:
        """Run a mutation statement (INSERT/UPDATE/DELETE/CREATE...).

        DELETE statements are intercepted by the isolation layer and
        turned into deletion-table entries (Section VI-A).  INSERTed rows
        get durable ``createdBy`` provenance, so they stay visible to
        this enactment across a crash + recover() and are compensated if
        this activity dies mid-run.
        """
        sql, bound = self.resolve_sql(sql, params)
        result = self.engine.isolation.execute(sql, bound, self.isolation)
        tids = getattr(result, "inserted_tids", None)
        if tids:
            self.engine.record_created(result.inserted_table, tids, self)
        return result

    def write_rows(self, table: str, rows: Sequence[Row]) -> None:
        """Append rows to a (persistent or temporary) relation."""
        self.engine.write_rows(table, rows, self)

    def call_procedure(
        self, name: str, inputs: Tables, read_write: Sequence[str] = ()
    ) -> Tables:
        """Nested procedure invocation (used by ProcCallExpr)."""
        procedure = self.engine.procedures.instantiate(name)
        procedure.initialize(self)
        if procedure.retry_policy is not None:
            return procedure.retry_policy.call(
                procedure.run, self, inputs, list(read_write)
            )
        return procedure.run(self, inputs, list(read_write))


class Procedure:
    """Base class for black-box procedures.

    Subclasses implement :meth:`run`; optionally they override the delta
    handlers.  A procedure that sets ``distributive = True`` declares that
    it distributes over union in all inputs -- "there is no need to
    specify delta handlers for procedures which distribute over the union,
    since the procedure itself can serve as handler" (Section V): the
    default handlers then re-run the procedure on the delta alone.
    """

    #: Procedure name used in process specifications.
    name: str = ""
    #: True if p(R u dR) = p(R) u p(dR); enables automatic delta handling.
    distributive: bool = False
    #: Optional :class:`repro.retry.RetryPolicy` re-running transient
    #: failures of :meth:`run`.  Setting it asserts the procedure is safe
    #: to re-execute (idempotent or side-effect free); a CallProcedure
    #: activity's own ``options["retry"]`` takes precedence.
    retry_policy: Optional["RetryPolicy"] = None

    def initialize(self, env: ProcessEnv) -> None:
        """One-time setup before :meth:`run` (paper: ``initialize()``)."""

    def run(self, env: ProcessEnv, inputs: Tables, read_write: list[str]) -> Tables:
        """Execute; return the output tables (lists of row dicts)."""
        raise NotImplementedError

    def get_name(self) -> str:
        return self.name or type(self).__name__

    # -- delta handlers (Section V) ----------------------------------------
    def has_running_handler(self) -> bool:
        return self.distributive or (
            type(self).on_delta_running is not Procedure.on_delta_running
        )

    def has_finished_handler(self) -> bool:
        return self.distributive or (
            type(self).on_delta_finished is not Procedure.on_delta_finished
        )

    def on_delta_running(self, env: ProcessEnv, delta: Delta) -> Optional[Tables]:
        """``p_h,r``: propagate a delta while the procedure is running."""
        if self.distributive:
            return self._distribute(env, delta)
        return None

    def on_delta_finished(self, env: ProcessEnv, delta: Delta) -> Optional[Tables]:
        """``p_h,f``: propagate a delta after the procedure finished."""
        if self.distributive:
            return self._distribute(env, delta)
        return None

    def _distribute(self, env: ProcessEnv, delta: Delta) -> Tables:
        """Default handler for distributive procedures: run on the delta.

        The convention of the paper applies: "if there are deltas only for
        some of p's inputs, the handler will be invoked providing empty
        relations for the other inputs" -- the engine passes exactly one
        non-empty input (the delta rows), and this base implementation
        runs the procedure over it.
        """
        return self.run(env, [list(delta.inserted)], [])


class FunctionProcedure(Procedure):
    """A *function*: a procedure with no side effects (m = 0, Section V).

    Wraps a plain Python callable ``fn(rows...) -> rows`` or
    ``fn(rows...) -> [rows, ...]``.
    """

    def __init__(self, name: str, fn: Callable[..., Any], distributive: bool = False) -> None:
        self.name = name
        self.fn = fn
        self.distributive = distributive

    def run(self, env: ProcessEnv, inputs: Tables, read_write: list[str]) -> Tables:
        if read_write:
            raise ProcedureError(
                f"function {self.name!r} cannot take read-write tables"
            )
        result = self.fn(*inputs)
        if result is None:
            return []
        if isinstance(result, list) and (not result or isinstance(result[0], dict)):
            return [result]  # single output table (possibly empty)
        return list(result)


class ProcedureRegistry:
    """Name -> procedure factory.  Stands in for the OSGi module platform
    of Section VI-D: "integrating a new processing algorithm into the
    platform requires only implementing one procedure class".
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable[[], Procedure]] = {}
        self._singletons: dict[str, Procedure] = {}
        self._lock = threading.Lock()

    def register(
        self,
        procedure: Procedure | Callable[[], Procedure],
        name: Optional[str] = None,
        singleton: bool = True,
    ) -> str:
        """Register a procedure instance or factory under ``name``.

        With ``singleton=True`` (default) every instantiation returns the
        same object -- the common case for stateful procedures like layout
        engines whose delta handlers need the state built by ``run``.
        """
        with self._lock:
            if isinstance(procedure, Procedure):
                resolved = name or procedure.get_name()
                if singleton:
                    self._singletons[resolved] = procedure
                    self._factories[resolved] = lambda: procedure
                else:
                    factory = type(procedure)
                    self._factories[resolved] = factory  # type: ignore[assignment]
            else:
                if name is None:
                    raise ProcedureError("factory registration requires a name")
                resolved = name
                if singleton:
                    instance = procedure()
                    self._singletons[resolved] = instance
                    self._factories[resolved] = lambda: instance
                else:
                    self._factories[resolved] = procedure
            return resolved

    def register_function(
        self, name: str, fn: Callable[..., Any], distributive: bool = False
    ) -> str:
        return self.register(FunctionProcedure(name, fn, distributive=distributive))

    def instantiate(self, name: str) -> Procedure:
        with self._lock:
            factory = self._factories.get(name)
        if factory is None:
            raise ProcedureError(f"no procedure registered under {name!r}")
        return factory()

    def names(self) -> list[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories
