"""EdiFlow workflow layer: process model, enactment, propagation, isolation.

Typical use::

    from repro.db import Database
    from repro.workflow import (
        WorkflowEngine, PropagationManager, ProcessDefinition,
        CallProcedure, RunQuery, seq, UpdatePropagation,
    )

    db = Database()
    engine = WorkflowEngine(db)
    propagation = PropagationManager(engine)
    engine.procedures.register(MyLayoutProcedure())
    engine.deploy(definition)
    execution = engine.run("my-process", user="alice")
"""

from .engine import Execution, LiveActivity, WorkflowEngine
from .expressions import (
    ProcCallExpr,
    PythonExpr,
    QueryExpr,
    TableExpr,
    ValueExpr,
    WorkflowExpression,
)
from .instance import ActivityInstance, ProcessInstance
from .monitor import ActivityTrace, ProcessMonitor, ProcessTrace
from .isolation import IsolationContext, IsolationManager
from .model import (
    Activity,
    ActivityNode,
    AndSplitJoin,
    AskUser,
    Assign,
    CallProcedure,
    ConditionalNode,
    Configuration,
    Constant,
    OrBranch,
    OrSplitJoin,
    ProcessDefinition,
    ProcessNode,
    RelationDecl,
    RunQuery,
    SequenceNode,
    UpdatePropagation,
    UpdateTable,
    Variable,
    alt,
    par,
    propagate_to_future,
    seq,
    when,
)
from .procedures import (
    FunctionProcedure,
    Procedure,
    ProcedureRegistry,
    ProcessEnv,
)
from .propagation import PropagationLog, PropagationManager
from .roles import RoleManager
from .spec import (
    load_procedures,
    parse_process,
    parse_process_file,
    serialize_process,
)

__all__ = [
    "Activity",
    "ActivityInstance",
    "ActivityTrace",
    "ActivityNode",
    "AndSplitJoin",
    "AskUser",
    "Assign",
    "CallProcedure",
    "ConditionalNode",
    "Configuration",
    "Constant",
    "Execution",
    "FunctionProcedure",
    "IsolationContext",
    "IsolationManager",
    "LiveActivity",
    "OrBranch",
    "OrSplitJoin",
    "ProcCallExpr",
    "ProcessDefinition",
    "ProcessEnv",
    "ProcessInstance",
    "ProcessMonitor",
    "ProcessNode",
    "ProcessTrace",
    "Procedure",
    "ProcedureRegistry",
    "PropagationLog",
    "PropagationManager",
    "PythonExpr",
    "QueryExpr",
    "RelationDecl",
    "RoleManager",
    "RunQuery",
    "SequenceNode",
    "TableExpr",
    "UpdatePropagation",
    "UpdateTable",
    "ValueExpr",
    "Variable",
    "WorkflowEngine",
    "WorkflowExpression",
    "alt",
    "load_procedures",
    "par",
    "parse_process",
    "parse_process_file",
    "propagate_to_future",
    "seq",
    "serialize_process",
    "when",
]
