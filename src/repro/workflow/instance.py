"""Process and activity instances: persisted state machines.

"The enactment of a process... consists of adding the necessary tuples to
the Process and Activity relations.  During process executions, the
necessary data manipulation statements are issued to record in the
database the advancement of process and activity instances" (Section VI).

Both instance kinds move through ``not_started -> running -> completed``
(Section IV-A); every transition is a row update in the core tables, so
the full execution history is queryable with plain SQL.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core import datamodel
from ..db.database import Database
from ..db.expression import col
from ..errors import EnactmentError

_VALID_TRANSITIONS = {
    datamodel.NOT_STARTED: {datamodel.RUNNING},
    datamodel.RUNNING: {datamodel.COMPLETED},
    datamodel.COMPLETED: set(),
}


def _check_transition(kind: str, row_id: int, current: str, target: str) -> None:
    if target not in _VALID_TRANSITIONS.get(current, set()):
        raise EnactmentError(
            f"{kind} instance {row_id}: illegal status transition "
            f"{current!r} -> {target!r}"
        )


class ProcessInstance:
    """Handle over one row of ``ediflow_process_instance``."""

    def __init__(self, database: Database, instance_id: int) -> None:
        self._database = database
        self.id = instance_id

    # -- state -------------------------------------------------------------
    def row(self) -> dict[str, Any]:
        row = self._database.table(datamodel.T_PROCESS_INSTANCE).by_key(self.id)
        if row is None:
            raise EnactmentError(f"process instance {self.id} does not exist")
        return row

    @property
    def status(self) -> str:
        return self.row()["status"]

    @property
    def start_time(self) -> Optional[int]:
        return self.row()["start"]

    @property
    def end_time(self) -> Optional[int]:
        return self.row()["end"]

    def is_running(self) -> bool:
        return self.status == datamodel.RUNNING

    def is_completed(self) -> bool:
        return self.status == datamodel.COMPLETED

    # -- transitions ---------------------------------------------------------
    def start(self) -> int:
        """Mark running; returns the start timestamp."""
        _check_transition("process", self.id, self.status, datamodel.RUNNING)
        now = self._database.tick()
        self._database.update(
            datamodel.T_PROCESS_INSTANCE,
            {"status": datamodel.RUNNING, "start": now},
            col("id") == self.id,
        )
        return now

    def complete(self) -> int:
        """Mark completed; returns the end timestamp."""
        _check_transition("process", self.id, self.status, datamodel.COMPLETED)
        now = self._database.tick()
        self._database.update(
            datamodel.T_PROCESS_INSTANCE,
            {"status": datamodel.COMPLETED, "end": now},
            col("id") == self.id,
        )
        return now

    def activity_instances(self) -> list[dict[str, Any]]:
        return [
            dict(row)
            for row in self._database.table(datamodel.T_ACTIVITY_INSTANCE).rows()
            if row["process_instance_id"] == self.id
        ]


class ActivityInstance:
    """Handle over one row of ``ediflow_activity_instance``."""

    def __init__(self, database: Database, instance_id: int) -> None:
        self._database = database
        self.id = instance_id

    def row(self) -> dict[str, Any]:
        row = self._database.table(datamodel.T_ACTIVITY_INSTANCE).by_key(self.id)
        if row is None:
            raise EnactmentError(f"activity instance {self.id} does not exist")
        return row

    @property
    def status(self) -> str:
        return self.row()["status"]

    @property
    def start_time(self) -> Optional[int]:
        return self.row()["start"]

    @property
    def process_instance_id(self) -> int:
        return self.row()["process_instance_id"]

    @property
    def activity_id(self) -> int:
        return self.row()["activity_id"]

    def assign_to(self, user_id: int) -> None:
        """Record that ``user_id`` will perform this instance.

        Mirrors the paper's description of ``not_started``: "the activity
        instance is created by a user who assigns it to another for
        completion".
        """
        self._database.update(
            datamodel.T_ACTIVITY_INSTANCE,
            {"user_id": user_id},
            col("id") == self.id,
        )

    def start(self) -> int:
        _check_transition("activity", self.id, self.status, datamodel.RUNNING)
        now = self._database.tick()
        self._database.update(
            datamodel.T_ACTIVITY_INSTANCE,
            {"status": datamodel.RUNNING, "start": now},
            col("id") == self.id,
        )
        return now

    def complete(self) -> int:
        _check_transition("activity", self.id, self.status, datamodel.COMPLETED)
        now = self._database.tick()
        self._database.update(
            datamodel.T_ACTIVITY_INSTANCE,
            {"status": datamodel.COMPLETED, "end": now},
            col("id") == self.id,
        )
        return now
