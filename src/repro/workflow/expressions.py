"""The workflow expression language.

Section V of the paper:

    e ::= Q | p(e_1, ..., e_n, T^w_1, ..., T^w_p).t_j

The simplest expressions are queries; complex ones call a procedure over
sub-expression inputs and retain one of its output tables.  Expressions
evaluate to a list of rows within a :class:`~repro.workflow.procedures.ProcessEnv`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..errors import WorkflowError

if TYPE_CHECKING:  # pragma: no cover
    from .procedures import ProcessEnv

Row = dict[str, Any]


class WorkflowExpression:
    """Base class: evaluates to a list of rows (or a scalar for Value)."""

    def evaluate(self, env: "ProcessEnv") -> list[Row]:
        raise NotImplementedError


class QueryExpr(WorkflowExpression):
    """A query ``Q``: SQL text with optional ``$variable`` parameters.

    Parameters written ``$name`` are resolved from the instance's
    variables/constants and bound as SQL ``?`` parameters.  Queries run
    through the instance's isolation context, so an expression inside a
    process instance sees that instance's snapshot (Section VI-A).
    """

    def __init__(self, sql: str, params: Sequence[Any] = ()) -> None:
        self.sql = sql
        self.params = tuple(params)

    def evaluate(self, env: "ProcessEnv") -> list[Row]:
        return env.query(self.sql, self.params)

    def __repr__(self) -> str:
        return f"QueryExpr({self.sql!r})"


class TableExpr(WorkflowExpression):
    """The contents of one relation (isolation-filtered)."""

    def __init__(self, table: str) -> None:
        self.table = table

    def evaluate(self, env: "ProcessEnv") -> list[Row]:
        return env.read_table(self.table)

    def __repr__(self) -> str:
        return f"TableExpr({self.table!r})"


class ProcCallExpr(WorkflowExpression):
    """``p(e_1, ..., e_n, T^w_1, ..., T^w_m).t_j``.

    Calls procedure ``name`` with evaluated sub-expressions as read-only
    inputs and ``read_write`` tables, then returns output table number
    ``output_index`` (0-based over the procedure's declared outputs).

    Per the paper, if side effects on the T^w tables are undesired the
    caller passes fresh temporary tables "which will be silently discarded
    at the end of the process".
    """

    def __init__(
        self,
        name: str,
        args: Sequence[WorkflowExpression] = (),
        read_write: Sequence[str] = (),
        output_index: int = 0,
    ) -> None:
        self.name = name
        self.args = tuple(args)
        self.read_write = tuple(read_write)
        self.output_index = output_index

    def evaluate(self, env: "ProcessEnv") -> list[Row]:
        inputs = [arg.evaluate(env) for arg in self.args]
        outputs = env.call_procedure(self.name, inputs, self.read_write)
        try:
            return outputs[self.output_index]
        except IndexError:
            raise WorkflowError(
                f"procedure {self.name!r} produced {len(outputs)} output "
                f"table(s); index {self.output_index} requested"
            ) from None

    def __repr__(self) -> str:
        return f"ProcCallExpr({self.name!r}, outputs[{self.output_index}])"


class ValueExpr(WorkflowExpression):
    """A literal value or a variable reference (``$name``)."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, env: "ProcessEnv") -> Any:
        if isinstance(self.value, str) and self.value.startswith("$"):
            return env.lookup(self.value[1:])
        return self.value

    def __repr__(self) -> str:
        return f"ValueExpr({self.value!r})"


class PythonExpr(WorkflowExpression):
    """Escape hatch: compute with an arbitrary callable over the env."""

    def __init__(self, fn: Callable[["ProcessEnv"], Any]) -> None:
        self.fn = fn

    def evaluate(self, env: "ProcessEnv") -> Any:
        return self.fn(env)


def evaluate_condition(condition: Any, env: "ProcessEnv") -> bool:
    """Evaluate an OR-branch / conditional guard.

    Accepts SQL text (truthy scalar of the first row), a callable over
    the environment, a :class:`WorkflowExpression` (truthy scalar or
    non-empty row list), or a plain value.
    """
    if condition is None:
        return True
    if isinstance(condition, str):
        rows = env.query(condition)
        if not rows:
            return False
        value = next(iter(rows[0].values()))
        return bool(value)
    if isinstance(condition, WorkflowExpression):
        result = condition.evaluate(env)
        if isinstance(result, list):
            return bool(result)
        return bool(result)
    if callable(condition):
        return bool(condition(env))
    return bool(condition)
